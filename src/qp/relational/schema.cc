#include "qp/relational/schema.h"

#include <unordered_set>

namespace qp {

const char* JoinCardinalityName(JoinCardinality c) {
  return c == JoinCardinality::kToOne ? "to-one" : "to-many";
}

TableSchema::TableSchema(std::string name, std::vector<Column> columns,
                         std::vector<std::string> primary_key)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (const auto& key : primary_key) {
    auto idx = ColumnIndex(key);
    if (idx.has_value()) primary_key_.push_back(*idx);
  }
}

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return std::nullopt;
}

Status Schema::AddTable(TableSchema table) {
  if (HasTable(table.name())) {
    return Status::AlreadyExists("table already exists: " + table.name());
  }
  std::unordered_set<std::string> seen;
  for (const auto& col : table.columns()) {
    if (!seen.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column '" + col.name +
                                     "' in table " + table.name());
    }
  }
  tables_.push_back(std::move(table));
  return Status::Ok();
}

Status Schema::AddJoin(AttributeRef left, AttributeRef right,
                       JoinCardinality left_to_right,
                       JoinCardinality right_to_left) {
  if (!HasAttribute(left)) {
    return Status::NotFound("unknown attribute: " + left.ToString());
  }
  if (!HasAttribute(right)) {
    return Status::NotFound("unknown attribute: " + right.ToString());
  }
  if (left.table == right.table) {
    return Status::InvalidArgument("self joins are not supported: " +
                                   left.ToString() + " = " + right.ToString());
  }
  if (FindJoin(left, right) != nullptr) {
    return Status::AlreadyExists("join already declared: " + left.ToString() +
                                 " = " + right.ToString());
  }
  Result<DataType> lt = AttributeType(left);
  Result<DataType> rt = AttributeType(right);
  if (lt.value() != rt.value()) {
    return Status::InvalidArgument("join attribute types differ: " +
                                   left.ToString() + " is " +
                                   DataTypeName(lt.value()) + ", " +
                                   right.ToString() + " is " +
                                   DataTypeName(rt.value()));
  }
  joins_.push_back(SchemaJoin{std::move(left), std::move(right),
                              left_to_right, right_to_left});
  return Status::Ok();
}

Status Schema::AddForeignKey(AttributeRef fk, AttributeRef pk) {
  return AddJoin(std::move(fk), std::move(pk), JoinCardinality::kToOne,
                 JoinCardinality::kToMany);
}

const TableSchema* Schema::FindTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

Result<const TableSchema*> Schema::GetTable(const std::string& name) const {
  const TableSchema* table = FindTable(name);
  if (table == nullptr) return Status::NotFound("unknown table: " + name);
  return table;
}

bool Schema::HasAttribute(const AttributeRef& ref) const {
  const TableSchema* table = FindTable(ref.table);
  return table != nullptr && table->HasColumn(ref.column);
}

Result<DataType> Schema::AttributeType(const AttributeRef& ref) const {
  const TableSchema* table = FindTable(ref.table);
  if (table == nullptr) {
    return Status::NotFound("unknown table: " + ref.table);
  }
  auto idx = table->ColumnIndex(ref.column);
  if (!idx.has_value()) {
    return Status::NotFound("unknown attribute: " + ref.ToString());
  }
  return table->column(*idx).type;
}

const SchemaJoin* Schema::FindJoin(const AttributeRef& a,
                                   const AttributeRef& b) const {
  for (const auto& join : joins_) {
    if ((join.left == a && join.right == b) ||
        (join.left == b && join.right == a)) {
      return &join;
    }
  }
  return nullptr;
}

Result<JoinCardinality> Schema::JoinCardinalityFrom(
    const AttributeRef& from, const AttributeRef& to) const {
  const SchemaJoin* join = FindJoin(from, to);
  if (join == nullptr) {
    return Status::NotFound("no declared join between " + from.ToString() +
                            " and " + to.ToString());
  }
  return join->left == from ? join->left_to_right : join->right_to_left;
}

std::vector<Schema::OutgoingJoin> Schema::JoinsFrom(
    const std::string& table) const {
  std::vector<OutgoingJoin> out;
  for (const auto& join : joins_) {
    if (join.left.table == table) {
      out.push_back({join.left, join.right, join.left_to_right});
    }
    if (join.right.table == table) {
      out.push_back({join.right, join.left, join.right_to_left});
    }
  }
  return out;
}

}  // namespace qp
