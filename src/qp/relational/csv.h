#ifndef QP_RELATIONAL_CSV_H_
#define QP_RELATIONAL_CSV_H_

#include <string>
#include <string_view>

#include "qp/relational/database.h"
#include "qp/relational/table.h"
#include "qp/util/status.h"

namespace qp {

/// CSV import/export for tables and databases, so real datasets (e.g. an
/// IMDb extract) can be loaded instead of the synthetic generator.
///
/// Dialect: RFC-4180-style. The first record is the header and must match
/// the table schema's column names. Fields containing commas, quotes or
/// newlines are double-quoted with embedded quotes doubled. SQL NULL is
/// an *unquoted empty* field; the empty string is a quoted empty field
/// (""). Values are parsed according to the column's declared type.

/// Renders the whole table, header included.
std::string TableToCsv(const Table& table);

/// Appends the rows of `csv` to `table`. Fails on header mismatch, arity
/// mismatch, unparsable values, or malformed quoting; on failure the
/// table may have received a prefix of the rows.
Status AppendCsvToTable(Table* table, std::string_view csv);

/// Writes one `<TABLE>.csv` per relation into `directory` (created if
/// missing).
Status SaveDatabaseCsv(const Database& db, const std::string& directory);

/// Loads every relation of `db`'s schema from `directory`; missing files
/// are an error. Rows are appended to the (typically empty) tables.
Status LoadDatabaseCsv(Database* db, const std::string& directory);

}  // namespace qp

#endif  // QP_RELATIONAL_CSV_H_
