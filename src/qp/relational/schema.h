#ifndef QP_RELATIONAL_SCHEMA_H_
#define QP_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "qp/relational/value.h"
#include "qp/util/status.h"

namespace qp {

/// A column declaration.
struct Column {
  std::string name;
  DataType type = DataType::kString;
};

/// Schema of one relation: name, typed columns, primary-key columns.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns,
              std::vector<std::string> primary_key = {});

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<size_t>& primary_key() const { return primary_key_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column` or nullopt if absent.
  std::optional<size_t> ColumnIndex(const std::string& column) const;
  bool HasColumn(const std::string& column) const {
    return ColumnIndex(column).has_value();
  }
  const Column& column(size_t i) const { return columns_[i]; }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<size_t> primary_key_;  // Indices into columns_.
};

/// One end of a schema-level join.
struct AttributeRef {
  std::string table;
  std::string column;

  friend bool operator==(const AttributeRef& a, const AttributeRef& b) {
    return a.table == b.table && a.column == b.column;
  }

  /// "TABLE.column".
  std::string ToString() const { return table + "." + column; }
};

/// Cardinality of a join when followed in a given direction: to-one means
/// each tuple of the source relation matches at most one tuple of the
/// target (e.g. PLAY -> THEATRE via tid), to-many means it may match many
/// (THEATRE -> PLAY). This metadata drives conflict detection and the
/// tuple-variable allocation rules of preference integration.
enum class JoinCardinality {
  kToOne,
  kToMany,
};

const char* JoinCardinalityName(JoinCardinality c);

/// An undirected schema join with per-direction cardinality. Declared once;
/// queries and profiles may traverse it in either direction.
struct SchemaJoin {
  AttributeRef left;
  AttributeRef right;
  /// Cardinality when moving from `left`'s relation to `right`'s.
  JoinCardinality left_to_right = JoinCardinality::kToMany;
  /// Cardinality when moving from `right`'s relation to `left`'s.
  JoinCardinality right_to_left = JoinCardinality::kToMany;
};

/// The database schema: a catalog of relations plus the set of meaningful
/// joins (foreign keys and any designer-declared joins). This is the
/// "traditional schema graph" the personalization graph extends.
class Schema {
 public:
  /// Adds a relation. Fails on duplicate table or column names.
  Status AddTable(TableSchema table);

  /// Declares a join between two existing attributes of matching type.
  /// `left_to_right` / `right_to_left` give the cardinality per direction.
  Status AddJoin(AttributeRef left, AttributeRef right,
                 JoinCardinality left_to_right,
                 JoinCardinality right_to_left);

  /// Convenience for a foreign key `fk` referencing a primary key `pk`:
  /// fk-side -> pk-side is to-one, pk-side -> fk-side is to-many.
  Status AddForeignKey(AttributeRef fk, AttributeRef pk);

  const TableSchema* FindTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return FindTable(name) != nullptr;
  }
  /// Fails with kNotFound instead of returning nullptr.
  Result<const TableSchema*> GetTable(const std::string& name) const;

  /// True if `ref` names an existing table.column.
  bool HasAttribute(const AttributeRef& ref) const;
  Result<DataType> AttributeType(const AttributeRef& ref) const;

  const std::vector<TableSchema>& tables() const { return tables_; }
  const std::vector<SchemaJoin>& joins() const { return joins_; }

  /// Finds the declared join between the two attributes, in either
  /// declaration order; nullptr if the pair was never declared.
  const SchemaJoin* FindJoin(const AttributeRef& a,
                             const AttributeRef& b) const;

  /// Cardinality of the declared join when traversed from `from` to `to`,
  /// or an error if no such join exists.
  Result<JoinCardinality> JoinCardinalityFrom(const AttributeRef& from,
                                              const AttributeRef& to) const;

  /// All declared joins incident to `table`, as (this-side, other-side,
  /// cardinality this->other) triples.
  struct OutgoingJoin {
    AttributeRef from;
    AttributeRef to;
    JoinCardinality cardinality;  // from-relation -> to-relation.
  };
  std::vector<OutgoingJoin> JoinsFrom(const std::string& table) const;

 private:
  std::vector<TableSchema> tables_;
  std::vector<SchemaJoin> joins_;
};

}  // namespace qp

#endif  // QP_RELATIONAL_SCHEMA_H_
