#ifndef QP_RELATIONAL_TABLE_H_
#define QP_RELATIONAL_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "qp/relational/schema.h"
#include "qp/relational/value.h"
#include "qp/util/status.h"

namespace qp {

/// A tuple; cells are positional against the owning TableSchema.
using Row = std::vector<Value>;

/// Row identifier within a table (dense, 0-based).
using RowId = uint32_t;

/// In-memory row store for a single relation, with lazily built hash
/// indexes per column used by the executor for selections and hash joins.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  /// Movable, not copyable (tables can be large).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(RowId id) const { return rows_[id]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row. Fails unless arity and cell types match the schema
  /// (NULL is accepted in any column). Invalidates indexes incrementally.
  Status Insert(Row row);

  /// Row ids whose `column` equals `value`; uses (and builds on first use)
  /// the hash index for that column.
  ///
  /// Thread safety: the lazy build mutates internal state, so concurrent
  /// Lookup calls are only safe after BuildAllIndexes() — the service
  /// layer warms every database it shares across workers.
  const std::vector<RowId>& Lookup(size_t column, const Value& value) const;

  /// Eagerly builds the hash index of every column, after which the table
  /// is safe for concurrent read-only use (Lookup no longer mutates).
  void BuildAllIndexes() const;

  /// Value of `column` in row `id`.
  const Value& At(RowId id, size_t column) const { return rows_[id][column]; }

 private:
  using ColumnIndex = std::unordered_map<Value, std::vector<RowId>, ValueHash>;

  const ColumnIndex& GetOrBuildIndex(size_t column) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  /// column index -> hash index; built on demand, extended on insert.
  mutable std::unordered_map<size_t, ColumnIndex> indexes_;
  static const std::vector<RowId> kEmptyPostings;
};

}  // namespace qp

#endif  // QP_RELATIONAL_TABLE_H_
