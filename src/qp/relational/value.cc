#include "qp/relational/value.h"

#include <cassert>
#include <functional>

#include "qp/util/string_util.h"

namespace qp {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

int64_t Value::as_int() const {
  assert(std::holds_alternative<int64_t>(rep_));
  return std::get<int64_t>(rep_);
}

double Value::as_double() const {
  assert(std::holds_alternative<double>(rep_));
  return std::get<double>(rep_);
}

const std::string& Value::as_string() const {
  assert(std::holds_alternative<std::string>(rep_));
  return std::get<std::string>(rep_);
}

double Value::AsNumeric() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  assert(std::holds_alternative<double>(rep_));
  return std::get<double>(rep_);
}

size_t Value::Hash() const {
  switch (rep_.index()) {
    case 0:
      return 0x9b3f1d2cULL;
    case 1: {
      // Hash ints through double when the value is exactly representable,
      // so 2 and 2.0 (which compare equal) hash alike.
      int64_t v = std::get<int64_t>(rep_);
      double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) return std::hash<double>{}(d);
      return std::hash<int64_t>{}(v);
    }
    case 2:
      return std::hash<double>{}(std::get<double>(rep_));
    default:
      return std::hash<std::string>{}(std::get<std::string>(rep_));
  }
}

std::string Value::ToString() const {
  switch (rep_.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(std::get<int64_t>(rep_));
    case 2:
      return FormatDouble(std::get<double>(rep_));
    default:
      return "'" + std::get<std::string>(rep_) + "'";
  }
}

std::string Value::ToSqlLiteral() const {
  if (std::holds_alternative<std::string>(rep_)) {
    std::string out = "'";
    for (char c : std::get<std::string>(rep_)) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

bool operator==(const Value& a, const Value& b) {
  if (a.rep_.index() == b.rep_.index()) return a.rep_ == b.rep_;
  // Cross-type numeric comparison.
  bool a_num = std::holds_alternative<int64_t>(a.rep_) ||
               std::holds_alternative<double>(a.rep_);
  bool b_num = std::holds_alternative<int64_t>(b.rep_) ||
               std::holds_alternative<double>(b.rep_);
  if (a_num && b_num) return a.AsNumeric() == b.AsNumeric();
  return false;
}

bool operator<(const Value& a, const Value& b) {
  // Total order for ORDER BY / sorting: NULL < numbers < strings.
  auto rank = [](const Value& v) {
    switch (v.rep_.index()) {
      case 0:
        return 0;
      case 1:
      case 2:
        return 1;
      default:
        return 2;
    }
  };
  int ra = rank(a);
  int rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // NULL == NULL for ordering purposes.
  if (ra == 1) return a.AsNumeric() < b.AsNumeric();
  return a.as_string() < b.as_string();
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace qp
