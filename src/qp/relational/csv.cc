#include "qp/relational/csv.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace qp {
namespace {

/// One parsed CSV field: its text plus whether it was quoted (an unquoted
/// empty field is NULL; a quoted empty field is the empty string).
struct Field {
  std::string text;
  bool quoted = false;
};

bool NeedsQuoting(const std::string& s) {
  if (s.empty()) return true;  // Distinguish '' from NULL.
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const Value& value, std::string* out) {
  if (value.is_null()) return;  // Unquoted empty field.
  std::string text;
  switch (value.type()) {
    case DataType::kInt64:
      text = std::to_string(value.as_int());
      break;
    case DataType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << value.as_double();
      text = os.str();
      break;
    }
    default:
      text = value.as_string();
      break;
  }
  if (value.type() == DataType::kString || NeedsQuoting(text)) {
    out->push_back('"');
    for (char c : text) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
  } else {
    out->append(text);
  }
}

/// Splits `csv` into records of fields. Handles quoted fields with
/// embedded separators/newlines/doubled quotes. A trailing newline does
/// not produce an empty record.
Result<std::vector<std::vector<Field>>> ParseCsv(std::string_view csv) {
  std::vector<std::vector<Field>> records;
  std::vector<Field> record;
  Field field;
  size_t i = 0;
  const size_t n = csv.size();
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field = Field{};
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    // Skip blank lines (a lone unquoted empty field). Note this makes a
    // single-column all-NULL record unrepresentable; all practical
    // schemas have >= 2 columns.
    if (record.size() == 1 && !record[0].quoted && record[0].text.empty()) {
      record.clear();
      return;
    }
    records.push_back(std::move(record));
    record.clear();
  };

  while (i < n) {
    char c = csv[i];
    if (c == '"' && !field_started) {
      // Quoted field.
      field.quoted = true;
      field_started = true;
      ++i;
      bool closed = false;
      while (i < n) {
        if (csv[i] == '"') {
          if (i + 1 < n && csv[i + 1] == '"') {
            field.text.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        field.text.push_back(csv[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("csv: unterminated quoted field");
      }
      continue;
    }
    if (c == ',') {
      end_field();
      ++i;
      field_started = false;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Normalize \r\n; skip the record boundary.
      if (c == '\r' && i + 1 < n && csv[i + 1] == '\n') ++i;
      ++i;
      end_record();
      continue;
    }
    field.text.push_back(c);
    field_started = true;
    ++i;
  }
  // Final record without trailing newline.
  if (field_started || field.quoted || !record.empty()) {
    end_record();
  }
  return records;
}

Result<Value> ParseValue(const Field& field, DataType type) {
  if (!field.quoted && field.text.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(field.text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || field.text.empty()) {
        return Status::ParseError("csv: bad int64 '" + field.text + "'");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.text.c_str(), &end);
      if (end == nullptr || *end != '\0' || field.text.empty()) {
        return Status::ParseError("csv: bad double '" + field.text + "'");
      }
      return Value::Real(v);
    }
    default:
      return Value::Str(field.text);
  }
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const TableSchema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out.push_back(',');
    out.append(schema.column(c).name);
  }
  out.push_back('\n');
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      AppendField(row[c], &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status AppendCsvToTable(Table* table, std::string_view csv) {
  QP_ASSIGN_OR_RETURN(auto records, ParseCsv(csv));
  if (records.empty()) {
    return Status::ParseError("csv: missing header record");
  }
  const TableSchema& schema = table->schema();
  const auto& header = records[0];
  if (header.size() != schema.num_columns()) {
    return Status::ParseError(
        "csv: header arity " + std::to_string(header.size()) +
        " != schema arity " + std::to_string(schema.num_columns()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c].text != schema.column(c).name) {
      return Status::ParseError("csv: header column '" + header[c].text +
                                "' != schema column '" +
                                schema.column(c).name + "'");
    }
  }
  for (size_t r = 1; r < records.size(); ++r) {
    const auto& record = records[r];
    if (record.size() != schema.num_columns()) {
      return Status::ParseError("csv: record " + std::to_string(r) +
                                " has " + std::to_string(record.size()) +
                                " fields, expected " +
                                std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(record.size());
    for (size_t c = 0; c < record.size(); ++c) {
      QP_ASSIGN_OR_RETURN(Value value,
                          ParseValue(record[c], schema.column(c).type));
      row.push_back(std::move(value));
    }
    QP_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return Status::Ok();
}

Status SaveDatabaseCsv(const Database& db, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + directory + ": " +
                            ec.message());
  }
  for (const TableSchema& schema : db.schema().tables()) {
    QP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(schema.name()));
    std::filesystem::path path =
        std::filesystem::path(directory) / (schema.name() + ".csv");
    std::ofstream out(path);
    if (!out) {
      return Status::Internal("cannot open " + path.string() +
                              " for writing");
    }
    out << TableToCsv(*table);
    if (!out) {
      return Status::Internal("write failed for " + path.string());
    }
  }
  return Status::Ok();
}

Status LoadDatabaseCsv(Database* db, const std::string& directory) {
  for (const TableSchema& schema : db->schema().tables()) {
    std::filesystem::path path =
        std::filesystem::path(directory) / (schema.name() + ".csv");
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("missing csv file: " + path.string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    QP_ASSIGN_OR_RETURN(Table * table, db->GetMutableTable(schema.name()));
    QP_RETURN_IF_ERROR(AppendCsvToTable(table, buffer.str()));
  }
  return Status::Ok();
}

}  // namespace qp
