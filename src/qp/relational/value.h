#ifndef QP_RELATIONAL_VALUE_H_
#define QP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace qp {

/// Column data types supported by the engine. kNull is the type of the
/// SQL NULL literal; columns themselves are declared with a concrete type.
enum class DataType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

/// Returns "null", "int64", "double" or "string".
const char* DataTypeName(DataType type);

/// A single typed cell. Values are immutable once constructed and cheap to
/// copy for the numeric types. Comparison across numeric types coerces
/// int64 to double; comparing a string with a number is always unequal.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Accessors; calling the wrong one is a programming error (asserts).
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Numeric value as double, coercing int64. Requires a numeric type.
  double AsNumeric() const;

  /// Stable hash suitable for hash joins and group-by.
  size_t Hash() const;

  /// Debug rendering: 42, 3.5, 'abc', NULL.
  std::string ToString() const;

  /// SQL literal rendering; strings are single-quoted with '' escaping.
  std::string ToSqlLiteral() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

std::ostream& operator<<(std::ostream& os, const Value& value);

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace qp

#endif  // QP_RELATIONAL_VALUE_H_
