#include "qp/relational/database.h"

namespace qp {

Database::Database(Schema schema) : schema_(std::move(schema)) {
  for (const TableSchema& table : schema_.tables()) {
    tables_.emplace(table.name(), std::make_unique<Table>(table));
  }
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("unknown table: " + name);
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("unknown table: " + name);
  return it->second.get();
}

Status Database::Insert(const std::string& table, Row row) {
  QP_ASSIGN_OR_RETURN(Table * t, GetMutableTable(table));
  return t->Insert(std::move(row));
}

void Database::WarmIndexes() const {
  for (const auto& [name, table] : tables_) table->BuildAllIndexes();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->num_rows();
  return total;
}

}  // namespace qp
