#ifndef QP_RELATIONAL_DATABASE_H_
#define QP_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "qp/relational/schema.h"
#include "qp/relational/table.h"
#include "qp/util/status.h"

namespace qp {

/// A schema plus one Table instance per relation. This is the content
/// store the executor runs against — the stand-in for the paper's
/// Oracle 9i instance.
class Database {
 public:
  explicit Database(Schema schema);

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Schema& schema() const { return schema_; }

  /// The table backing `name`, or error if the relation is unknown.
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  /// Appends a row to `table`.
  Status Insert(const std::string& table, Row row);

  /// Total number of rows across all relations.
  size_t TotalRows() const;

  /// Builds every column index of every table, making the database safe
  /// for concurrent read-only execution (see Table::BuildAllIndexes).
  void WarmIndexes() const;

 private:
  Schema schema_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace qp

#endif  // QP_RELATIONAL_DATABASE_H_
