#include "qp/relational/table.h"

namespace qp {

const std::vector<RowId> Table::kEmptyPostings;

Status Table::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " +
        schema_.name());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in " + schema_.name() + "." +
          schema_.column(i).name + ": expected " +
          DataTypeName(schema_.column(i).type) + ", got " +
          DataTypeName(row[i].type()));
    }
  }
  RowId id = static_cast<RowId>(rows_.size());
  // Keep already-built indexes current.
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(id);
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

const std::vector<RowId>& Table::Lookup(size_t column,
                                        const Value& value) const {
  const ColumnIndex& index = GetOrBuildIndex(column);
  auto it = index.find(value);
  if (it == index.end()) return kEmptyPostings;
  return it->second;
}

void Table::BuildAllIndexes() const {
  for (size_t col = 0; col < schema_.num_columns(); ++col) {
    GetOrBuildIndex(col);
  }
}

const Table::ColumnIndex& Table::GetOrBuildIndex(size_t column) const {
  auto it = indexes_.find(column);
  if (it != indexes_.end()) return it->second;
  ColumnIndex index;
  index.reserve(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) {
    index[rows_[id][column]].push_back(id);
  }
  return indexes_.emplace(column, std::move(index)).first->second;
}

}  // namespace qp
