#ifndef QP_STORAGE_FAULT_INJECTION_H_
#define QP_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "qp/util/file.h"
#include "qp/util/random.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// A deterministic in-memory FileSystem with crash semantics, the test
/// double behind the crash-recovery property suite. It models exactly
/// what a real disk promises an append-only writer:
///   - bytes become *durable* only when Sync() succeeds; Crash() throws
///     away every unsynced byte, except that a deterministic prefix of
///     the torn tail may survive (a partial sector write);
///   - fsync can be made to fail (once or permanently);
///   - short writes: an Append may persist only a prefix and then error;
///   - bit flips can corrupt already-durable bytes (media decay), which
///     recovery must *detect*, not silently absorb.
/// Metadata operations (create/rename/remove) are treated as immediately
/// durable, the usual simplification of single-directory WAL designs.
class FaultInjectingFileSystem : public FileSystem {
 public:
  FaultInjectingFileSystem() = default;

  // FileSystem:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

  // Fault controls -----------------------------------------------------

  /// Every Sync() on any file fails with Internal until cleared.
  void SetSyncFailure(bool fail);

  /// The next `count` Sync() calls (on any file) fail with Internal,
  /// then syncs succeed again — a *transient* fsync failure, the case
  /// retry-with-backoff is meant to absorb. Independent of
  /// SetSyncFailure (which models a permanently dead disk).
  void FailNextSyncs(uint64_t count);

  /// The next Append on `path` persists only `keep_bytes` of its data,
  /// then returns Internal (a short write).
  void InjectShortWrite(const std::string& path, size_t keep_bytes);

  /// Flips bit `bit` of byte `offset` of `path` in place. Returns
  /// NotFound/OutOfRange when the target does not exist.
  Status FlipBit(const std::string& path, size_t offset, int bit);

  /// Simulates a process + machine crash: every file reverts to its last
  /// synced size, except that `rng` decides how many bytes of each
  /// unsynced tail survive (0..all — a torn write). Open handles become
  /// dead (their writes error afterwards).
  void Crash(Rng* rng);

  /// Crash keeping all unsynced bytes (process crash, OS survived and
  /// flushed the page cache).
  void CrashKeepingUnsynced();

  /// Current size of `path`'s durable prefix, for assertions.
  Result<size_t> SyncedSize(const std::string& path) const;

  uint64_t num_syncs() const;

 private:
  friend class FaultInjectingFile;

  struct FileState {
    std::string data;
    size_t synced_size = 0;
    /// Bumped by Crash(); handles created before a crash refuse writes.
    uint64_t generation = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::set<std::string> dirs_;
  bool fail_syncs_ = false;
  uint64_t fail_next_syncs_ = 0;
  std::map<std::string, size_t> short_writes_;
  uint64_t num_syncs_ = 0;
  uint64_t crash_generation_ = 0;
};

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_FAULT_INJECTION_H_
