#include "qp/storage/wal.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "qp/storage/coding.h"
#include "qp/util/crc32c.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace storage {

namespace {
// Frame header: body size, masked CRC of the size field, masked CRC of
// the body. Checksumming the size separately lets the reader trust a
// frame boundary before the body is even in range.
constexpr size_t kHeaderSize = 12;
// The body always starts with the 8-byte sequence number.
constexpr size_t kMinBodySize = 8;
}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every_record";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

void EncodeWalRecord(uint64_t seqno, std::string_view payload,
                     std::string* dst) {
  std::string body;
  body.reserve(kMinBodySize + payload.size());
  PutFixed64(&body, seqno);
  body.append(payload.data(), payload.size());
  std::string size_bytes;
  PutFixed32(&size_bytes, static_cast<uint32_t>(body.size()));
  dst->append(size_bytes);
  PutFixed32(dst, crc32c::Mask(crc32c::Value(size_bytes)));
  PutFixed32(dst, crc32c::Mask(crc32c::Value(body)));
  dst->append(body);
}

WalWriter::WalWriter(std::unique_ptr<WritableFile> file, uint64_t first_seqno,
                     WalOptions options)
    : options_(options),
      file_(std::move(file)),
      next_seqno_(first_seqno),
      synced_seqno_(first_seqno - 1),
      pending_max_seqno_(first_seqno - 1),
      last_sync_time_(std::chrono::steady_clock::now()) {
  if (options_.metrics != nullptr) {
    metric_records_ =
        options_.metrics->counter("qp_wal_records_appended_total");
    metric_bytes_ = options_.metrics->counter("qp_wal_bytes_appended_total");
    metric_fsyncs_ = options_.metrics->counter("qp_wal_fsyncs_total");
    metric_sync_retries_ =
        options_.metrics->counter("qp_wal_sync_retries_total");
    metric_sync_seconds_ =
        options_.metrics->histogram("qp_wal_sync_seconds");
  }
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Append(std::string_view payload, uint64_t* seqno) {
  std::unique_lock<std::mutex> lock(mutex_);
  return AppendLocked(payload, &lock, seqno);
}

Status WalWriter::AppendLocked(std::string_view payload,
                               std::unique_lock<std::mutex>* lock,
                               uint64_t* seqno) {
  if (!error_.ok()) return error_;
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  // Chaos site: a transient append refusal. Fails this one mutation
  // without poisoning the writer (no seqno consumed, no sticky error),
  // so it exercises the caller's failure accounting and the breaker's
  // consecutive-failure counting.
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("wal.append"));
  const uint64_t s = next_seqno_++;
  const size_t size_before = pending_.size();
  EncodeWalRecord(s, payload, &pending_);
  pending_max_seqno_ = s;
  stats_.records_appended += 1;
  stats_.bytes_appended += pending_.size() - size_before;
  if (metric_records_ != nullptr) {
    metric_records_->Add(1);
    metric_bytes_->Add(pending_.size() - size_before);
  }
  if (seqno != nullptr) *seqno = s;

  if (options_.fsync != FsyncPolicy::kEveryRecord) {
    // Hand the bytes to the OS immediately (still under the lock, so
    // frames reach the file in sequence order), fsync per policy.
    std::string batch;
    batch.swap(pending_);
    Status status = file_->Append(batch);
    if (!status.ok()) {
      error_ = status;
      return status;
    }
    if (options_.fsync == FsyncPolicy::kInterval &&
        std::chrono::steady_clock::now() - last_sync_time_ >=
            options_.sync_interval) {
      return SyncLocked(lock);
    }
    return Status::Ok();
  }

  // Group commit: the first writer to find no flush in flight becomes
  // the leader and flushes *everything* queued so far — including the
  // records of the followers blocked on cv_ — with a single fsync.
  for (;;) {
    if (!error_.ok()) return error_;
    if (synced_seqno_ >= s) return Status::Ok();
    if (!flushing_) {
      flushing_ = true;
      std::string batch;
      batch.swap(pending_);
      const uint64_t batch_max = pending_max_seqno_;
      lock->unlock();
      Status status = file_->Append(batch);
      uint64_t retries = 0;
      const auto sync_start = std::chrono::steady_clock::now();
      if (status.ok()) status = SyncWithRetries(&retries);
      const double sync_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sync_start)
              .count();
      lock->lock();
      flushing_ = false;
      stats_.sync_retries += retries;
      if (metric_sync_retries_ != nullptr && retries > 0) {
        metric_sync_retries_->Add(retries);
      }
      if (status.ok()) {
        synced_seqno_ = std::max(synced_seqno_, batch_max);
        stats_.fsyncs += 1;
        if (metric_fsyncs_ != nullptr) {
          metric_fsyncs_->Add(1);
          metric_sync_seconds_->Record(sync_seconds);
        }
      } else {
        error_ = status;
      }
      cv_.notify_all();
    } else {
      cv_.wait(*lock);
    }
  }
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  return SyncLocked(&lock);
}

Status WalWriter::SyncLocked(std::unique_lock<std::mutex>* lock) {
  if (!error_.ok()) return error_;
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  // Serialize with any group-commit flush so file bytes stay in order.
  while (flushing_) cv_.wait(*lock);
  if (!error_.ok()) return error_;
  flushing_ = true;
  std::string batch;
  batch.swap(pending_);
  const uint64_t target = pending_max_seqno_;
  lock->unlock();
  Status status;
  if (!batch.empty()) status = file_->Append(batch);
  uint64_t retries = 0;
  const auto sync_start = std::chrono::steady_clock::now();
  if (status.ok()) status = SyncWithRetries(&retries);
  const double sync_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sync_start)
          .count();
  lock->lock();
  flushing_ = false;
  stats_.sync_retries += retries;
  if (metric_sync_retries_ != nullptr && retries > 0) {
    metric_sync_retries_->Add(retries);
  }
  if (status.ok()) {
    synced_seqno_ = std::max(synced_seqno_, target);
    last_sync_time_ = std::chrono::steady_clock::now();
    stats_.fsyncs += 1;
    if (metric_fsyncs_ != nullptr) {
      metric_fsyncs_->Add(1);
      metric_sync_seconds_->Record(sync_seconds);
    }
  } else {
    error_ = status;
  }
  cv_.notify_all();
  return status;
}

Status WalWriter::SyncWithRetries(uint64_t* retries) {
  // The chaos site sits inside the retry loop so an injected fsync
  // failure is indistinguishable from a real one: it burns a retry,
  // backs off, and only defeats the writer if it keeps firing past the
  // retry budget (at which point the error goes sticky upstream).
  Status status = QP_FAULT_POINT("wal.sync");
  if (status.ok()) status = file_->Sync();
  std::chrono::milliseconds backoff = options_.retry_backoff;
  for (int attempt = 0; !status.ok() && attempt < options_.max_sync_retries;
       ++attempt) {
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
    ++*retries;
    status = QP_FAULT_POINT("wal.sync");
    if (status.ok()) status = file_->Sync();
  }
  return status;
}

Status WalWriter::Close() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::Ok();
  Status status;
  if (error_.ok() && options_.fsync != FsyncPolicy::kNever) {
    status = SyncLocked(&lock);
  } else if (error_.ok() && !pending_.empty()) {
    std::string batch;
    batch.swap(pending_);
    status = file_->Append(batch);
    if (!status.ok()) error_ = status;
  }
  Status close_status = file_->Close();
  file_.reset();
  return status.ok() ? close_status : status;
}

uint64_t WalWriter::last_appended_seqno() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return next_seqno_ - 1;
}

uint64_t WalWriter::last_synced_seqno() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return synced_seqno_;
}

WalWriterStats WalWriter::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

WalReader::WalReader(std::string_view data, uint64_t expected_first_seqno)
    : data_(data), expected_seqno_(expected_first_seqno) {}

Status WalReader::Next(WalRecord* record, bool* has_record) {
  *has_record = false;
  if (done_) return Status::Ok();
  const size_t remaining = data_.size() - pos_;
  if (remaining == 0) {
    done_ = true;
    return Status::Ok();
  }
  // An incomplete frame at the tail is a torn write: the process died
  // mid-append. Everything before it is intact, so recovery truncates
  // the tail and carries on.
  if (remaining < kHeaderSize) {
    torn_bytes_ = remaining;
    done_ = true;
    return Status::Ok();
  }
  auto corrupt = [&](const char* what) {
    return Status::ParseError(std::string("corrupt WAL record at offset ") +
                              std::to_string(pos_) + ": " + what);
  };
  const std::string_view size_bytes = data_.substr(pos_, 4);
  const uint32_t size_crc = DecodeFixed32(data_.data() + pos_ + 4);
  if (crc32c::Unmask(size_crc) != crc32c::Value(size_bytes)) {
    // The length field fails its own checksum, so the frame boundary
    // cannot be trusted. If a complete frame that continues the
    // sequence exists anywhere in the remainder, truncating here would
    // silently lose valid records — that is mid-log corruption.
    // Otherwise the bytes are the garbage prefix of a torn append.
    if (HasValidFrameAfter(pos_)) {
      return corrupt("length checksum mismatch");
    }
    torn_bytes_ = remaining;
    done_ = true;
    return Status::Ok();
  }
  const uint32_t body_size = DecodeFixed32(data_.data() + pos_);
  const uint32_t stored_crc = DecodeFixed32(data_.data() + pos_ + 8);
  if (body_size < kMinBodySize) return corrupt("frame too small");
  // The size is checksummed, so a frame that extends past EOF really
  // was cut short mid-write: a torn tail.
  if (kHeaderSize + static_cast<size_t>(body_size) > remaining) {
    torn_bytes_ = remaining;
    done_ = true;
    return Status::Ok();
  }
  std::string_view body = data_.substr(pos_ + kHeaderSize, body_size);
  if (crc32c::Unmask(stored_crc) != crc32c::Value(body)) {
    if (pos_ + kHeaderSize + body_size == data_.size()) {
      // Checksum failure on the very last record with nothing after it:
      // indistinguishable from a torn final write, so treat it as one.
      torn_bytes_ = remaining;
      done_ = true;
      return Status::Ok();
    }
    return corrupt("checksum mismatch");
  }
  const uint64_t seqno = DecodeFixed64(body.data());
  if (seqno != expected_seqno_) return corrupt("sequence number gap");
  ++expected_seqno_;
  pos_ += kHeaderSize + body_size;
  valid_end_ = pos_;
  record->seqno = seqno;
  record->payload = body.substr(kMinBodySize);
  *has_record = true;
  return Status::Ok();
}

bool WalReader::HasValidFrameAfter(size_t from) const {
  // A frame passing both checksums with a seqno that continues this log
  // is overwhelming evidence of real records beyond the bad bytes (two
  // independent CRC32Cs colliding on garbage is ~2^-64).
  for (size_t off = from; off + kHeaderSize <= data_.size(); ++off) {
    const std::string_view size_bytes = data_.substr(off, 4);
    const uint32_t size_crc = DecodeFixed32(data_.data() + off + 4);
    if (crc32c::Unmask(size_crc) != crc32c::Value(size_bytes)) continue;
    const uint32_t body_size = DecodeFixed32(data_.data() + off);
    if (body_size < kMinBodySize) continue;
    if (static_cast<size_t>(body_size) > data_.size() - off - kHeaderSize) {
      continue;
    }
    const uint32_t body_crc = DecodeFixed32(data_.data() + off + 8);
    const std::string_view body = data_.substr(off + kHeaderSize, body_size);
    if (crc32c::Unmask(body_crc) != crc32c::Value(body)) continue;
    if (DecodeFixed64(body.data()) >= expected_seqno_) return true;
  }
  return false;
}

}  // namespace storage
}  // namespace qp
