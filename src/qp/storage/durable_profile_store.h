#ifndef QP_STORAGE_DURABLE_PROFILE_STORE_H_
#define QP_STORAGE_DURABLE_PROFILE_STORE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "qp/obs/trace.h"
#include "qp/service/profile_store.h"
#include "qp/storage/profile_backend.h"
#include "qp/storage/record.h"
#include "qp/storage/scrub.h"
#include "qp/storage/snapshot.h"
#include "qp/storage/tier.h"
#include "qp/storage/wal.h"
#include "qp/util/clock.h"
#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// How (and whether) a DurableProfileStore persists its state.
struct StorageOptions {
  /// Directory holding MANIFEST, the snapshot and the WAL. Empty
  /// disables durability entirely — the store becomes a zero-cost
  /// pass-through over the in-memory ProfileStore.
  std::string dir;
  /// WAL fsync policy and interval.
  WalOptions wal;
  /// Once the live WAL segment exceeds this many bytes, a checkpoint
  /// (snapshot + WAL truncation) is triggered. 0 = only explicit
  /// Checkpoint() calls compact.
  uint64_t compact_threshold_bytes = 4u << 20;
  /// Run compaction on a background thread (otherwise the threshold is
  /// checked but compaction only happens via Checkpoint()).
  bool background_compaction = true;
  /// Circuit breaker: after this many *consecutive* failed mutations
  /// (WAL append/fsync failures that survived the WAL's own retries),
  /// the store trips to read-only — further mutations fail fast with
  /// Status::Unavailable instead of hammering a dead disk, while reads
  /// keep serving the in-memory state. 0 disables the breaker (mutations
  /// keep returning the WAL's sticky error).
  int breaker_threshold = 3;
  /// Half-open self-healing: once the breaker has been open this long,
  /// the next mutation is admitted as a *probe* — it runs a recovery
  /// checkpoint (snapshot of the acknowledged in-memory state + a fresh
  /// WAL generation, committed by the usual manifest rename) to re-test
  /// the disk. Success closes the breaker and the store is writable
  /// again without a restart; failure re-opens it with the backoff
  /// doubled (capped at breaker_backoff_max). 0 restores the old one-way
  /// behavior: a tripped store stays read-only until reopened.
  std::chrono::milliseconds breaker_backoff{200};
  std::chrono::milliseconds breaker_backoff_max{10000};
  /// Background integrity scrubber cadence: every interval a low-
  /// priority pass re-verifies the committed generation on disk
  /// (snapshot CRC, WAL frame CRCs) and the in-memory profile
  /// invariants, quarantining profiles that fail (served degraded,
  /// excluded from selection) and — when scrub_auto_repair is set —
  /// rebuilding them from the last good snapshot + WAL replay.
  /// 0 disables the background thread; ScrubOnce() still works.
  std::chrono::milliseconds scrub_interval{0};
  bool scrub_auto_repair = true;
  /// Tiered residency: when > 0, at most this many profiles are resident
  /// in memory at once. The rest stay cold on disk — recovery indexes
  /// the snapshot's entry headers instead of materializing profiles, a
  /// Get of a cold user pages exactly its body in (snapshot range read +
  /// WAL-overlay replay) under the user's stripe, and installs beyond
  /// the budget evict the least-recently-used resident. Eviction loses
  /// nothing: every acknowledged mutation hit the WAL before the ack, so
  /// disk state always equals acknowledged state. 0 (default) keeps
  /// every profile resident — the behavior of PR 2–6. Requires a
  /// storage directory.
  size_t hot_capacity = 0;
  /// Filesystem to operate on; nullptr = the process-wide POSIX one.
  /// Tests pass a FaultInjectingFileSystem here.
  FileSystem* fs = nullptr;
  /// Time source for breaker backoff windows and the scrubber cadence;
  /// nullptr = Clock::Real(). Tests inject a FakeClock and Advance() it
  /// instead of sleeping, so backoff expiry is deterministic under
  /// sanitizer load. Not owned; must outlive the store.
  Clock* clock = nullptr;
  /// When set, storage event counters (qp_storage_*) and the WAL's own
  /// instruments (qp_wal_*, threaded through WalOptions::metrics) are
  /// published here; recovery outcome gauges are set once at Open. Not
  /// owned; must outlive the store.
  obs::MetricsRegistry* metrics = nullptr;
};

// StorageStats and TierStats live in profile_backend.h (the interface
// this store implements); included above.

/// A crash-safe ProfileStore: every mutation is appended to a CRC32C-
/// framed write-ahead log before it is applied to the in-memory sharded
/// store, so `Open` on the same directory rebuilds the exact pre-crash
/// state up to the last synced sequence number.
///
/// Layout of a storage directory:
///   MANIFEST                      committed generation (atomic rename)
///   snapshot-<seqno>.qps          full state through <seqno>
///   wal-<first>.log               mutations from <first> onward
///
/// Concurrency: mutators serialize per user on a stripe lock that spans
/// WAL append + in-memory apply, so log order equals apply order for any
/// one user (cross-user mutations group-commit concurrently). Reads are
/// lock-free with respect to the WAL — they go straight to the
/// ProfileStore's shard locks. Checkpoint briefly holds every stripe to
/// get a consistent (seqno, state) cut.
///
/// Epochs: the wrapper inherits the ProfileStore's shard-monotone epoch
/// counter, and Remove burns an epoch, so remove-then-reinsert always
/// yields a strictly larger epoch — cached selections of a deleted
/// profile can never be served for its successor. Epochs are *not*
/// persisted: they key in-process caches, and a recovered store starts a
/// fresh process with a fresh (empty) cache.
class DurableProfileStore : public ProfileBackend {
 public:
  /// In-memory pass-through (no directory, nothing persisted). When
  /// `metrics` is given the inner ProfileStore publishes its counters
  /// there (the qp_storage_* / qp_wal_* families stay silent — there is
  /// no log to account for).
  DurableProfileStore(const Schema* schema, size_t num_shards = 16,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Opens (or initializes) the storage directory, recovering durable
  /// state: load the manifest's snapshot, replay the WAL tail, truncate
  /// a torn final record. Corruption anywhere before the tail — a bad
  /// checksum mid-log, a manifest/snapshot mismatch — fails the open
  /// with a non-OK status rather than serving a silently wrong store.
  static Result<std::unique_ptr<DurableProfileStore>> Open(
      const Schema* schema, StorageOptions options, size_t num_shards = 16);

  ~DurableProfileStore() override;

  DurableProfileStore(const DurableProfileStore&) = delete;
  DurableProfileStore& operator=(const DurableProfileStore&) = delete;

  /// Mutators mirror ProfileStore but are logged before being applied.
  /// They validate against the schema *before* logging, so the WAL never
  /// contains a mutation that cannot be replayed. `trace`, when given,
  /// receives a "wal_append" span covering the log write (group commit +
  /// fsync included) — the durability cost of the mutation.
  Status Put(const std::string& user_id, UserProfile profile,
             obs::RequestTrace* trace = nullptr) override;
  Status Upsert(const std::string& user_id,
                const std::vector<AtomicPreference>& preferences,
                obs::RequestTrace* trace = nullptr) override;
  Status Remove(const std::string& user_id,
                obs::RequestTrace* trace = nullptr) override;

  /// Reads delegate to the in-memory store (same snapshot semantics).
  /// Under tiering, a miss on an alive-but-cold user pages the profile
  /// in from snapshot + WAL overlay (the "shard.load" fault site),
  /// evicting over-budget residents — so a reload always carries a
  /// strictly larger epoch than the evicted incarnation.
  Result<ProfileSnapshot> Get(const std::string& user_id) override;
  std::vector<std::pair<std::string, ProfileSnapshot>> All() override;

  /// Alive user ids without loading bodies: the tier index under
  /// tiering, the in-memory store's key set otherwise.
  std::vector<std::string> Users() const override;

  /// Streams the live WAL segment's records with seqno > `after_seqno`,
  /// decoded. OutOfRange once a checkpoint has rotated the requested
  /// range away (restart from a fresh copy); Unimplemented for a
  /// non-durable store. A torn final frame ends the stream cleanly — it
  /// was never acknowledged. See ProfileBackend::ReadMutationsAfter.
  Result<std::vector<WalTailRecord>> ReadMutationsAfter(
      uint64_t after_seqno) override;

  size_t size() const override;
  const Schema& schema() const override { return store_.schema(); }

  bool durable() const override { return !dir_.empty(); }

  /// Writes a snapshot of the current state and truncates the WAL it
  /// covers. Blocks mutators for the duration. No-op when nothing was
  /// logged since the last checkpoint.
  Status Checkpoint() override;

  /// Forces every acknowledged mutation to stable storage (useful under
  /// FsyncPolicy::kInterval / kNever).
  Status Sync() override;

  /// Flushes, stops background compaction and closes the WAL. Further
  /// mutations fail; reads keep working. Called by the destructor.
  Status Close() override;

  StorageStats storage_stats() const override;

  /// Residency counters; TierStats::enabled is false unless
  /// StorageOptions::hot_capacity was set.
  TierStats tier_stats() const override;

  /// One synchronous integrity pass (the background scrubber runs
  /// exactly this on its cadence): re-verify the committed generation on
  /// disk and every in-memory profile's invariants; quarantine
  /// violators; auto-repair when configured. `report`/`trace` optional.
  /// Returns non-OK only when the pass itself could not run (closed
  /// store) — findings are reported, not returned.
  Status ScrubOnce(ScrubReport* report = nullptr,
                   obs::RequestTrace* trace = nullptr) override;

  /// Rebuilds one user's profile from durable truth — last good snapshot
  /// + a WAL replay filtered to that user — installs it (validated) and
  /// lifts the quarantine. The repair path behind scrub_auto_repair.
  Status RepairUser(const std::string& user_id) override;

  /// Quarantine surface: quarantined users are excluded from
  /// personalization (the service serves their raw queries, degraded)
  /// until repaired. IsQuarantined is hot-path cheap: one relaxed load
  /// while the set is empty.
  bool IsQuarantined(const std::string& user_id) const override;
  std::vector<std::string> QuarantinedUsers() const override;

  /// Chaos/test backdoor: plants an unvalidated profile in memory (the
  /// WAL and durable state stay intact) — the damage ScrubOnce must
  /// detect, quarantine and repair.
  void CorruptInMemoryForTest(const std::string& user_id,
                              UserProfile profile);

 private:
  static constexpr size_t kNumStripes = 16;

  /// Breaker state machine: kClosed —(threshold consecutive failures)→
  /// kOpen —(backoff elapsed, a mutation arrives)→ kHalfOpen —(probe
  /// checkpoint succeeds)→ kClosed, or —(probe fails)→ kOpen with the
  /// backoff doubled. Stored in an atomic int; mutators read it before
  /// taking their stripe.
  enum BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  DurableProfileStore(const Schema* schema, size_t num_shards,
                      StorageOptions options);

  Status Recover(uint64_t* next_seqno);
  Status ApplyMutation(const ProfileMutation& mutation);
  bool tiered() const { return tier_ != nullptr; }
  /// Pages one cold (alive, non-resident) user in: snapshot range read +
  /// overlay replay, validated install, LRU eviction of over-budget
  /// residents. Caller holds the user's stripe lock and has re-checked
  /// the in-memory store. The "shard.load" fault site fires here.
  Result<ProfileSnapshot> LoadColdLocked(const std::string& user_id);
  /// Rebuilds a profile from a tier load plan (no locks of its own).
  Status BuildFromPlan(const std::string& user_id,
                       const ProfileTier::LoadPlan& plan,
                       UserProfile* profile);
  /// Drops over-budget residents from memory (their durable state is
  /// already complete — see StorageOptions::hot_capacity).
  void EvictOverBudget();
  /// Appends one mutation payload to the WAL under the caller's stripe
  /// lock, driving the circuit breaker: success resets the consecutive-
  /// failure count, failure advances it and trips the breaker at the
  /// threshold.
  Status LogMutation(const std::string& payload);
  /// Admission check mutators run before taking their stripe: Ok while
  /// the breaker is closed; fast-fail Unavailable while it is open —
  /// except that once the backoff has elapsed, exactly one caller wins
  /// the half-open CAS and runs the recovery probe inline.
  Status AdmitMutation();
  /// Transitions the breaker to open (from closed on a trip, from
  /// half-open on a failed probe — doubling the backoff), counting the
  /// trip and stamping the reopen time.
  void OpenBreaker(BreakerState from);
  /// The half-open probe: a recovery checkpoint under all stripes —
  /// snapshot of the acknowledged in-memory state + fresh WAL generation
  /// — that re-tests the disk. Success closes the breaker.
  Status ProbeRecover();
  /// `for_recovery` skips the (dead) WAL's fsync and forces rotation
  /// even when no new records were logged since the manifest.
  Status CheckpointLocked(bool for_recovery = false);
  size_t StripeFor(const std::string& user_id) const;
  void MaybeKickCompaction();
  void CompactionLoop();
  void ScrubLoop();
  /// Disk half of a scrub pass: manifest/snapshot CRC + WAL frame walk.
  /// Returns the number of corruptions found (0 = clean); repairs by
  /// forcing a recovery checkpoint from the intact in-memory state.
  void ScrubDisk(ScrubReport* report, obs::RequestTrace* trace);
  /// Memory half: per-profile invariant re-check, quarantine + repair.
  void ScrubMemory(ScrubReport* report, obs::RequestTrace* trace);
  void SetQuarantined(const std::string& user_id, bool quarantined);

  ProfileStore store_;
  StorageOptions options_;
  FileSystem* fs_ = nullptr;
  Clock* clock_ = nullptr;
  std::string dir_;

  /// Residency bookkeeping; null unless StorageOptions::hot_capacity
  /// enabled tiering. The tier's own mutex orders after stripes/meta.
  std::unique_ptr<ProfileTier> tier_;

  /// Per-user mutation serialization; ordered before meta_mutex_.
  mutable std::array<std::mutex, kNumStripes> stripes_;

  /// Guards wal_, manifest_, the accumulated counters and closed_.
  /// Mutators may read wal_ while holding only their stripe: the pointer
  /// is swapped exclusively under *all* stripes (checkpoint/close), which
  /// any stripe holder excludes.
  mutable std::mutex meta_mutex_;
  std::unique_ptr<WalWriter> wal_;
  Manifest manifest_;
  uint64_t segment_base_bytes_ = 0;  // Recovered bytes kept in the segment.
  WalWriterStats retired_;           // Stats of closed WAL segments.
  uint64_t checkpoints_ = 0;
  uint64_t failed_checkpoints_ = 0;
  std::string last_checkpoint_error_;
  bool closed_ = false;

  /// After a failed checkpoint, compaction is not re-kicked until the
  /// live segment outgrows this (failure point + one threshold), so a
  /// persistently failing disk is not hammered with a doomed full
  /// snapshot write on every over-threshold mutation. Atomic because
  /// mutators read it under only their stripe lock.
  std::atomic<uint64_t> compact_backoff_bytes_{0};

  /// Circuit-breaker state. Atomics because mutators read/advance them
  /// under only their stripe lock, and stats() reads them lock-free.
  std::atomic<uint64_t> consecutive_failures_{0};
  std::atomic<uint64_t> mutation_failures_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<int> breaker_state_{kClosed};
  /// Steady-clock nanos at the moment the breaker (re)opened, and the
  /// backoff the next probe waits for. Written only by the thread that
  /// performed the open transition.
  std::atomic<int64_t> breaker_opened_ns_{0};
  std::atomic<int64_t> breaker_backoff_ms_{0};
  std::atomic<uint64_t> breaker_probes_{0};
  std::atomic<uint64_t> breaker_recoveries_{0};
  std::atomic<uint64_t> breaker_epoch_{0};

  /// Quarantine set maintained by the scrubber. The atomic count lets
  /// the per-request IsQuarantined check skip the mutex entirely in the
  /// (overwhelmingly common) empty case.
  mutable std::mutex quarantine_mutex_;
  std::unordered_set<std::string> quarantined_;
  std::atomic<size_t> quarantine_count_{0};

  /// Scrubber accounting (lock-free; last_scrub_error_ under its mutex).
  std::atomic<uint64_t> scrubs_{0};
  std::atomic<uint64_t> scrub_corruptions_{0};
  std::atomic<uint64_t> repairs_{0};
  std::atomic<uint64_t> repair_failures_{0};
  mutable std::mutex scrub_error_mutex_;
  std::string last_scrub_error_;

  double recovery_millis_ = 0.0;
  uint64_t snapshot_users_loaded_ = 0;
  uint64_t records_replayed_ = 0;
  uint64_t torn_bytes_truncated_ = 0;

  /// Cached registry instruments (null when StorageOptions::metrics is).
  obs::Counter* metric_mutation_failures_ = nullptr;
  obs::Counter* metric_breaker_trips_ = nullptr;
  obs::Counter* metric_breaker_probes_ = nullptr;
  obs::Counter* metric_breaker_recoveries_ = nullptr;
  obs::Counter* metric_checkpoints_ = nullptr;
  obs::Counter* metric_failed_checkpoints_ = nullptr;
  obs::Counter* metric_scrubs_ = nullptr;
  obs::Counter* metric_scrub_corruptions_ = nullptr;
  obs::Counter* metric_repairs_ = nullptr;
  obs::Counter* metric_repair_failures_ = nullptr;
  obs::Gauge* gauge_breaker_open_ = nullptr;
  obs::Gauge* gauge_quarantined_ = nullptr;
  obs::Counter* metric_tier_hits_ = nullptr;
  obs::Counter* metric_tier_cold_loads_ = nullptr;
  obs::Counter* metric_tier_evictions_ = nullptr;
  obs::Counter* metric_tier_load_failures_ = nullptr;
  obs::Histogram* metric_tier_load_seconds_ = nullptr;

  std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  bool compact_kick_ = false;
  bool compact_stop_ = false;
  /// True while the compaction thread is live; lets mutators test for it
  /// without touching the std::thread object Close() concurrently joins.
  std::atomic<bool> compaction_running_{false};
  std::thread compactor_;

  /// Background scrubber thread, mirroring the compactor's lifecycle.
  std::mutex scrub_mutex_;
  std::condition_variable scrub_cv_;
  bool scrub_kick_ = false;
  bool scrub_stop_ = false;
  std::atomic<bool> scrubber_running_{false};
  std::thread scrubber_;
};

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_DURABLE_PROFILE_STORE_H_
