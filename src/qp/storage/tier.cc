#include "qp/storage/tier.h"

#include <algorithm>

namespace qp {
namespace storage {

ProfileTier::ProfileTier(size_t hot_capacity)
    : capacity_(hot_capacity == 0 ? 1 : hot_capacity) {}

void ProfileTier::NoteSnapshotEntry(const SnapshotEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  UserState& state = users_[entry.user_id];
  state.in_snapshot = true;
  state.offset = entry.offset;
  state.length = entry.length;
}

void ProfileTier::NoteLogged(const ProfileMutation& mutation,
                             std::string payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (mutation.kind) {
    case ProfileMutation::Kind::kPut: {
      UserState& state = users_[mutation.user_id];
      overlay_records_ -= state.tail.size();
      state.tail.clear();
      state.tail.push_back(std::move(payload));
      ++overlay_records_;
      // The Put payload alone reproduces the profile; the snapshot base
      // would only be parsed and thrown away.
      state.in_snapshot = false;
      break;
    }
    case ProfileMutation::Kind::kUpsert: {
      UserState& state = users_[mutation.user_id];
      state.tail.push_back(std::move(payload));
      ++overlay_records_;
      break;
    }
    case ProfileMutation::Kind::kRemove: {
      auto it = users_.find(mutation.user_id);
      if (it == users_.end()) return;
      overlay_records_ -= it->second.tail.size();
      if (it->second.hot) lru_.erase(it->second.lru_it);
      users_.erase(it);
      break;
    }
  }
}

ProfileTier::LoadPlan ProfileTier::PlanLoad(const std::string& user_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  LoadPlan plan;
  auto it = users_.find(user_id);
  if (it == users_.end()) return plan;
  plan.alive = true;
  plan.in_snapshot = it->second.in_snapshot;
  plan.offset = it->second.offset;
  plan.length = it->second.length;
  plan.tail = it->second.tail;
  return plan;
}

bool ProfileTier::Contains(const std::string& user_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return users_.count(user_id) > 0;
}

void ProfileTier::Touch(const std::string& user_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = users_.find(user_id);
  if (it == users_.end()) return;
  if (it->second.hot) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(user_id);
  it->second.hot = true;
  it->second.lru_it = lru_.begin();
}

std::vector<std::string> ProfileTier::EvictOverBudget() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> evicted;
  while (lru_.size() > capacity_) {
    const std::string& victim = lru_.back();
    auto it = users_.find(victim);
    if (it != users_.end()) {
      it->second.hot = false;
    }
    evicted.push_back(victim);
    lru_.pop_back();
    ++evictions_;
  }
  return evicted;
}

void ProfileTier::Erase(const std::string& user_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = users_.find(user_id);
  if (it == users_.end()) return;
  overlay_records_ -= it->second.tail.size();
  if (it->second.hot) lru_.erase(it->second.lru_it);
  users_.erase(it);
}

std::vector<std::string> ProfileTier::AliveUsers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> users;
  users.reserve(users_.size());
  for (const auto& [user_id, state] : users_) users.push_back(user_id);
  std::sort(users.begin(), users.end());
  return users;
}

std::vector<std::pair<std::string, ProfileTier::LoadPlan>>
ProfileTier::CheckpointPlans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, LoadPlan>> plans;
  plans.reserve(users_.size());
  for (const auto& [user_id, state] : users_) {
    LoadPlan plan;
    plan.alive = true;
    plan.in_snapshot = state.in_snapshot;
    plan.offset = state.offset;
    plan.length = state.length;
    plan.tail = state.tail;
    plans.emplace_back(user_id, std::move(plan));
  }
  std::sort(plans.begin(), plans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return plans;
}

void ProfileTier::ResetAfterCheckpoint(
    const std::vector<SnapshotEntry>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const SnapshotEntry& entry : entries) {
    auto it = users_.find(entry.user_id);
    if (it == users_.end()) continue;  // Removed since the cut — impossible
                                       // under all stripes, harmless anyway.
    it->second.in_snapshot = true;
    it->second.offset = entry.offset;
    it->second.length = entry.length;
    it->second.tail.clear();
  }
  overlay_records_ = 0;
}

void ProfileTier::CountHotHit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++hot_hits_;
}

void ProfileTier::CountColdLoad(double millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++cold_loads_;
  load_millis_ += millis;
}

void ProfileTier::CountLoadFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++load_failures_;
}

size_t ProfileTier::alive_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return users_.size();
}

TierStats ProfileTier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TierStats stats;
  stats.enabled = true;
  stats.hot_capacity = capacity_;
  stats.hot_resident = lru_.size();
  stats.cold_users = users_.size() - lru_.size();
  stats.hot_hits = hot_hits_;
  stats.cold_loads = cold_loads_;
  stats.evictions = evictions_;
  stats.load_failures = load_failures_;
  stats.overlay_records = overlay_records_;
  stats.load_millis = load_millis_;
  return stats;
}

}  // namespace storage
}  // namespace qp
