#include "qp/storage/snapshot.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <functional>

#include "qp/util/crc32c.h"
#include "qp/util/string_util.h"

namespace qp {
namespace storage {

const char kManifestName[] = "MANIFEST";

namespace {

const char kSnapshotHeader[] = "qp-snapshot v1";
const char kManifestHeader[] = "qp-manifest v1";

bool ParseUint64(std::string_view text, uint64_t* out) {
  // from_chars refuses signs, whitespace and overflow, so "-1" is
  // rejected as corrupt rather than wrapped to 2^64-1 like strtoull.
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out, 10);
  return ec == std::errc() && ptr == end;
}

}  // namespace

std::string SnapshotFileName(uint64_t seqno) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "snapshot-%020" PRIu64 ".qps", seqno);
  return buf;
}

std::string WalFileName(uint64_t first_seqno) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "wal-%020" PRIu64 ".log", first_seqno);
  return buf;
}

Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const Manifest& manifest) {
  std::string content = std::string(kManifestHeader) + "\n";
  content += "seqno " + std::to_string(manifest.seqno) + "\n";
  if (!manifest.snapshot_file.empty()) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x", manifest.snapshot_crc);
    content += "snapshot " + manifest.snapshot_file + " " +
               std::to_string(manifest.snapshot_bytes) + " " + crc_hex + "\n";
  }
  content += "wal " + manifest.wal_file + "\n";
  QP_RETURN_IF_ERROR(
      WriteFileAtomic(fs, JoinPath(dir, kManifestName), content));
  return fs->SyncDir(dir);
}

Result<Manifest> ReadManifest(FileSystem* fs, const std::string& dir) {
  QP_ASSIGN_OR_RETURN(std::string content,
                      fs->ReadFile(JoinPath(dir, kManifestName)));
  auto corrupt = [&](const std::string& what) {
    return Status::ParseError("corrupt manifest in " + dir + ": " + what);
  };
  std::vector<std::string> lines = Split(content, '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    return corrupt("bad header");
  }
  Manifest manifest;
  bool saw_seqno = false, saw_wal = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = StripWhitespace(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ' ');
    if (fields[0] == "seqno" && fields.size() == 2) {
      if (!ParseUint64(fields[1], &manifest.seqno)) {
        return corrupt("bad seqno");
      }
      saw_seqno = true;
    } else if (fields[0] == "snapshot" && fields.size() == 4) {
      manifest.snapshot_file = fields[1];
      uint64_t crc;
      if (!ParseUint64(fields[2], &manifest.snapshot_bytes) ||
          std::sscanf(fields[3].c_str(), "%" SCNx64, &crc) != 1) {
        return corrupt("bad snapshot line");
      }
      manifest.snapshot_crc = static_cast<uint32_t>(crc);
    } else if (fields[0] == "wal" && fields.size() == 2) {
      manifest.wal_file = fields[1];
      saw_wal = true;
    } else {
      return corrupt("unknown line: " + std::string(line));
    }
  }
  if (!saw_seqno || !saw_wal) return corrupt("missing seqno or wal line");
  return manifest;
}

SnapshotWriter::SnapshotWriter(FileSystem* fs) : fs_(fs) {}

Status SnapshotWriter::Flush() {
  if (buffer_.empty()) return Status::Ok();
  QP_RETURN_IF_ERROR(file_->Append(buffer_));
  crc_ = crc32c::Extend(crc_, buffer_.data(), buffer_.size());
  written_ += buffer_.size();
  buffer_.clear();
  return Status::Ok();
}

Status SnapshotWriter::Open(const std::string& path, uint64_t count) {
  if (file_ != nullptr) return Status::FailedPrecondition("writer is open");
  auto file_or = fs_->NewWritableFile(path, /*truncate=*/true);
  if (!file_or.ok()) return status_ = file_or.status();
  file_ = std::move(file_or).value();
  declared_count_ = count;
  buffer_ = std::string(kSnapshotHeader) + "\n";
  buffer_ += "count " + std::to_string(count) + "\n";
  return Status::Ok();
}

Status SnapshotWriter::Add(const std::string& user_id, std::string_view body) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  if (added_ == declared_count_) {
    return status_ = Status::FailedPrecondition(
               "snapshot writer: more entries than the declared count");
  }
  ++added_;
  buffer_ += "user " + std::to_string(user_id.size()) + " " +
             std::to_string(body.size()) + "\n";
  buffer_ += user_id;
  buffer_ += "\n";
  SnapshotEntry entry;
  entry.user_id = user_id;
  entry.offset = written_ + buffer_.size();
  entry.length = body.size();
  entries_.push_back(std::move(entry));
  buffer_.append(body);
  // 1 MiB write granularity: big enough to amortize syscalls, small
  // enough that a million-user checkpoint never owns the whole file.
  constexpr size_t kFlushBytes = 1u << 20;
  if (buffer_.size() >= kFlushBytes) {
    Status status = Flush();
    if (!status.ok()) return status_ = status;
  }
  return Status::Ok();
}

Status SnapshotWriter::Finish(uint64_t* bytes, uint32_t* crc) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  if (added_ != declared_count_) {
    return status_ = Status::FailedPrecondition(
               "snapshot writer: " + std::to_string(added_) +
               " entries added but " + std::to_string(declared_count_) +
               " declared");
  }
  Status status = Flush();
  if (!status.ok()) return status_ = status;
  if (!(status = file_->Sync()).ok()) return status_ = status;
  if (!(status = file_->Close()).ok()) return status_ = status;
  *bytes = written_;
  *crc = crc_;
  file_.reset();
  return Status::Ok();
}

Status WriteSnapshot(FileSystem* fs, const std::string& path,
                     const SnapshotUsers& users, uint64_t* bytes,
                     uint32_t* crc) {
  SnapshotWriter writer(fs);
  QP_RETURN_IF_ERROR(writer.Open(path, users.size()));
  for (const auto& [user_id, profile] : users) {
    QP_RETURN_IF_ERROR(writer.Add(user_id, profile->Serialize()));
  }
  return writer.Finish(bytes, crc);
}

namespace {

/// The one framing walk both readers share: verifies size + CRC against
/// the manifest, then visits every `user` entry with its id, body view
/// and the body's byte offset in the file. The visitor decides what to
/// materialize — LoadSnapshot parses profiles, IndexSnapshot records
/// positions only.
Status VerifyAndWalkSnapshot(
    const std::string& content, const std::string& path,
    uint64_t expected_bytes, uint32_t expected_crc,
    const std::function<Status(std::string&&, std::string_view, uint64_t)>&
        visit) {
  auto corrupt = [&](const std::string& what) {
    return Status::ParseError("corrupt snapshot " + path + ": " + what);
  };
  if (content.size() != expected_bytes) {
    return corrupt("size mismatch (" + std::to_string(content.size()) +
                   " vs manifest " + std::to_string(expected_bytes) + ")");
  }
  if (crc32c::Value(content) != expected_crc) {
    return corrupt("checksum mismatch");
  }

  // The checksum passed, so any framing violation below is a logic bug
  // rather than disk damage — but report it as corruption regardless.
  size_t pos = 0;
  auto read_line = [&](std::string_view* line) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) return false;
    *line = std::string_view(content).substr(pos, eol - pos);
    pos = eol + 1;
    return true;
  };

  std::string_view line;
  if (!read_line(&line) || line != kSnapshotHeader) {
    return corrupt("bad header");
  }
  if (!read_line(&line) || !StartsWith(line, "count ")) {
    return corrupt("missing count");
  }
  uint64_t count;
  if (!ParseUint64(line.substr(6), &count)) return corrupt("bad count");

  for (uint64_t i = 0; i < count; ++i) {
    if (!read_line(&line) || !StartsWith(line, "user ")) {
      return corrupt("missing user header");
    }
    std::vector<std::string> fields = Split(line, ' ');
    uint64_t id_len, body_len;
    if (fields.size() != 3 || !ParseUint64(fields[1], &id_len) ||
        !ParseUint64(fields[2], &body_len)) {
      return corrupt("bad user header");
    }
    // Bounds-check by subtraction: huge lengths must not wrap the sum.
    if (id_len >= content.size() - pos) {  // id plus its '\n' terminator.
      return corrupt("user entry past EOF");
    }
    std::string user_id = content.substr(pos, id_len);
    pos += id_len;
    if (content[pos] != '\n') return corrupt("missing id terminator");
    ++pos;
    if (body_len > content.size() - pos) {
      return corrupt("user entry past EOF");
    }
    std::string_view body = std::string_view(content).substr(pos, body_len);
    QP_RETURN_IF_ERROR(visit(std::move(user_id), body, pos));
    pos += body_len;
  }
  if (pos != content.size()) return corrupt("trailing bytes");
  return Status::Ok();
}

}  // namespace

Result<std::vector<std::pair<std::string, UserProfile>>> LoadSnapshot(
    FileSystem* fs, const std::string& path, uint64_t expected_bytes,
    uint32_t expected_crc) {
  QP_ASSIGN_OR_RETURN(std::string content, fs->ReadFile(path));
  std::vector<std::pair<std::string, UserProfile>> users;
  QP_RETURN_IF_ERROR(VerifyAndWalkSnapshot(
      content, path, expected_bytes, expected_crc,
      [&](std::string&& user_id, std::string_view body, uint64_t) -> Status {
        QP_ASSIGN_OR_RETURN(UserProfile profile, UserProfile::Parse(body));
        users.emplace_back(std::move(user_id), std::move(profile));
        return Status::Ok();
      }));
  return users;
}

Result<std::vector<SnapshotEntry>> IndexSnapshot(FileSystem* fs,
                                                 const std::string& path,
                                                 uint64_t expected_bytes,
                                                 uint32_t expected_crc) {
  QP_ASSIGN_OR_RETURN(std::string content, fs->ReadFile(path));
  std::vector<SnapshotEntry> entries;
  QP_RETURN_IF_ERROR(VerifyAndWalkSnapshot(
      content, path, expected_bytes, expected_crc,
      [&](std::string&& user_id, std::string_view body,
          uint64_t offset) -> Status {
        SnapshotEntry entry;
        entry.user_id = std::move(user_id);
        entry.offset = offset;
        entry.length = body.size();
        entries.push_back(std::move(entry));
        return Status::Ok();
      }));
  return entries;
}

}  // namespace storage
}  // namespace qp
