#include "qp/storage/durable_profile_store.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

#include "qp/obs/flight_recorder.h"
#include "qp/storage/record.h"
#include "qp/util/fault_hub.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace storage {

namespace {

/// FaultHub lives in qp_util, which cannot see qp_obs — the hub exposes
/// a bare function-pointer listener slot instead, installed here at
/// static init so every binary linking storage gets fault fires in the
/// flight recorder (the service constructor installs it too, for
/// belt and braces).
[[maybe_unused]] const bool g_fault_listener_installed = [] {
  FaultHub::SetFireListener(&obs::RecordFaultFire);
  return true;
}();

}  // namespace

DurableProfileStore::DurableProfileStore(const Schema* schema,
                                         size_t num_shards,
                                         obs::MetricsRegistry* metrics)
    : store_(schema, num_shards, metrics), clock_(Clock::Real()) {}

DurableProfileStore::DurableProfileStore(const Schema* schema,
                                         size_t num_shards,
                                         StorageOptions options)
    : store_(schema, num_shards, options.metrics),
      options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : DefaultFileSystem()),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()),
      dir_(options_.dir) {
  breaker_backoff_ms_.store(options_.breaker_backoff.count(),
                            std::memory_order_relaxed);
  if (options_.hot_capacity > 0 && !dir_.empty()) {
    tier_ = std::make_unique<ProfileTier>(options_.hot_capacity);
  }
  if (options_.metrics != nullptr) {
    // Thread the registry into every WAL writer this store will create
    // (Recover and each checkpoint rotation construct from options_.wal).
    options_.wal.metrics = options_.metrics;
    metric_mutation_failures_ =
        options_.metrics->counter("qp_storage_mutation_failures_total");
    metric_breaker_trips_ =
        options_.metrics->counter("qp_storage_breaker_trips_total");
    metric_breaker_probes_ =
        options_.metrics->counter("qp_storage_breaker_probes_total");
    metric_breaker_recoveries_ =
        options_.metrics->counter("qp_storage_breaker_recoveries_total");
    metric_checkpoints_ =
        options_.metrics->counter("qp_storage_checkpoints_total");
    metric_failed_checkpoints_ =
        options_.metrics->counter("qp_storage_failed_checkpoints_total");
    metric_scrubs_ = options_.metrics->counter("qp_storage_scrubs_total");
    metric_scrub_corruptions_ =
        options_.metrics->counter("qp_storage_scrub_corruptions_total");
    metric_repairs_ = options_.metrics->counter("qp_storage_repairs_total");
    metric_repair_failures_ =
        options_.metrics->counter("qp_storage_repair_failures_total");
    gauge_breaker_open_ =
        options_.metrics->gauge("qp_storage_breaker_open");
    gauge_quarantined_ =
        options_.metrics->gauge("qp_storage_quarantined_profiles");
    if (tiered()) {
      metric_tier_hits_ = options_.metrics->counter("qp_tier_hot_hits_total");
      metric_tier_cold_loads_ =
          options_.metrics->counter("qp_tier_cold_loads_total");
      metric_tier_evictions_ =
          options_.metrics->counter("qp_tier_evictions_total");
      metric_tier_load_failures_ =
          options_.metrics->counter("qp_tier_load_failures_total");
      metric_tier_load_seconds_ =
          options_.metrics->histogram("qp_tier_load_seconds");
    }
  }
}

Result<std::unique_ptr<DurableProfileStore>> DurableProfileStore::Open(
    const Schema* schema, StorageOptions options, size_t num_shards) {
  if (options.dir.empty()) {
    return Status::InvalidArgument(
        "DurableProfileStore::Open requires a storage directory; use the "
        "plain constructor for an in-memory store");
  }
  std::unique_ptr<DurableProfileStore> store(
      new DurableProfileStore(schema, num_shards, std::move(options)));
  WallTimer timer;
  uint64_t next_seqno = 1;
  QP_RETURN_IF_ERROR(store->Recover(&next_seqno));
  store->recovery_millis_ = timer.ElapsedMillis();
  if (store->options_.metrics != nullptr) {
    obs::MetricsRegistry* metrics = store->options_.metrics;
    metrics->gauge("qp_storage_recovery_millis")
        ->Set(store->recovery_millis_);
    metrics->gauge("qp_storage_snapshot_users_loaded")
        ->Set(static_cast<double>(store->snapshot_users_loaded_));
    metrics->gauge("qp_storage_records_replayed")
        ->Set(static_cast<double>(store->records_replayed_));
    metrics->gauge("qp_storage_torn_bytes_truncated")
        ->Set(static_cast<double>(store->torn_bytes_truncated_));
  }
  if (store->options_.background_compaction &&
      store->options_.compact_threshold_bytes > 0) {
    store->compaction_running_.store(true, std::memory_order_release);
    store->compactor_ = std::thread([s = store.get()] { s->CompactionLoop(); });
  }
  if (store->options_.scrub_interval.count() > 0) {
    store->scrubber_running_.store(true, std::memory_order_release);
    store->scrubber_ = std::thread([s = store.get()] { s->ScrubLoop(); });
  }
  return store;
}

DurableProfileStore::~DurableProfileStore() { Close(); }

Status DurableProfileStore::Recover(uint64_t* next_seqno) {
  QP_RETURN_IF_ERROR(fs_->CreateDir(dir_));

  auto manifest_or = ReadManifest(fs_, dir_);
  if (!manifest_or.ok() &&
      manifest_or.status().code() == StatusCode::kNotFound) {
    // Fresh directory: an empty WAL starting at seqno 1, then the
    // manifest referencing it (in that order, so the manifest never
    // names a file that does not exist).
    manifest_.seqno = 0;
    manifest_.wal_file = WalFileName(1);
    QP_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> file,
        fs_->NewWritableFile(JoinPath(dir_, manifest_.wal_file), true));
    QP_RETURN_IF_ERROR(file->Sync());
    QP_RETURN_IF_ERROR(WriteManifest(fs_, dir_, manifest_));
    wal_ = std::make_unique<WalWriter>(std::move(file), 1, options_.wal);
    *next_seqno = 1;
    return Status::Ok();
  }
  QP_RETURN_IF_ERROR(manifest_or.status());
  manifest_ = std::move(manifest_or).value();

  // Base state: the snapshot. Its checksum is verified against the
  // manifest before a single profile is parsed. A tiered store indexes
  // the entry headers only — no profile is materialized until its first
  // Get — so recovery cost and resident set stay O(hot budget), not
  // O(users).
  if (!manifest_.snapshot_file.empty()) {
    const std::string snapshot_path = JoinPath(dir_, manifest_.snapshot_file);
    if (tiered()) {
      QP_ASSIGN_OR_RETURN(
          auto entries,
          IndexSnapshot(fs_, snapshot_path, manifest_.snapshot_bytes,
                        manifest_.snapshot_crc));
      for (const SnapshotEntry& entry : entries) {
        tier_->NoteSnapshotEntry(entry);
        ++snapshot_users_loaded_;
      }
    } else {
      QP_ASSIGN_OR_RETURN(auto users,
                          LoadSnapshot(fs_, snapshot_path,
                                       manifest_.snapshot_bytes,
                                       manifest_.snapshot_crc));
      for (auto& [user_id, profile] : users) {
        QP_RETURN_IF_ERROR(store_.Put(user_id, std::move(profile)));
        ++snapshot_users_loaded_;
      }
    }
  }

  // Tail state: replay the WAL. A torn final record is the expected
  // signature of a crash mid-append and is silently dropped; anything
  // else that fails to verify is real corruption and fails the open.
  std::string wal_path = JoinPath(dir_, manifest_.wal_file);
  std::string wal_content;
  if (auto content_or = fs_->ReadFile(wal_path); content_or.ok()) {
    wal_content = std::move(content_or).value();
  } else if (content_or.status().code() != StatusCode::kNotFound) {
    return content_or.status();
  }
  WalReader reader(wal_content, manifest_.seqno + 1);
  uint64_t last_seqno = manifest_.seqno;
  for (;;) {
    WalRecord record;
    bool has_record = false;
    QP_RETURN_IF_ERROR(reader.Next(&record, &has_record));
    if (!has_record) break;
    QP_ASSIGN_OR_RETURN(ProfileMutation mutation,
                        DecodeMutation(record.payload));
    if (tiered()) {
      // The overlay absorbs the record; the profile itself stays cold
      // until first touch.
      tier_->NoteLogged(mutation, std::string(record.payload));
    } else {
      QP_RETURN_IF_ERROR(ApplyMutation(mutation));
    }
    last_seqno = record.seqno;
    ++records_replayed_;
  }
  torn_bytes_truncated_ = reader.torn_bytes();

  // Drop a torn tail without ever truncating the only durable copy of
  // acknowledged records: rebuild the valid prefix in a temp file and
  // atomically rename it over the segment (the same commit pattern as
  // the manifest). Any failure before the rename leaves the original
  // segment fully intact, so a crashed or failed recovery is always
  // retryable. A clean log is not rewritten at all.
  if (reader.torn_bytes() > 0) {
    const std::string tmp = wal_path + ".tmp";
    QP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> rebuilt,
                        fs_->NewWritableFile(tmp, /*truncate=*/true));
    if (reader.valid_bytes() > 0) {
      QP_RETURN_IF_ERROR(rebuilt->Append(
          std::string_view(wal_content).substr(0, reader.valid_bytes())));
    }
    QP_RETURN_IF_ERROR(rebuilt->Sync());
    QP_RETURN_IF_ERROR(rebuilt->Close());
    QP_RETURN_IF_ERROR(fs_->Rename(tmp, wal_path));
    QP_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  }
  // Reopen the segment for appending, continuing at last_seqno + 1 (the
  // manifest stays as-is — the segment still starts at seqno+1), and
  // fsync once so everything the recovered state was built from is
  // durable before new writes land behind it.
  QP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                      fs_->NewWritableFile(wal_path, /*truncate=*/false));
  QP_RETURN_IF_ERROR(file->Sync());
  segment_base_bytes_ = reader.valid_bytes();
  wal_ = std::make_unique<WalWriter>(std::move(file), last_seqno + 1,
                                     options_.wal);
  *next_seqno = last_seqno + 1;

  // Sweep leftovers of an interrupted checkpoint: snapshot/WAL files the
  // committed manifest does not reference, and orphaned temp files.
  if (auto names_or = fs_->ListDir(dir_); names_or.ok()) {
    for (const std::string& name : *names_or) {
      bool is_ours = StartsWith(name, "snapshot-") ||
                     StartsWith(name, "wal-") || EndsWith(name, ".tmp");
      bool referenced = name == kManifestName ||
                        name == manifest_.snapshot_file ||
                        name == manifest_.wal_file;
      if (is_ours && !referenced) {
        fs_->RemoveFile(JoinPath(dir_, name));  // Best effort.
      }
    }
  }
  return Status::Ok();
}

Status DurableProfileStore::ApplyMutation(const ProfileMutation& mutation) {
  switch (mutation.kind) {
    case ProfileMutation::Kind::kPut:
      return store_.Put(mutation.user_id, mutation.profile);
    case ProfileMutation::Kind::kUpsert:
      return store_.Upsert(mutation.user_id, mutation.preferences);
    case ProfileMutation::Kind::kRemove: {
      Status status = store_.Remove(mutation.user_id);
      // Remove of a user the snapshot no longer contains is fine: the
      // snapshot may already cover this record (replay is idempotent).
      if (status.code() == StatusCode::kNotFound) return Status::Ok();
      return status;
    }
  }
  return Status::Internal("unknown mutation kind");
}

size_t DurableProfileStore::StripeFor(const std::string& user_id) const {
  return std::hash<std::string>{}(user_id) % kNumStripes;
}

Result<ProfileSnapshot> DurableProfileStore::Get(const std::string& user_id) {
  if (!tiered()) return store_.Get(user_id);
  if (auto hit = store_.Get(user_id); hit.ok()) {
    tier_->CountHotHit();
    if (metric_tier_hits_ != nullptr) metric_tier_hits_->Add(1);
    tier_->Touch(user_id);
    return hit;
  }
  // Cold (or truly absent): take the user's stripe so the load
  // serializes against mutations of the same user, then re-check — a
  // racing Get may have paged the profile in already.
  std::lock_guard<std::mutex> stripe(stripes_[StripeFor(user_id)]);
  if (auto hit = store_.Get(user_id); hit.ok()) {
    tier_->Touch(user_id);
    return hit;
  }
  return LoadColdLocked(user_id);
}

Result<ProfileSnapshot> DurableProfileStore::LoadColdLocked(
    const std::string& user_id) {
  const ProfileTier::LoadPlan plan = tier_->PlanLoad(user_id);
  if (!plan.alive) {
    return Status::NotFound("no profile for user " + user_id);
  }
  WallTimer timer;
  if (Status fault = QP_FAULT_POINT("shard.load"); !fault.ok()) {
    tier_->CountLoadFailure();
    if (metric_tier_load_failures_ != nullptr) {
      metric_tier_load_failures_->Add(1);
    }
    return fault;
  }
  UserProfile profile;
  Status built = BuildFromPlan(user_id, plan, &profile);
  if (!built.ok()) {
    tier_->CountLoadFailure();
    if (metric_tier_load_failures_ != nullptr) {
      metric_tier_load_failures_->Add(1);
    }
    return built;
  }
  const double millis = timer.ElapsedMillis();
  tier_->CountColdLoad(millis);
  if (metric_tier_cold_loads_ != nullptr) metric_tier_cold_loads_->Add(1);
  if (metric_tier_load_seconds_ != nullptr) {
    metric_tier_load_seconds_->RecordMillis(millis);
  }
  for (;;) {
    // Install through the validating Put: the reload gets a strictly
    // larger epoch than the evicted incarnation, so stale cached
    // selections keyed on the old epoch can never be served again.
    UserProfile incarnation = profile;
    QP_RETURN_IF_ERROR(store_.Put(user_id, std::move(incarnation)));
    tier_->Touch(user_id);
    // Capture the snapshot *before* rebalancing the budget. Eviction
    // never takes the victim's stripe, so a concurrent mutator on
    // another stripe can evict this user between the Put and the Get —
    // in that rare window the read-back misses and we simply reinstall
    // (the durable state is complete; only residency was lost).
    Result<ProfileSnapshot> snapshot = store_.Get(user_id);
    EvictOverBudget();
    if (snapshot.ok()) return snapshot;
  }
}

Status DurableProfileStore::BuildFromPlan(const std::string& user_id,
                                          const ProfileTier::LoadPlan& plan,
                                          UserProfile* profile) {
  *profile = UserProfile();
  if (plan.in_snapshot) {
    // Reading manifest_ under a single stripe is safe: the pointer-and-
    // name swap happens only under *all* stripes (checkpoint), which any
    // stripe holder excludes.
    QP_ASSIGN_OR_RETURN(
        std::string body,
        fs_->ReadFileRange(JoinPath(dir_, manifest_.snapshot_file),
                           plan.offset, plan.length));
    QP_ASSIGN_OR_RETURN(*profile, UserProfile::Parse(body));
  }
  for (const std::string& payload : plan.tail) {
    QP_ASSIGN_OR_RETURN(ProfileMutation mutation, DecodeMutation(payload));
    switch (mutation.kind) {
      case ProfileMutation::Kind::kPut:
        *profile = std::move(mutation.profile);
        break;
      case ProfileMutation::Kind::kUpsert:
        for (const AtomicPreference& pref : mutation.preferences) {
          profile->AddOrUpdate(pref);
        }
        break;
      case ProfileMutation::Kind::kRemove:
        // The tier erases removed users outright; a remove in a live
        // overlay means the bookkeeping is out of sync with the log.
        return Status::Internal("remove record in overlay of alive user " +
                                user_id);
    }
  }
  return Status::Ok();
}

void DurableProfileStore::EvictOverBudget() {
  std::vector<std::string> victims = tier_->EvictOverBudget();
  for (const std::string& victim : victims) {
    // Dropping the resident copy only — the durable state is already
    // complete. A racing reload may have lost its residency marker and
    // will simply fault the profile back in (NotFound here is fine).
    store_.Remove(victim);
  }
  if (!victims.empty() && metric_tier_evictions_ != nullptr) {
    metric_tier_evictions_->Add(victims.size());
  }
}

std::vector<std::pair<std::string, ProfileSnapshot>>
DurableProfileStore::All() {
  if (!tiered()) return store_.All();
  // Fault every alive user through the LRU: memory stays bounded by the
  // hot budget while the caller walks the full population. Users whose
  // load fails (injected faults, quarantined damage) are skipped — this
  // is a debugging/export surface, not a recovery path.
  std::vector<std::pair<std::string, ProfileSnapshot>> all;
  for (const std::string& user_id : tier_->AliveUsers()) {
    if (auto snapshot = Get(user_id); snapshot.ok()) {
      all.emplace_back(user_id, std::move(snapshot).value());
    }
  }
  return all;
}

size_t DurableProfileStore::size() const {
  return tiered() ? tier_->alive_count() : store_.size();
}

std::vector<std::string> DurableProfileStore::Users() const {
  return tiered() ? tier_->AliveUsers() : store_.Users();
}

Result<std::vector<WalTailRecord>> DurableProfileStore::ReadMutationsAfter(
    uint64_t after_seqno) {
  std::lock_guard<std::mutex> meta(meta_mutex_);
  if (dir_.empty()) {
    return Status::Unimplemented("in-memory store has no mutation log");
  }
  if (closed_) return Status::FailedPrecondition("store is closed");
  // Invariant: the live segment's first record is manifest seqno + 1
  // (Recover anchors the reader there; every rotation names the new
  // segment that way). Holding meta_mutex_ excludes rotation for the
  // duration of the read; appends proceed under their stripes.
  const uint64_t segment_first = manifest_.seqno + 1;
  if (after_seqno + 1 < segment_first) {
    return Status::OutOfRange(
        "mutation log starts at seqno " + std::to_string(segment_first) +
        "; records after " + std::to_string(after_seqno) +
        " were compacted away");
  }
  QP_ASSIGN_OR_RETURN(std::string content,
                      fs_->ReadFile(JoinPath(dir_, manifest_.wal_file)));
  WalReader reader(content, segment_first);
  std::vector<WalTailRecord> out;
  WalRecord record;
  bool has_record = false;
  for (;;) {
    // Mid-log corruption is an error; a torn final frame (a concurrent
    // append caught mid-write — unacknowledged by construction) just
    // ends the stream.
    QP_RETURN_IF_ERROR(reader.Next(&record, &has_record));
    if (!has_record) break;
    if (record.seqno <= after_seqno) continue;
    WalTailRecord tail;
    tail.seqno = record.seqno;
    QP_ASSIGN_OR_RETURN(tail.mutation, DecodeMutation(record.payload));
    out.push_back(std::move(tail));
  }
  return out;
}

TierStats DurableProfileStore::tier_stats() const {
  return tiered() ? tier_->stats() : TierStats{};
}

Status DurableProfileStore::AdmitMutation() {
  const int state = breaker_state_.load(std::memory_order_acquire);
  if (state == kClosed) return Status::Ok();
  if (state == kOpen && options_.breaker_backoff.count() > 0) {
    const int64_t opened_ns = breaker_opened_ns_.load(std::memory_order_acquire);
    const int64_t backoff_ms =
        breaker_backoff_ms_.load(std::memory_order_acquire);
    if (clock_->NowNanos() - opened_ns >= backoff_ms * 1000000) {
      int expected = kOpen;
      if (breaker_state_.compare_exchange_strong(expected, kHalfOpen,
                                                 std::memory_order_acq_rel)) {
        obs::RecordFlightEvent(obs::FlightEventType::kBreakerTransition,
                               "open->half_open", dir_);
        // This mutation won the half-open race and carries the probe: a
        // recovery checkpoint that re-tests the disk end to end. On
        // success the breaker is closed and the mutation proceeds
        // normally (onto the fresh WAL generation); on failure the
        // breaker re-opened with a doubled backoff inside ProbeRecover.
        Status probe = ProbeRecover();
        if (probe.ok()) return Status::Ok();
        return Status::Unavailable("storage breaker probe failed: " +
                                   probe.message());
      }
    }
  }
  return Status::Unavailable(
      "storage circuit breaker open after repeated WAL failures; "
      "store is read-only");
}

void DurableProfileStore::OpenBreaker(BreakerState from) {
  int expected = from;
  if (!breaker_state_.compare_exchange_strong(expected, kOpen,
                                              std::memory_order_acq_rel)) {
    return;
  }
  if (from == kHalfOpen) {
    // A failed probe: the disk is still sick, wait longer before the
    // next one (exponential, capped).
    const int64_t current = breaker_backoff_ms_.load(std::memory_order_relaxed);
    breaker_backoff_ms_.store(
        std::min<int64_t>(std::max<int64_t>(current, 1) * 2,
                          options_.breaker_backoff_max.count()),
        std::memory_order_relaxed);
  } else {
    breaker_backoff_ms_.store(options_.breaker_backoff.count(),
                              std::memory_order_relaxed);
  }
  breaker_opened_ns_.store(clock_->NowNanos(), std::memory_order_release);
  obs::RecordFlightEvent(obs::FlightEventType::kBreakerTransition,
                         from == kHalfOpen ? "half_open->open"
                                           : "closed->open",
                         dir_);
  breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  if (metric_breaker_trips_ != nullptr) {
    metric_breaker_trips_->Add(1);
    gauge_breaker_open_->Set(1.0);
  }
}

Status DurableProfileStore::ProbeRecover() {
  breaker_probes_.fetch_add(1, std::memory_order_relaxed);
  if (metric_breaker_probes_ != nullptr) metric_breaker_probes_->Add(1);
  // The probe is a checkpoint: exclusive cut under every stripe, exactly
  // like Checkpoint(). The caller holds no stripe yet (AdmitMutation
  // runs before the mutation takes one), so the ordering is safe.
  std::array<std::unique_lock<std::mutex>, kNumStripes> locks;
  for (size_t i = 0; i < kNumStripes; ++i) {
    locks[i] = std::unique_lock<std::mutex>(stripes_[i]);
  }
  std::lock_guard<std::mutex> meta(meta_mutex_);
  if (closed_) {
    OpenBreaker(kHalfOpen);
    return Status::FailedPrecondition("store is closed");
  }
  Status status = CheckpointLocked(/*for_recovery=*/true);
  if (status.ok()) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    last_checkpoint_error_.clear();
    compact_backoff_bytes_.store(0, std::memory_order_release);
    breaker_backoff_ms_.store(options_.breaker_backoff.count(),
                              std::memory_order_relaxed);
    breaker_epoch_.fetch_add(1, std::memory_order_relaxed);
    breaker_recoveries_.fetch_add(1, std::memory_order_relaxed);
    if (metric_breaker_recoveries_ != nullptr) {
      metric_breaker_recoveries_->Add(1);
      gauge_breaker_open_->Set(0.0);
    }
    breaker_state_.store(kClosed, std::memory_order_release);
    obs::RecordFlightEvent(obs::FlightEventType::kBreakerTransition,
                           "half_open->closed", dir_);
  } else {
    ++failed_checkpoints_;
    if (metric_failed_checkpoints_ != nullptr) {
      metric_failed_checkpoints_->Add(1);
    }
    last_checkpoint_error_ = status.message();
    OpenBreaker(kHalfOpen);
  }
  return status;
}

Status DurableProfileStore::LogMutation(const std::string& payload) {
  Status status = wal_->Append(payload, nullptr);
  if (status.ok()) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    return status;
  }
  mutation_failures_.fetch_add(1, std::memory_order_relaxed);
  if (metric_mutation_failures_ != nullptr) {
    metric_mutation_failures_->Add(1);
  }
  const uint64_t failures =
      consecutive_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.breaker_threshold > 0 &&
      failures >= static_cast<uint64_t>(options_.breaker_threshold)) {
    OpenBreaker(kClosed);
  }
  return status;
}

Status DurableProfileStore::Put(const std::string& user_id,
                                UserProfile profile,
                                obs::RequestTrace* trace) {
  if (!durable()) return store_.Put(user_id, std::move(profile));
  QP_RETURN_IF_ERROR(AdmitMutation());
  // Validate before logging — the WAL must never contain a mutation
  // whose replay would fail.
  QP_RETURN_IF_ERROR(profile.Validate(store_.schema()));
  ProfileMutation mutation = ProfileMutation::Put(user_id, std::move(profile));
  std::string payload;
  EncodeMutation(mutation, &payload);

  std::lock_guard<std::mutex> stripe(stripes_[StripeFor(user_id)]);
  {
    obs::ScopedSpan span(trace, "wal_append");
    span.Counter("bytes", payload.size());
    QP_RETURN_IF_ERROR(LogMutation(payload));
  }
  // Tier bookkeeping runs between the WAL append and the in-memory
  // apply: once a mutation is logged, snapshot + overlay reproduce it,
  // so eviction at any later point loses nothing acknowledged.
  if (tiered()) tier_->NoteLogged(mutation, std::move(payload));
  Status status = store_.Put(user_id, std::move(mutation.profile));
  if (!status.ok()) {
    return Status::Internal("logged mutation failed to apply: " +
                            status.message());
  }
  if (tiered()) {
    tier_->Touch(user_id);
    EvictOverBudget();
  }
  MaybeKickCompaction();
  return Status::Ok();
}

Status DurableProfileStore::Upsert(
    const std::string& user_id,
    const std::vector<AtomicPreference>& preferences,
    obs::RequestTrace* trace) {
  if (!durable()) return store_.Upsert(user_id, preferences);
  QP_RETURN_IF_ERROR(AdmitMutation());

  std::lock_guard<std::mutex> stripe(stripes_[StripeFor(user_id)]);
  // Merge under the stripe lock so the validated result is exactly what
  // replaying this upsert over the logged prefix will produce. An
  // upsert of a cold user pages its current state in first — merging
  // over an empty profile would silently drop the evicted preferences.
  UserProfile merged;
  if (auto current = store_.Get(user_id); current.ok()) {
    merged = *current->profile;
  } else if (tiered()) {
    const ProfileTier::LoadPlan plan = tier_->PlanLoad(user_id);
    if (plan.alive) {
      WallTimer load_timer;
      QP_RETURN_IF_ERROR(BuildFromPlan(user_id, plan, &merged));
      tier_->CountColdLoad(load_timer.ElapsedMillis());
      if (metric_tier_cold_loads_ != nullptr) metric_tier_cold_loads_->Add(1);
    }
  }
  for (const AtomicPreference& pref : preferences) {
    merged.AddOrUpdate(pref);
  }
  QP_RETURN_IF_ERROR(merged.Validate(store_.schema()));

  ProfileMutation mutation = ProfileMutation::Upsert(user_id, preferences);
  std::string payload;
  EncodeMutation(mutation, &payload);
  {
    obs::ScopedSpan span(trace, "wal_append");
    span.Counter("bytes", payload.size());
    QP_RETURN_IF_ERROR(LogMutation(payload));
  }
  if (tiered()) tier_->NoteLogged(mutation, std::move(payload));
  Status status = store_.Put(user_id, std::move(merged));
  if (!status.ok()) {
    return Status::Internal("logged mutation failed to apply: " +
                            status.message());
  }
  if (tiered()) {
    tier_->Touch(user_id);
    EvictOverBudget();
  }
  MaybeKickCompaction();
  return Status::Ok();
}

Status DurableProfileStore::Remove(const std::string& user_id,
                                   obs::RequestTrace* trace) {
  if (!durable()) return store_.Remove(user_id);
  QP_RETURN_IF_ERROR(AdmitMutation());

  std::lock_guard<std::mutex> stripe(stripes_[StripeFor(user_id)]);
  // Existence check spans both tiers: a cold user is just as removable.
  if (auto current = store_.Get(user_id); !current.ok()) {
    if (!tiered() || !tier_->Contains(user_id)) {
      return current.status();  // Unknown user: nothing to log.
    }
  }
  ProfileMutation mutation = ProfileMutation::Remove(user_id);
  std::string payload;
  EncodeMutation(mutation, &payload);
  {
    obs::ScopedSpan span(trace, "wal_append");
    span.Counter("bytes", payload.size());
    QP_RETURN_IF_ERROR(LogMutation(payload));
  }
  if (tiered()) tier_->NoteLogged(mutation, std::move(payload));
  Status status = store_.Remove(user_id);
  if (!status.ok() && !(tiered() && status.code() == StatusCode::kNotFound)) {
    return Status::Internal("logged mutation failed to apply: " +
                            status.message());
  }
  MaybeKickCompaction();
  return Status::Ok();
}

Status DurableProfileStore::Checkpoint() {
  if (!durable()) {
    return Status::FailedPrecondition("store has no storage directory");
  }
  // Lock every stripe (in order) so no mutation is between its WAL
  // append and its in-memory apply: the (seqno, state) cut is exact.
  std::array<std::unique_lock<std::mutex>, kNumStripes> locks;
  for (size_t i = 0; i < kNumStripes; ++i) {
    locks[i] = std::unique_lock<std::mutex>(stripes_[i]);
  }
  std::lock_guard<std::mutex> meta(meta_mutex_);
  Status status = CheckpointLocked();
  if (closed_) return status;
  if (status.ok()) {
    last_checkpoint_error_.clear();
    compact_backoff_bytes_.store(0, std::memory_order_release);
  } else {
    ++failed_checkpoints_;
    if (metric_failed_checkpoints_ != nullptr) {
      metric_failed_checkpoints_->Add(1);
    }
    last_checkpoint_error_ = status.message();
    compact_backoff_bytes_.store(
        segment_base_bytes_ + wal_->stats().bytes_appended +
            options_.compact_threshold_bytes,
        std::memory_order_release);
  }
  return status;
}

Status DurableProfileStore::CheckpointLocked(bool for_recovery) {
  if (closed_) return Status::FailedPrecondition("store is closed");
  uint64_t seqno = wal_->last_appended_seqno();
  if (!for_recovery) {
    if (seqno == manifest_.seqno) return Status::Ok();  // Nothing new.

    // Make everything the snapshot will contain durable in the old WAL
    // first: if we crash mid-checkpoint the old generation must already
    // hold every acknowledged record.
    QP_RETURN_IF_ERROR(wal_->Sync());
  } else {
    // For a breaker-recovery probe or a scrub repair the current WAL
    // writer is dead or its generation damaged, so its Sync would fail
    // (or re-persist garbage); the in-memory state already equals
    // exactly the acknowledged mutations, and writing it out as a fresh
    // snapshot + empty WAL generation *is* the probe/repair. The
    // "nothing new" early-return is skipped too: rotation itself is the
    // point even when no records landed since the last manifest. The
    // rotation consumes one logical tick so the new generation's file
    // names can never collide with the committed one's — a recovery at
    // an unchanged seqno must not overwrite (and then garbage-collect)
    // the very snapshot the live manifest references.
    ++seqno;
  }

  Manifest next;
  next.seqno = seqno;
  next.snapshot_file = SnapshotFileName(seqno);
  next.wal_file = WalFileName(seqno + 1);
  std::vector<SnapshotEntry> new_entries;
  if (!tiered()) {
    SnapshotUsers users;
    for (auto& [user_id, snapshot] : store_.All()) {
      users.emplace_back(user_id, snapshot.profile);
    }
    QP_RETURN_IF_ERROR(WriteSnapshot(fs_, JoinPath(dir_, next.snapshot_file),
                                     users, &next.snapshot_bytes,
                                     &next.snapshot_crc));
  } else {
    // Tiered merge: every alive user lands in the new snapshot, but only
    // the resident ones are serialized from memory. A cold user whose
    // overlay is empty has its body copied verbatim from the old
    // snapshot (byte-identical, no parse); a cold user with buffered
    // mutations is rebuilt through the same plan a Get-load uses. All
    // stripes are held, so the plans are an exact cut.
    std::unordered_map<std::string, std::shared_ptr<const UserProfile>> hot;
    for (auto& [user_id, snapshot] : store_.All()) {
      hot.emplace(user_id, snapshot.profile);
    }
    const std::string old_snapshot =
        manifest_.snapshot_file.empty()
            ? std::string()
            : JoinPath(dir_, manifest_.snapshot_file);
    SnapshotWriter writer(fs_);
    const auto plans = tier_->CheckpointPlans();
    QP_RETURN_IF_ERROR(
        writer.Open(JoinPath(dir_, next.snapshot_file), plans.size()));
    for (const auto& [user_id, plan] : plans) {
      if (auto it = hot.find(user_id); it != hot.end()) {
        QP_RETURN_IF_ERROR(writer.Add(user_id, it->second->Serialize()));
        continue;
      }
      if (plan.in_snapshot && plan.tail.empty()) {
        QP_ASSIGN_OR_RETURN(
            std::string body,
            fs_->ReadFileRange(old_snapshot, plan.offset, plan.length));
        QP_RETURN_IF_ERROR(writer.Add(user_id, body));
        continue;
      }
      UserProfile rebuilt;
      QP_RETURN_IF_ERROR(BuildFromPlan(user_id, plan, &rebuilt));
      QP_RETURN_IF_ERROR(writer.Add(user_id, rebuilt.Serialize()));
    }
    QP_RETURN_IF_ERROR(
        writer.Finish(&next.snapshot_bytes, &next.snapshot_crc));
    new_entries = writer.TakeEntries();
  }
  QP_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> new_wal_file,
      fs_->NewWritableFile(JoinPath(dir_, next.wal_file), true));
  QP_RETURN_IF_ERROR(new_wal_file->Sync());
  // The commit point: once the manifest rename lands, the new
  // generation is what recovery will read. Until then every failure
  // above leaves the old generation fully intact.
  QP_RETURN_IF_ERROR(WriteManifest(fs_, dir_, next));

  const Manifest old = manifest_;
  manifest_ = next;
  WalWriterStats finished = wal_->stats();
  retired_.records_appended += finished.records_appended;
  retired_.bytes_appended += finished.bytes_appended;
  retired_.fsyncs += finished.fsyncs;
  retired_.sync_retries += finished.sync_retries;
  wal_->Close();
  wal_ = std::make_unique<WalWriter>(std::move(new_wal_file), seqno + 1,
                                     options_.wal);
  segment_base_bytes_ = 0;
  ++checkpoints_;
  if (metric_checkpoints_ != nullptr) metric_checkpoints_->Add(1);
  if (tiered()) tier_->ResetAfterCheckpoint(new_entries);

  if (!old.snapshot_file.empty() && old.snapshot_file != next.snapshot_file) {
    fs_->RemoveFile(JoinPath(dir_, old.snapshot_file));  // Best effort.
  }
  if (old.wal_file != next.wal_file) {
    fs_->RemoveFile(JoinPath(dir_, old.wal_file));
  }
  return Status::Ok();
}

Status DurableProfileStore::Sync() {
  if (!durable()) return Status::Ok();
  std::lock_guard<std::mutex> meta(meta_mutex_);
  if (closed_) return Status::FailedPrecondition("store is closed");
  return wal_->Sync();
}

Status DurableProfileStore::Close() {
  if (scrubber_running_.exchange(false, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(scrub_mutex_);
      scrub_stop_ = true;
    }
    scrub_cv_.notify_all();
    scrubber_.join();
  }
  if (compaction_running_.exchange(false, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(compact_mutex_);
      compact_stop_ = true;
    }
    compact_cv_.notify_all();
    compactor_.join();
  }
  if (!durable()) return Status::Ok();

  std::array<std::unique_lock<std::mutex>, kNumStripes> locks;
  for (size_t i = 0; i < kNumStripes; ++i) {
    locks[i] = std::unique_lock<std::mutex>(stripes_[i]);
  }
  std::lock_guard<std::mutex> meta(meta_mutex_);
  if (closed_) return Status::Ok();
  closed_ = true;
  // A failed Open destroys the store before the WAL writer exists.
  if (wal_ == nullptr) return Status::Ok();
  return wal_->Close();
}

void DurableProfileStore::MaybeKickCompaction() {
  if (options_.compact_threshold_bytes == 0 ||
      !compaction_running_.load(std::memory_order_acquire)) {
    return;
  }
  const uint64_t segment_bytes =
      segment_base_bytes_ + wal_->stats().bytes_appended;
  if (segment_bytes < options_.compact_threshold_bytes) return;
  if (segment_bytes < compact_backoff_bytes_.load(std::memory_order_acquire)) {
    return;  // Last checkpoint failed; wait for real growth first.
  }
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    compact_kick_ = true;
  }
  compact_cv_.notify_one();
}

void DurableProfileStore::CompactionLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compact_mutex_);
      compact_cv_.wait(lock, [this] { return compact_kick_ || compact_stop_; });
      if (compact_stop_) return;
      compact_kick_ = false;
    }
    // Checkpoint() records a failure (failed_checkpoints and the error
    // message in StorageStats) and arms a growth-based backoff, so a
    // persistent error neither vanishes silently nor re-kicks a doomed
    // snapshot write on every mutation. The store keeps running on the
    // old (intact) generation either way.
    Checkpoint();
  }
}

StorageStats DurableProfileStore::storage_stats() const {
  StorageStats stats;
  stats.durable = durable();
  stats.recovery_millis = recovery_millis_;
  stats.snapshot_users_loaded = snapshot_users_loaded_;
  stats.records_replayed = records_replayed_;
  stats.torn_bytes_truncated = torn_bytes_truncated_;
  if (!durable()) return stats;
  stats.mutation_failures =
      mutation_failures_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.breaker_open =
      breaker_state_.load(std::memory_order_acquire) != kClosed;
  stats.breaker_probes = breaker_probes_.load(std::memory_order_relaxed);
  stats.breaker_recoveries =
      breaker_recoveries_.load(std::memory_order_relaxed);
  stats.breaker_epoch = breaker_epoch_.load(std::memory_order_relaxed);
  stats.breaker_backoff_ms =
      breaker_backoff_ms_.load(std::memory_order_relaxed);
  stats.scrubs = scrubs_.load(std::memory_order_relaxed);
  stats.scrub_corruptions = scrub_corruptions_.load(std::memory_order_relaxed);
  stats.repairs = repairs_.load(std::memory_order_relaxed);
  stats.repair_failures = repair_failures_.load(std::memory_order_relaxed);
  stats.quarantined_profiles =
      quarantine_count_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> scrub_lock(scrub_error_mutex_);
    stats.last_scrub_error = last_scrub_error_;
  }
  std::lock_guard<std::mutex> meta(meta_mutex_);
  stats.checkpoints = checkpoints_;
  stats.failed_checkpoints = failed_checkpoints_;
  stats.last_checkpoint_error = last_checkpoint_error_;
  if (wal_ != nullptr) {
    WalWriterStats live = wal_->stats();
    stats.records_appended = retired_.records_appended + live.records_appended;
    stats.bytes_appended = retired_.bytes_appended + live.bytes_appended;
    stats.fsyncs = retired_.fsyncs + live.fsyncs;
    stats.sync_retries = retired_.sync_retries + live.sync_retries;
    stats.last_appended_seqno = wal_->last_appended_seqno();
    stats.last_synced_seqno = wal_->last_synced_seqno();
    stats.wal_segment_bytes = segment_base_bytes_ + live.bytes_appended;
  }
  return stats;
}

}  // namespace storage
}  // namespace qp
