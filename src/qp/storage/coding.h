#ifndef QP_STORAGE_CODING_H_
#define QP_STORAGE_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace qp {
namespace storage {

/// Little-endian fixed-width integer framing for the binary WAL format.
/// Doubles travel as their raw IEEE-754 bit pattern, so degrees of
/// interest round-trip exactly (the text profile format rounds to six
/// significant digits; the log must not).

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  PutFixed64(dst, bits);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

inline uint32_t DecodeFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

/// Cursor-style reader over an encoded buffer. Get* methods return false
/// (without advancing) when the remaining bytes cannot satisfy the read,
/// which decoders surface as a corruption Status.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

  bool GetFixed32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = DecodeFixed32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = DecodeFixed64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetFixed64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }

  bool GetByte(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetLengthPrefixed(std::string_view* s) {
    uint32_t n;
    if (!GetFixed32(&n)) return false;
    if (remaining() < n) {
      pos_ -= 4;
      return false;
    }
    *s = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_CODING_H_
