#include "qp/storage/fault_injection.h"

#include <algorithm>
#include <utility>

#include "qp/util/fault_hub.h"

namespace qp {
namespace storage {

/// Handle onto one in-memory file. All state lives in the shared
/// FileState so Crash() can revert files while handles are open.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingFileSystem* fs, std::string path,
                     std::shared_ptr<FaultInjectingFileSystem::FileState> state,
                     uint64_t generation)
      : fs_(fs),
        path_(std::move(path)),
        state_(std::move(state)),
        generation_(generation) {}

  Status Append(std::string_view data) override {
    // The seeded chaos schedule generalizes the one-shot knobs below:
    // kPartial keeps a fraction of the payload (a torn write), kError
    // drops it all. Evaluated (and any delay slept) before the FS lock
    // so a stall never convoys unrelated files.
    FaultAction fault = QP_FAULT_ACTION("fs.append");
    fault.Sleep();
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    if (closed_) return Status::FailedPrecondition("file closed: " + path_);
    if (state_->generation != generation_) {
      return Status::Internal("stale handle after crash: " + path_);
    }
    auto short_write = fs_->short_writes_.find(path_);
    if (short_write != fs_->short_writes_.end()) {
      size_t keep = std::min(short_write->second, data.size());
      fs_->short_writes_.erase(short_write);
      state_->data.append(data.data(), keep);
      return Status::Internal("injected short write on " + path_);
    }
    if (fault.fire && fault.mode == FaultMode::kPartial) {
      size_t keep = static_cast<size_t>(
          static_cast<double>(data.size()) * fault.partial_fraction);
      state_->data.append(data.data(), std::min(keep, data.size()));
      return Status::Internal("injected short write on " + path_);
    }
    if (fault.fire && fault.mode == FaultMode::kError) {
      return fault.ToStatus("fs.append");
    }
    state_->data.append(data.data(), data.size());
    return Status::Ok();
  }

  Status Sync() override {
    FaultAction fault = QP_FAULT_ACTION("fs.sync");
    fault.Sleep();
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    if (closed_) return Status::FailedPrecondition("file closed: " + path_);
    if (state_->generation != generation_) {
      return Status::Internal("stale handle after crash: " + path_);
    }
    if (fs_->fail_syncs_) {
      return Status::Internal("injected fsync failure on " + path_);
    }
    if (fs_->fail_next_syncs_ > 0) {
      --fs_->fail_next_syncs_;
      return Status::Internal("injected transient fsync failure on " + path_);
    }
    // A partial fsync has no meaningful shape; it degenerates to a
    // failure with nothing marked durable.
    if (fault.fire && fault.mode != FaultMode::kDelay) {
      return fault.ToStatus("fs.sync");
    }
    state_->synced_size = state_->data.size();
    fs_->num_syncs_ += 1;
    return Status::Ok();
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    closed_ = true;
    return Status::Ok();
  }

 private:
  FaultInjectingFileSystem* fs_;
  std::string path_;
  std::shared_ptr<FaultInjectingFileSystem::FileState> state_;
  uint64_t generation_;
  bool closed_ = false;
};

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::NewWritableFile(const std::string& path,
                                          bool truncate) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& state = files_[path];
  if (state == nullptr) {
    state = std::make_shared<FileState>();
    state->generation = crash_generation_;
  } else if (truncate) {
    state->data.clear();
    state->synced_size = 0;
    state->generation = crash_generation_;
  }
  return std::unique_ptr<WritableFile>(new FaultInjectingFile(
      this, path, state, state->generation));
}

Result<std::string> FaultInjectingFileSystem::ReadFile(
    const std::string& path) {
  FaultAction fault = QP_FAULT_ACTION("fs.read");
  fault.Sleep();
  if (fault.fire && fault.mode != FaultMode::kDelay) {
    return fault.ToStatus("fs.read");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second->data;
}

Result<std::string> FaultInjectingFileSystem::ReadFileRange(
    const std::string& path, uint64_t offset, uint64_t length) {
  // Same fault surface as ReadFile, but O(length): the default
  // whole-file fallback would make every tiered cold load copy the
  // entire snapshot.
  FaultAction fault = QP_FAULT_ACTION("fs.read");
  fault.Sleep();
  if (fault.fire && fault.mode != FaultMode::kDelay) {
    return fault.ToStatus("fs.read");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  const std::string& data = it->second->data;
  if (offset > data.size() || length > data.size() - offset) {
    return Status::OutOfRange("read range past EOF in " + path);
  }
  return data.substr(offset, length);
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::Ok();
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::Ok();
}

Status FaultInjectingFileSystem::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dirs_.insert(path);
  return Status::Ok();
}

Result<std::vector<std::string>> FaultInjectingFileSystem::ListDir(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix.push_back('/');
  std::vector<std::string> names;
  for (const auto& [file_path, state] : files_) {
    if (file_path.size() > prefix.size() &&
        file_path.compare(0, prefix.size(), prefix) == 0 &&
        file_path.find('/', prefix.size()) == std::string::npos) {
      names.push_back(file_path.substr(prefix.size()));
    }
  }
  return names;
}

bool FaultInjectingFileSystem::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultInjectingFileSystem::SyncDir(const std::string&) {
  return Status::Ok();
}

void FaultInjectingFileSystem::SetSyncFailure(bool fail) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_syncs_ = fail;
}

void FaultInjectingFileSystem::FailNextSyncs(uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_next_syncs_ = count;
}

void FaultInjectingFileSystem::InjectShortWrite(const std::string& path,
                                                size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  short_writes_[path] = keep_bytes;
}

Status FaultInjectingFileSystem::FlipBit(const std::string& path,
                                         size_t offset, int bit) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (offset >= it->second->data.size()) {
    return Status::OutOfRange("flip offset past EOF of " + path);
  }
  it->second->data[offset] =
      static_cast<char>(it->second->data[offset] ^ (1 << (bit & 7)));
  return Status::Ok();
}

void FaultInjectingFileSystem::Crash(Rng* rng) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++crash_generation_;
  for (auto& [path, state] : files_) {
    size_t unsynced = state->data.size() - state->synced_size;
    if (unsynced > 0) {
      // A torn write: a deterministic prefix of the unsynced tail made
      // it to the platter before power was lost.
      size_t kept = static_cast<size_t>(rng->Below(unsynced + 1));
      state->data.resize(state->synced_size + kept);
    }
    state->synced_size = state->data.size();
    state->generation = crash_generation_;
  }
}

void FaultInjectingFileSystem::CrashKeepingUnsynced() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++crash_generation_;
  for (auto& [path, state] : files_) {
    state->synced_size = state->data.size();
    state->generation = crash_generation_;
  }
}

Result<size_t> FaultInjectingFileSystem::SyncedSize(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second->synced_size;
}

uint64_t FaultInjectingFileSystem::num_syncs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_syncs_;
}

}  // namespace storage
}  // namespace qp
