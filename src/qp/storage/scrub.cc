#include "qp/storage/scrub.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "qp/graph/personalization_graph.h"
#include "qp/obs/flight_recorder.h"
#include "qp/obs/trace.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/record.h"
#include "qp/storage/snapshot.h"
#include "qp/storage/wal.h"
#include "qp/util/file.h"

namespace qp {
namespace storage {

namespace {

Status BadDegree(const std::string& what, double doi) {
  return Status::Internal(what + " has degree " + std::to_string(doi) +
                          " outside (0, 1]");
}

/// |doi| must sit in (0, 1]: zero-valued preferences are never stored,
/// and any edge degree above 1 would let a preference path's implicit
/// degree f(D) — the product of its edge degrees — exceed min(D).
bool DegreeInRange(double doi) {
  return std::isfinite(doi) && doi != 0.0 && std::fabs(doi) <= 1.0;
}

}  // namespace

Status CheckProfileInvariants(const Schema& schema, const UserProfile& profile,
                              const PersonalizationGraph* graph) {
  // The standing validation first: attributes exist, literal types match,
  // join preferences correspond to declared schema joins.
  QP_RETURN_IF_ERROR(profile.Validate(schema));
  for (const AtomicPreference& preference : profile.preferences()) {
    if (!DegreeInRange(preference.doi())) {
      return BadDegree("preference " + preference.ConditionString(),
                       preference.doi());
    }
  }
  if (graph == nullptr) {
    return Status::Internal("profile has no personalization graph");
  }
  // Every graph edge must carry an in-range degree too — the graph is
  // derived state and can rot independently of the profile it mirrors.
  for (const TableSchema& table : schema.tables()) {
    for (const JoinEdge& edge : graph->JoinsFrom(table.name())) {
      if (!DegreeInRange(edge.doi) || edge.doi < 0.0) {
        return BadDegree("join edge " + edge.ToString(), edge.doi);
      }
    }
    for (const SelectionEdge& edge : graph->SelectionsOn(table.name())) {
      if (!DegreeInRange(edge.doi) || edge.doi < 0.0) {
        return BadDegree("selection edge " + edge.ToString(), edge.doi);
      }
    }
    for (const SelectionEdge& edge : graph->NegativeSelectionsOn(table.name())) {
      if (!DegreeInRange(edge.doi) || edge.doi > 0.0) {
        return BadDegree("negative selection edge " + edge.ToString(),
                         edge.doi);
      }
    }
  }
  // The graph must actually mirror the profile: Build copies every
  // preference onto exactly one edge, so a count mismatch means the two
  // halves of the snapshot are out of sync (a torn in-memory update).
  const size_t graph_selections =
      graph->num_selection_edges() + graph->num_negative_selection_edges();
  if (graph->num_join_edges() != profile.NumJoins() ||
      graph_selections != profile.NumSelections()) {
    return Status::Internal(
        "personalization graph out of sync with profile: graph has " +
        std::to_string(graph->num_join_edges()) + " join / " +
        std::to_string(graph_selections) + " selection edges, profile has " +
        std::to_string(profile.NumJoins()) + " / " +
        std::to_string(profile.NumSelections()));
  }
  return Status::Ok();
}

Status DurableProfileStore::ScrubOnce(ScrubReport* report,
                                      obs::RequestTrace* trace) {
  ScrubReport local;
  if (report == nullptr) report = &local;
  *report = ScrubReport{};
  {
    std::lock_guard<std::mutex> meta(meta_mutex_);
    if (closed_) return Status::FailedPrecondition("store is closed");
  }
  obs::ScopedSpan span(trace, "scrub");
  if (durable()) ScrubDisk(report, trace);
  ScrubMemory(report, trace);

  scrubs_.fetch_add(1, std::memory_order_relaxed);
  if (metric_scrubs_ != nullptr) metric_scrubs_->Add(1);
  const uint64_t found =
      report->disk_corruptions + report->invariant_violations;
  if (found > 0) {
    scrub_corruptions_.fetch_add(found, std::memory_order_relaxed);
    if (metric_scrub_corruptions_ != nullptr) {
      metric_scrub_corruptions_->Add(found);
    }
  }
  {
    std::lock_guard<std::mutex> lock(scrub_error_mutex_);
    last_scrub_error_ = report->first_error;
  }
  span.Counter("wal_frames_verified", report->wal_frames_verified);
  span.Counter("corruptions", found);
  span.Counter("quarantined", report->quarantined);
  span.Counter("repaired", report->repaired);
  return Status::Ok();
}

void DurableProfileStore::ScrubDisk(ScrubReport* report,
                                    obs::RequestTrace* trace) {
  obs::ScopedSpan span(trace, "scrub_disk");
  bool need_repair = false;
  std::string failure;
  {
    std::lock_guard<std::mutex> meta(meta_mutex_);
    if (closed_ || wal_ == nullptr) return;
    // Holding meta_mutex_ pins the committed generation: checkpoints
    // cannot rotate the files out from under the read-back. Mutators are
    // unaffected — they append under their stripe lock only.
    if (manifest_.snapshot_file.empty()) {
      report->snapshot_verified = true;  // Fresh store: nothing to verify.
    } else {
      auto loaded =
          LoadSnapshot(fs_, JoinPath(dir_, manifest_.snapshot_file),
                       manifest_.snapshot_bytes, manifest_.snapshot_crc);
      if (loaded.ok()) {
        report->snapshot_verified = true;
      } else {
        ++report->disk_corruptions;
        failure = "snapshot: " + loaded.status().message();
      }
    }
    auto data = fs_->ReadFile(JoinPath(dir_, manifest_.wal_file));
    if (!data.ok()) {
      ++report->disk_corruptions;
      if (failure.empty()) failure = "wal: " + data.status().message();
    } else {
      WalReader reader(*data, manifest_.seqno + 1);
      WalRecord record;
      bool has_record = false;
      for (;;) {
        Status status = reader.Next(&record, &has_record);
        if (!status.ok()) {
          // Mid-log CRC damage. A torn tail is *not* reported here:
          // Next returns OK/has_record=false for it, because with a
          // live writer the tail is simply an append in flight.
          ++report->disk_corruptions;
          if (failure.empty()) failure = "wal: " + status.message();
          break;
        }
        if (!has_record) break;
        ++report->wal_frames_verified;
      }
    }
    need_repair = report->disk_corruptions > 0;
  }
  if (!failure.empty() && report->first_error.empty()) {
    report->first_error = failure;
  }
  if (!need_repair || !options_.scrub_auto_repair) return;

  // The in-memory state still holds exactly the acknowledged mutations,
  // so writing it out as a fresh snapshot + empty WAL generation (the
  // same rotation a breaker probe runs) replaces the damaged files with
  // an intact committed generation.
  std::array<std::unique_lock<std::mutex>, kNumStripes> locks;
  for (size_t i = 0; i < kNumStripes; ++i) {
    locks[i] = std::unique_lock<std::mutex>(stripes_[i]);
  }
  std::lock_guard<std::mutex> meta(meta_mutex_);
  if (closed_) return;
  Status repaired = CheckpointLocked(/*for_recovery=*/true);
  if (repaired.ok()) {
    ++report->repaired;
    repairs_.fetch_add(1, std::memory_order_relaxed);
    if (metric_repairs_ != nullptr) metric_repairs_->Add(1);
    obs::RecordFlightEvent(obs::FlightEventType::kRepair,
                           "disk_generation", dir_);
  } else {
    ++report->repair_failures;
    repair_failures_.fetch_add(1, std::memory_order_relaxed);
    if (metric_repair_failures_ != nullptr) metric_repair_failures_->Add(1);
  }
}

void DurableProfileStore::ScrubMemory(ScrubReport* report,
                                      obs::RequestTrace* trace) {
  obs::ScopedSpan span(trace, "scrub_memory");
  const Schema& schema = store_.schema();
  for (const auto& [user_id, snapshot] : store_.All()) {
    Status status =
        CheckProfileInvariants(schema, *snapshot.profile, snapshot.graph.get());
    if (status.ok()) {
      // A quarantined profile that checks out again (a later Put replaced
      // it, or a repair landed between passes) is released.
      if (IsQuarantined(user_id)) SetQuarantined(user_id, false);
      continue;
    }
    ++report->invariant_violations;
    report->corrupt_users.push_back(user_id);
    if (report->first_error.empty()) {
      report->first_error = user_id + ": " + status.message();
    }
    if (!IsQuarantined(user_id)) {
      SetQuarantined(user_id, true);
      ++report->quarantined;
    }
    if (options_.scrub_auto_repair && durable()) {
      if (RepairUser(user_id).ok()) {
        ++report->repaired;
      } else {
        ++report->repair_failures;
      }
    }
  }
}

Status DurableProfileStore::RepairUser(const std::string& user_id) {
  if (!durable()) {
    return Status::FailedPrecondition(
        "no durable state to repair " + user_id + " from");
  }
  Status status = [&]() -> Status {
    // The user's stripe serializes the repair against that user's
    // mutators (stripe before meta, the store's lock order), so the
    // durable truth read here cannot be overwritten by a concurrent Put
    // that our stale re-install would then clobber.
    std::lock_guard<std::mutex> stripe(stripes_[StripeFor(user_id)]);
    std::lock_guard<std::mutex> meta(meta_mutex_);
    if (closed_) return Status::FailedPrecondition("store is closed");

    bool present = false;
    UserProfile rebuilt;
    if (!manifest_.snapshot_file.empty()) {
      QP_ASSIGN_OR_RETURN(
          auto users,
          LoadSnapshot(fs_, JoinPath(dir_, manifest_.snapshot_file),
                       manifest_.snapshot_bytes, manifest_.snapshot_crc));
      for (auto& [id, profile] : users) {
        if (id == user_id) {
          rebuilt = std::move(profile);
          present = true;
          break;
        }
      }
    }
    QP_ASSIGN_OR_RETURN(std::string data,
                        fs_->ReadFile(JoinPath(dir_, manifest_.wal_file)));
    WalReader reader(data, manifest_.seqno + 1);
    WalRecord record;
    bool has_record = false;
    for (;;) {
      QP_RETURN_IF_ERROR(reader.Next(&record, &has_record));
      if (!has_record) break;
      QP_ASSIGN_OR_RETURN(ProfileMutation mutation,
                          DecodeMutation(record.payload));
      if (mutation.user_id != user_id) continue;
      switch (mutation.kind) {
        case ProfileMutation::Kind::kPut:
          rebuilt = std::move(mutation.profile);
          present = true;
          break;
        case ProfileMutation::Kind::kUpsert:
          for (const AtomicPreference& preference : mutation.preferences) {
            rebuilt.AddOrUpdate(preference);
          }
          present = true;
          break;
        case ProfileMutation::Kind::kRemove:
          rebuilt = UserProfile();
          present = false;
          break;
      }
    }
    if (present) {
      // Validated install through the inner store: rebuilds the graph,
      // bumps the epoch (caches notice), never touches the WAL — the
      // repaired state *is* the replay of what is already logged.
      QP_RETURN_IF_ERROR(store_.Put(user_id, std::move(rebuilt)));
      if (tiered()) {
        tier_->Touch(user_id);
        EvictOverBudget();
      }
      return Status::Ok();
    }
    // Durable truth says the user does not exist; absence is the repair.
    store_.Remove(user_id);
    if (tiered()) tier_->Erase(user_id);
    return Status::Ok();
  }();
  if (status.ok()) {
    SetQuarantined(user_id, false);
    repairs_.fetch_add(1, std::memory_order_relaxed);
    if (metric_repairs_ != nullptr) metric_repairs_->Add(1);
  } else {
    repair_failures_.fetch_add(1, std::memory_order_relaxed);
    if (metric_repair_failures_ != nullptr) metric_repair_failures_->Add(1);
  }
  return status;
}

bool DurableProfileStore::IsQuarantined(const std::string& user_id) const {
  if (quarantine_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  return quarantined_.count(user_id) != 0;
}

std::vector<std::string> DurableProfileStore::QuarantinedUsers() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(quarantine_mutex_);
    out.assign(quarantined_.begin(), quarantined_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void DurableProfileStore::SetQuarantined(const std::string& user_id,
                                         bool quarantined) {
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  bool changed;
  if (quarantined) {
    changed = quarantined_.insert(user_id).second;
  } else {
    changed = quarantined_.erase(user_id) != 0;
  }
  if (changed) {
    // The chokepoint for every quarantine and release (scrub pass,
    // repair, re-validated profile), so the flight recorder sees the
    // exact transition sequence.
    obs::RecordFlightEvent(quarantined
                               ? obs::FlightEventType::kQuarantine
                               : obs::FlightEventType::kRepair,
                           user_id, dir_);
  }
  quarantine_count_.store(quarantined_.size(), std::memory_order_release);
  if (gauge_quarantined_ != nullptr) {
    gauge_quarantined_->Set(static_cast<double>(quarantined_.size()));
  }
}

void DurableProfileStore::CorruptInMemoryForTest(const std::string& user_id,
                                                 UserProfile profile) {
  store_.InstallUnvalidatedForTest(user_id, std::move(profile));
}

void DurableProfileStore::ScrubLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(scrub_mutex_);
      // Through the clock seam: tests drive the cadence with a
      // FakeClock's Advance() instead of real elapsed time.
      clock_->WaitFor(scrub_cv_, lock,
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          options_.scrub_interval),
                      [this] { return scrub_kick_ || scrub_stop_; });
      if (scrub_stop_) return;
      scrub_kick_ = false;
    }
    // Findings land in counters/metrics; the pass itself only fails once
    // the store is closed, and Close() stops this thread first.
    ScrubOnce();
  }
}

}  // namespace storage
}  // namespace qp
