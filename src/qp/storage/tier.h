#ifndef QP_STORAGE_TIER_H_
#define QP_STORAGE_TIER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qp/storage/profile_backend.h"
#include "qp/storage/record.h"
#include "qp/storage/snapshot.h"

namespace qp {
namespace storage {

/// Residency bookkeeping for a tiered DurableProfileStore: which users
/// are alive, where each one's base body sits in the committed snapshot,
/// which logged mutations have landed since that snapshot (the WAL
/// overlay a cold load replays without re-reading the log file), and an
/// LRU over the profiles currently resident in memory.
///
/// The tier never touches the disk or the in-memory ProfileStore itself
/// — it answers "how do I rebuild this user?" (PlanLoad) and "who goes
/// cold?" (EvictOverBudget); the store executes the plan. Thread-safe
/// behind one internal mutex; every operation is O(1)-ish map/list work,
/// so holding it under a stripe lock is cheap. Lock order: stripe (or
/// all stripes + meta, for checkpoints) before this mutex, never the
/// reverse.
///
/// The invariant that makes eviction trivially safe: a mutation is
/// acknowledged only after its WAL append succeeded, and NoteLogged runs
/// before the in-memory apply, so snapshot + overlay always reproduce
/// every acknowledged mutation. Dropping a resident profile loses
/// nothing — the next Get pages it back byte-identically.
class ProfileTier {
 public:
  /// At most `hot_capacity` profiles resident (clamped to >= 1).
  explicit ProfileTier(size_t hot_capacity);

  size_t hot_capacity() const { return capacity_; }

  /// Recovery: records one snapshot entry (user alive, base body at
  /// offset/length, no overlay yet).
  void NoteSnapshotEntry(const SnapshotEntry& entry);

  /// Records an acknowledged logged mutation. kPut resets the user's
  /// overlay to just this payload (a Put replaces everything, so the
  /// snapshot base is dead weight and is dropped from the plan); kUpsert
  /// appends; kRemove erases the user entirely — the next checkpoint
  /// simply omits them. Called during recovery replay and, at runtime,
  /// under the mutating user's stripe lock after the WAL append.
  void NoteLogged(const ProfileMutation& mutation, std::string payload);

  /// Everything needed to rebuild one user without the WAL file: the
  /// snapshot base (when still live) plus the overlay payloads in log
  /// order.
  struct LoadPlan {
    bool alive = false;
    bool in_snapshot = false;
    uint64_t offset = 0;
    uint64_t length = 0;
    std::vector<std::string> tail;
  };
  LoadPlan PlanLoad(const std::string& user_id) const;

  bool Contains(const std::string& user_id) const;

  /// Marks `user_id` resident and most-recently used (inserting into the
  /// LRU if absent). Does not evict — callers follow up with
  /// EvictOverBudget so the decision happens once per install.
  void Touch(const std::string& user_id);

  /// Pops least-recently-used residents until the budget holds, marking
  /// them cold. Returns the users to drop from memory; the tier has
  /// already forgotten their residency, so a racing Touch re-inserts
  /// harmlessly.
  std::vector<std::string> EvictOverBudget();

  /// Forgets `user_id` entirely (repair discovered the durable truth has
  /// no such user).
  void Erase(const std::string& user_id);

  /// Every alive user, sorted — the iteration order of All() and of
  /// checkpoint merges.
  std::vector<std::string> AliveUsers() const;

  /// Checkpoint support: every alive user with its rebuild plan, sorted
  /// by user id. Call under a consistent cut (all stripes held).
  std::vector<std::pair<std::string, LoadPlan>> CheckpointPlans() const;

  /// After a checkpoint committed: every alive user's base is now
  /// `entries` (the new snapshot), overlays are gone. Residency is
  /// unchanged — the hot set stays hot.
  void ResetAfterCheckpoint(const std::vector<SnapshotEntry>& entries);

  /// Cold-load accounting, driven by the store.
  void CountHotHit();
  void CountColdLoad(double millis);
  void CountLoadFailure();

  size_t alive_count() const;
  TierStats stats() const;

 private:
  struct UserState {
    bool in_snapshot = false;
    uint64_t offset = 0;
    uint64_t length = 0;
    std::vector<std::string> tail;
    bool hot = false;
    std::list<std::string>::iterator lru_it;  // Valid iff hot.
  };

  size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, UserState> users_;
  std::list<std::string> lru_;  // Front = most recently used; hot users only.
  uint64_t overlay_records_ = 0;
  uint64_t hot_hits_ = 0;
  uint64_t cold_loads_ = 0;
  uint64_t evictions_ = 0;
  uint64_t load_failures_ = 0;
  double load_millis_ = 0.0;
};

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_TIER_H_
