#ifndef QP_STORAGE_SCRUB_H_
#define QP_STORAGE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qp/pref/profile.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

class PersonalizationGraph;

namespace storage {

/// What one integrity-scrub pass found. Produced by
/// DurableProfileStore::ScrubOnce; the cumulative counters live in
/// StorageStats (scrubs, scrub_corruptions, repairs, ...).
struct ScrubReport {
  /// Disk pass: the committed generation re-verified end to end.
  bool snapshot_verified = false;    // Manifest names no snapshot, or CRC ok.
  uint64_t wal_frames_verified = 0;  // CRC-valid frames in the live WAL.
  /// Mid-log CRC damage or a snapshot/manifest mismatch. A torn tail at
  /// the very end of the WAL is NOT corruption — with a live writer it
  /// is simply an append in flight.
  uint64_t disk_corruptions = 0;
  /// Memory pass: profiles whose standing invariants failed re-checking
  /// (schema validation, doi ∈ (0,1], graph edges in range — the bounds
  /// that make f(D) ≤ min(D) hold for every preference path).
  uint64_t invariant_violations = 0;
  std::vector<std::string> corrupt_users;
  /// Actions taken this pass.
  uint64_t quarantined = 0;
  uint64_t repaired = 0;
  uint64_t repair_failures = 0;
  std::string first_error;  // Human-readable cause of the first finding.
};

/// Re-checks the invariants a healthy in-memory profile must satisfy:
/// validates against the schema (attribute existence, literal types, doi
/// within (0, 1]) and bounds every graph edge's |doi| by 1 — the per-edge
/// bound that makes a preference path's implicit degree f(D), the product
/// of its edge degrees, obey f(D) ≤ min(D). Returns the first violation.
Status CheckProfileInvariants(const Schema& schema, const UserProfile& profile,
                              const PersonalizationGraph* graph);

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_SCRUB_H_
