#ifndef QP_STORAGE_WAL_H_
#define QP_STORAGE_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "qp/obs/metrics.h"
#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// When WalWriter::Append returns, how much of the record is guaranteed
/// to survive a crash.
enum class FsyncPolicy {
  /// Every record is fsynced before Append returns. Concurrent writers
  /// are group-committed: one fsync covers every record that queued up
  /// while the previous fsync was in flight.
  kEveryRecord,
  /// Records are written to the OS immediately but fsynced at most once
  /// per `sync_interval`. A crash loses at most one interval of
  /// acknowledged records.
  kInterval,
  /// Never fsync (the OS flushes when it pleases). Fastest; a crash may
  /// lose everything since the last external Sync().
  kNever,
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// Max time acknowledged records may sit unsynced under kInterval.
  std::chrono::milliseconds sync_interval{50};
  /// How many times a failed fsync is retried (with exponential backoff
  /// starting at `retry_backoff`, capped at 100ms per wait) before the
  /// failure becomes sticky. Retrying fsync is safe — it re-requests
  /// durability of bytes already handed to the OS; a failed *append* is
  /// never retried, since a partial write followed by a re-append would
  /// duplicate frame bytes and corrupt the log. 0 (default) = fail on
  /// the first error, the historical behavior.
  int max_sync_retries = 0;
  std::chrono::milliseconds retry_backoff{1};
  /// When set, the writer mirrors its stats into qp_wal_* counters and
  /// records per-fsync latency (including retry backoff) into the
  /// qp_wal_sync_seconds histogram. Instruments are looked up once at
  /// construction. Not owned; must outlive the writer.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters a writer accumulates over its lifetime. When
/// WalOptions::metrics is set these are also mirrored, increment for
/// increment, into the registry (qp_wal_*); the struct remains the
/// canonical per-writer view because registry counters aggregate across
/// writer generations (segment rotations).
struct WalWriterStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  /// Fsync attempts that failed and were retried (successfully or not).
  uint64_t sync_retries = 0;
};

/// On-disk record frame (all integers little-endian):
///
///   [ body_size u32 | masked crc32c(size) u32 | masked crc32c(body) u32
///     | body ]
///   body = [ seqno u64 | payload ]
///
/// The length field carries its own checksum: a bit flip in body_size
/// fails the header check instead of sending the reader to a bogus
/// frame boundary, where mid-log corruption would masquerade as a torn
/// tail and silently discard every record after it.
///
/// Sequence numbers are assigned by the writer, dense and strictly
/// increasing; the reader verifies the progression, so a record from a
/// stale log generation can never be replayed silently.
class WalWriter {
 public:
  /// Takes ownership of `file`, an empty (or freshly truncated) log.
  /// The first record appended gets sequence number `first_seqno`.
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t first_seqno,
            WalOptions options = {});
  ~WalWriter();

  /// Appends one record. Thread-safe; under kEveryRecord, concurrent
  /// appends are batched into one write+fsync (group commit). On success
  /// `*seqno` is the record's sequence number. Any I/O or fsync failure
  /// is sticky: the writer refuses further appends, because a log with a
  /// hole cannot be trusted.
  Status Append(std::string_view payload, uint64_t* seqno);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  Status Close();

  /// Highest sequence number handed out (0 if none yet).
  uint64_t last_appended_seqno() const;
  /// Highest sequence number known durable (0 if none).
  uint64_t last_synced_seqno() const;

  WalWriterStats stats() const;

 private:
  Status AppendLocked(std::string_view payload, std::unique_lock<std::mutex>* lock,
                      uint64_t* seqno);
  Status SyncLocked(std::unique_lock<std::mutex>* lock);
  /// file_->Sync() with up to max_sync_retries backoff retries. Called
  /// UNLOCKED (the flushing_ flag keeps the file exclusively ours);
  /// `*retries` counts attempts made, for the caller to fold into stats
  /// once the lock is re-held.
  Status SyncWithRetries(uint64_t* retries);

  const WalOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unique_ptr<WritableFile> file_;
  uint64_t next_seqno_;
  uint64_t synced_seqno_ = 0;
  /// Records encoded but not yet handed to the file (group-commit queue).
  std::string pending_;
  uint64_t pending_max_seqno_ = 0;
  bool flushing_ = false;
  Status error_;  // Sticky first failure.
  std::chrono::steady_clock::time_point last_sync_time_;
  WalWriterStats stats_;
  obs::Counter* metric_records_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Counter* metric_fsyncs_ = nullptr;
  obs::Counter* metric_sync_retries_ = nullptr;
  obs::Histogram* metric_sync_seconds_ = nullptr;
};

/// One decoded record.
struct WalRecord {
  uint64_t seqno = 0;
  std::string_view payload;  // Into the reader's buffer.
};

/// Sequential reader over a complete WAL buffer. Distinguishes the two
/// failure modes recovery cares about:
///   - a *torn tail* (the final record is incomplete, or its checksum
///     fails and nothing follows) ends the log cleanly — the bytes are
///     reported via torn_bytes() and the caller truncates;
///   - a corrupt record with more data after it (bit flip, bad seqno,
///     bad frame mid-log) is an error — replaying past a hole would
///     silently diverge from the pre-crash state.
/// When the length field's own checksum fails, the reader scans the
/// remainder for a complete frame that continues the sequence: finding
/// one proves valid records would be lost by truncating, so the open
/// fails instead.
class WalReader {
 public:
  /// `data` must outlive the reader. `expected_first_seqno` anchors the
  /// sequence check (records replayed after a snapshot at S start at S+1).
  WalReader(std::string_view data, uint64_t expected_first_seqno);

  /// Reads the next record. Returns OK with *has_record=false at the end
  /// of the valid prefix (clean or torn); a non-OK status means mid-log
  /// corruption.
  Status Next(WalRecord* record, bool* has_record);

  /// Bytes of valid records consumed so far.
  size_t valid_bytes() const { return valid_end_; }
  /// Bytes discarded at the tail (0 unless the log was torn).
  size_t torn_bytes() const { return torn_bytes_; }

 private:
  bool HasValidFrameAfter(size_t from) const;

  std::string_view data_;
  size_t pos_ = 0;
  size_t valid_end_ = 0;
  size_t torn_bytes_ = 0;
  uint64_t expected_seqno_;
  bool done_ = false;
};

/// Encodes one framed record (used by the writer; exposed for tests).
void EncodeWalRecord(uint64_t seqno, std::string_view payload,
                     std::string* dst);

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_WAL_H_
