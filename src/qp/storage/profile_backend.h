#ifndef QP_STORAGE_PROFILE_BACKEND_H_
#define QP_STORAGE_PROFILE_BACKEND_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qp/obs/trace.h"
#include "qp/pref/preference.h"
#include "qp/service/profile_store.h"
#include "qp/storage/record.h"
#include "qp/storage/scrub.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// Storage-side counters, surfaced through ServiceStats::storage.
struct StorageStats {
  bool durable = false;
  uint64_t records_appended = 0;  // WAL records over the store's lifetime.
  uint64_t bytes_appended = 0;    // WAL bytes over the store's lifetime.
  uint64_t fsyncs = 0;
  /// Fsync attempts that failed transiently and were retried by the WAL.
  uint64_t sync_retries = 0;
  /// Mutations that failed at the WAL (after its retries).
  uint64_t mutation_failures = 0;
  /// Times the circuit breaker tripped the store to read-only. A true
  /// counter: every open — first trip or a failed probe re-opening —
  /// increments it.
  uint64_t breaker_trips = 0;
  /// Half-open recovery accounting: probes attempted, probes that closed
  /// the breaker, and the breaker generation (bumped on every successful
  /// recovery — state written before the epoch bump is from a previous
  /// breaker life).
  uint64_t breaker_probes = 0;
  uint64_t breaker_recoveries = 0;
  uint64_t breaker_epoch = 0;
  /// The backoff a re-open would currently wait before probing again.
  uint64_t breaker_backoff_ms = 0;
  /// True while mutations are being rejected with Unavailable.
  bool breaker_open = false;
  /// Integrity scrubber accounting: completed passes, findings (disk CRC
  /// damage + in-memory invariant violations), repairs, and the profiles
  /// currently quarantined.
  uint64_t scrubs = 0;
  uint64_t scrub_corruptions = 0;
  uint64_t repairs = 0;
  uint64_t repair_failures = 0;
  uint64_t quarantined_profiles = 0;
  std::string last_scrub_error;
  uint64_t checkpoints = 0;
  uint64_t failed_checkpoints = 0;
  /// Message of the most recent checkpoint/compaction failure; cleared
  /// when one succeeds again. Background compaction failures are not
  /// returned to any caller, so this is where they surface.
  std::string last_checkpoint_error;
  uint64_t last_appended_seqno = 0;
  uint64_t last_synced_seqno = 0;
  uint64_t wal_segment_bytes = 0;  // Live (uncompacted) WAL length.
  // Recovery outcome of the Open() that produced this store.
  double recovery_millis = 0.0;
  uint64_t snapshot_users_loaded = 0;
  uint64_t records_replayed = 0;
  uint64_t torn_bytes_truncated = 0;
};

/// Hot/cold residency counters of a tiered backend. All zero (and
/// `enabled` false) for a store that keeps every profile resident.
struct TierStats {
  bool enabled = false;
  size_t hot_capacity = 0;  // Max profiles resident at once.
  size_t hot_resident = 0;  // Profiles currently in memory.
  size_t cold_users = 0;    // Alive users currently evicted to disk.
  uint64_t hot_hits = 0;    // Gets answered from memory.
  uint64_t cold_loads = 0;  // Gets that paged a profile in from disk.
  uint64_t evictions = 0;   // Profiles dropped from memory (disk kept).
  uint64_t load_failures = 0;
  /// Mutation payloads buffered since the last checkpoint — the WAL
  /// overlay cold loads replay on top of their snapshot body. Bounded by
  /// the compaction threshold.
  uint64_t overlay_records = 0;
  double load_millis = 0.0;  // Cumulative cold-load wall time.
};

/// One decoded record of a backend's mutation log, as streamed by
/// ReadMutationsAfter: the log position plus the mutation it carries.
/// Seqnos are strictly increasing within one stream.
struct WalTailRecord {
  uint64_t seqno = 0;
  ProfileMutation mutation;
};

/// The storage interface the service layer programs against: the full
/// mutation/read/maintenance surface of a profile store, independent of
/// how (or whether) state is persisted and which profiles are resident.
/// DurableProfileStore is the canonical implementation — in-memory,
/// write-ahead-logged, or tiered hot/cold — and the sharded front end
/// opens one backend per shard. Mirrors the pluggable-EDB shape: the
/// engine sees an abstract store, the concrete layer decides residency.
///
/// All methods are thread-safe. `Get` is non-const by design: a tiered
/// backend may fault the profile in from disk (and evict another) on the
/// way.
class ProfileBackend {
 public:
  virtual ~ProfileBackend() = default;

  /// Mutators mirror ProfileStore but may be logged/persisted first.
  /// `trace`, when given, receives spans covering the durability cost.
  virtual Status Put(const std::string& user_id, UserProfile profile,
                     obs::RequestTrace* trace = nullptr) = 0;
  virtual Status Upsert(const std::string& user_id,
                        const std::vector<AtomicPreference>& preferences,
                        obs::RequestTrace* trace = nullptr) = 0;
  virtual Status Remove(const std::string& user_id,
                        obs::RequestTrace* trace = nullptr) = 0;

  /// The user's current snapshot; NotFound for unknown users.
  virtual Result<ProfileSnapshot> Get(const std::string& user_id) = 0;

  /// Every alive user's snapshot, sorted by user id. A tiered backend
  /// faults cold users in (and back out) through its LRU to build this —
  /// a debugging/export surface, not a hot path.
  virtual std::vector<std::pair<std::string, ProfileSnapshot>> All() = 0;

  /// Every alive user's id, sorted — the body-free companion of All()
  /// for callers that only need to enumerate ownership (a tiered backend
  /// answers from its index without paging anything in).
  virtual std::vector<std::string> Users() const = 0;

  /// Streams the mutation log tail: every acknowledged mutation with a
  /// sequence number strictly greater than `after_seqno`, in log order.
  /// The seam live migration drains a source shard through — the copy
  /// phase records a watermark, then tail catch-up replays everything
  /// the source acknowledged since. Returns:
  ///   - OutOfRange when the log no longer reaches back to `after_seqno`
  ///     (a checkpoint rotated it away) — the caller must restart from a
  ///     fresh snapshot;
  ///   - Unimplemented for backends without a mutation log (the
  ///     default).
  /// A torn final frame (an append in flight on another thread) is not
  /// an error: the stream simply ends before it — by construction a torn
  /// record was never acknowledged to the caller being migrated.
  virtual Result<std::vector<WalTailRecord>> ReadMutationsAfter(
      uint64_t after_seqno) {
    (void)after_seqno;
    return Status::Unimplemented("backend has no mutation log");
  }

  /// Alive users, resident or not.
  virtual size_t size() const = 0;
  virtual const Schema& schema() const = 0;
  virtual bool durable() const = 0;

  virtual Status Checkpoint() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  virtual StorageStats storage_stats() const = 0;
  virtual TierStats tier_stats() const { return TierStats{}; }

  virtual Status ScrubOnce(ScrubReport* report = nullptr,
                           obs::RequestTrace* trace = nullptr) = 0;
  virtual Status RepairUser(const std::string& user_id) = 0;
  virtual bool IsQuarantined(const std::string& user_id) const = 0;
  virtual std::vector<std::string> QuarantinedUsers() const = 0;
};

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_PROFILE_BACKEND_H_
