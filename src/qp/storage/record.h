#ifndef QP_STORAGE_RECORD_H_
#define QP_STORAGE_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

#include "qp/pref/preference.h"
#include "qp/pref/profile.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// One logical profile mutation, the unit the WAL records and recovery
/// replays. Mirrors the three ProfileStore mutators:
///   kPut    — whole-profile replace (payload: `profile`)
///   kUpsert — merge `preferences` into the current profile
///   kRemove — delete the user
struct ProfileMutation {
  enum class Kind : uint8_t { kPut = 1, kUpsert = 2, kRemove = 3 };

  Kind kind = Kind::kPut;
  std::string user_id;
  UserProfile profile;                      // kPut only.
  std::vector<AtomicPreference> preferences;  // kUpsert only.

  static ProfileMutation Put(std::string user_id, UserProfile profile);
  static ProfileMutation Upsert(std::string user_id,
                                std::vector<AtomicPreference> preferences);
  static ProfileMutation Remove(std::string user_id);
};

/// Appends the binary encoding of `mutation` to `*dst`. The encoding is
/// exact (doubles as raw bit patterns), unlike the text profile format
/// which rounds degrees to six significant digits.
void EncodeMutation(const ProfileMutation& mutation, std::string* dst);

/// Decodes one mutation from `data`, which must contain exactly one
/// encoded mutation. Any framing violation (truncated field, unknown
/// kind/tag, trailing bytes) yields a ParseError.
Result<ProfileMutation> DecodeMutation(std::string_view data);

/// Preference-level encode/decode, shared by mutations and exercised
/// directly by the round-trip fuzz suite.
void EncodePreference(const AtomicPreference& preference, std::string* dst);

/// True when the two preferences are identical including kind, condition,
/// width and exact degree bits (SameCondition ignores the degree).
bool PreferencesEqual(const AtomicPreference& a, const AtomicPreference& b);

/// Exact structural equality of two profiles: same preferences in the
/// same order, degrees compared bit-for-bit.
bool ProfilesEqual(const UserProfile& a, const UserProfile& b);

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_RECORD_H_
