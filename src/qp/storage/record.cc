#include "qp/storage/record.h"

#include <utility>

#include "qp/storage/coding.h"

namespace qp {
namespace storage {
namespace {

// Preference wire tags. Append-only: new kinds get new tags, existing
// tags never change meaning (old logs must stay replayable).
constexpr uint8_t kPrefSelection = 1;
constexpr uint8_t kPrefJoin = 2;
constexpr uint8_t kPrefNear = 3;

constexpr uint8_t kValueNull = 0;
constexpr uint8_t kValueInt = 1;
constexpr uint8_t kValueDouble = 2;
constexpr uint8_t kValueString = 3;

void EncodeAttribute(const AttributeRef& attr, std::string* dst) {
  PutLengthPrefixed(dst, attr.table);
  PutLengthPrefixed(dst, attr.column);
}

void EncodeValue(const Value& value, std::string* dst) {
  switch (value.type()) {
    case DataType::kNull:
      dst->push_back(static_cast<char>(kValueNull));
      break;
    case DataType::kInt64:
      dst->push_back(static_cast<char>(kValueInt));
      PutFixed64(dst, static_cast<uint64_t>(value.as_int()));
      break;
    case DataType::kDouble:
      dst->push_back(static_cast<char>(kValueDouble));
      PutDouble(dst, value.as_double());
      break;
    case DataType::kString:
      dst->push_back(static_cast<char>(kValueString));
      PutLengthPrefixed(dst, value.as_string());
      break;
  }
}

bool DecodeAttribute(Decoder* in, AttributeRef* attr) {
  std::string_view table, column;
  if (!in->GetLengthPrefixed(&table)) return false;
  if (!in->GetLengthPrefixed(&column)) return false;
  attr->table = std::string(table);
  attr->column = std::string(column);
  return true;
}

bool DecodeValue(Decoder* in, Value* value) {
  uint8_t tag;
  if (!in->GetByte(&tag)) return false;
  switch (tag) {
    case kValueNull:
      *value = Value::Null();
      return true;
    case kValueInt: {
      uint64_t bits;
      if (!in->GetFixed64(&bits)) return false;
      *value = Value::Int(static_cast<int64_t>(bits));
      return true;
    }
    case kValueDouble: {
      double d;
      if (!in->GetDouble(&d)) return false;
      *value = Value::Real(d);
      return true;
    }
    case kValueString: {
      std::string_view s;
      if (!in->GetLengthPrefixed(&s)) return false;
      *value = Value::Str(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

bool DecodePreference(Decoder* in, std::vector<AtomicPreference>* out) {
  uint8_t tag;
  if (!in->GetByte(&tag)) return false;
  AttributeRef attr;
  if (!DecodeAttribute(in, &attr)) return false;
  switch (tag) {
    case kPrefSelection: {
      Value value;
      double doi;
      if (!DecodeValue(in, &value) || !in->GetDouble(&doi)) return false;
      out->push_back(AtomicPreference::Selection(std::move(attr),
                                                 std::move(value), doi));
      return true;
    }
    case kPrefJoin: {
      AttributeRef target;
      double doi;
      if (!DecodeAttribute(in, &target) || !in->GetDouble(&doi)) return false;
      out->push_back(
          AtomicPreference::Join(std::move(attr), std::move(target), doi));
      return true;
    }
    case kPrefNear: {
      Value target;
      double width, doi;
      if (!DecodeValue(in, &target) || !in->GetDouble(&width) ||
          !in->GetDouble(&doi)) {
        return false;
      }
      out->push_back(AtomicPreference::NearSelection(
          std::move(attr), std::move(target), width, doi));
      return true;
    }
    default:
      return false;
  }
}

void EncodePreferences(const std::vector<AtomicPreference>& preferences,
                       std::string* dst) {
  PutFixed32(dst, static_cast<uint32_t>(preferences.size()));
  for (const AtomicPreference& pref : preferences) {
    EncodePreference(pref, dst);
  }
}

bool DecodePreferences(Decoder* in, std::vector<AtomicPreference>* out) {
  uint32_t count;
  if (!in->GetFixed32(&count)) return false;
  // Each preference needs at least its tag byte; an insane count is a
  // framing error, not a reason to try a multi-gigabyte reserve.
  if (count > in->remaining()) return false;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodePreference(in, out)) return false;
  }
  return true;
}

}  // namespace

ProfileMutation ProfileMutation::Put(std::string user_id,
                                     UserProfile profile) {
  ProfileMutation m;
  m.kind = Kind::kPut;
  m.user_id = std::move(user_id);
  m.profile = std::move(profile);
  return m;
}

ProfileMutation ProfileMutation::Upsert(
    std::string user_id, std::vector<AtomicPreference> preferences) {
  ProfileMutation m;
  m.kind = Kind::kUpsert;
  m.user_id = std::move(user_id);
  m.preferences = std::move(preferences);
  return m;
}

ProfileMutation ProfileMutation::Remove(std::string user_id) {
  ProfileMutation m;
  m.kind = Kind::kRemove;
  m.user_id = std::move(user_id);
  return m;
}

void EncodePreference(const AtomicPreference& preference, std::string* dst) {
  switch (preference.kind()) {
    case AtomicPreference::Kind::kSelection:
      dst->push_back(static_cast<char>(kPrefSelection));
      EncodeAttribute(preference.attribute(), dst);
      EncodeValue(preference.value(), dst);
      PutDouble(dst, preference.doi());
      break;
    case AtomicPreference::Kind::kJoin:
      dst->push_back(static_cast<char>(kPrefJoin));
      EncodeAttribute(preference.attribute(), dst);
      EncodeAttribute(preference.target(), dst);
      PutDouble(dst, preference.doi());
      break;
    case AtomicPreference::Kind::kNear:
      dst->push_back(static_cast<char>(kPrefNear));
      EncodeAttribute(preference.attribute(), dst);
      EncodeValue(preference.value(), dst);
      PutDouble(dst, preference.width());
      PutDouble(dst, preference.doi());
      break;
  }
}

void EncodeMutation(const ProfileMutation& mutation, std::string* dst) {
  dst->push_back(static_cast<char>(mutation.kind));
  PutLengthPrefixed(dst, mutation.user_id);
  switch (mutation.kind) {
    case ProfileMutation::Kind::kPut:
      EncodePreferences(mutation.profile.preferences(), dst);
      break;
    case ProfileMutation::Kind::kUpsert:
      EncodePreferences(mutation.preferences, dst);
      break;
    case ProfileMutation::Kind::kRemove:
      break;
  }
}

Result<ProfileMutation> DecodeMutation(std::string_view data) {
  Decoder in(data);
  auto corrupt = [] {
    return Status::ParseError("corrupt profile mutation record");
  };

  uint8_t kind_byte;
  std::string_view user;
  if (!in.GetByte(&kind_byte) || !in.GetLengthPrefixed(&user)) {
    return corrupt();
  }

  ProfileMutation mutation;
  mutation.user_id = std::string(user);
  switch (kind_byte) {
    case static_cast<uint8_t>(ProfileMutation::Kind::kPut): {
      mutation.kind = ProfileMutation::Kind::kPut;
      std::vector<AtomicPreference> prefs;
      if (!DecodePreferences(&in, &prefs)) return corrupt();
      for (AtomicPreference& pref : prefs) {
        mutation.profile.AddOrUpdate(std::move(pref));
      }
      break;
    }
    case static_cast<uint8_t>(ProfileMutation::Kind::kUpsert): {
      mutation.kind = ProfileMutation::Kind::kUpsert;
      if (!DecodePreferences(&in, &mutation.preferences)) return corrupt();
      break;
    }
    case static_cast<uint8_t>(ProfileMutation::Kind::kRemove):
      mutation.kind = ProfileMutation::Kind::kRemove;
      break;
    default:
      return corrupt();
  }
  if (!in.empty()) return corrupt();
  return mutation;
}

bool PreferencesEqual(const AtomicPreference& a, const AtomicPreference& b) {
  if (a.kind() != b.kind()) return false;
  if (!a.SameCondition(b)) return false;
  if (a.doi() != b.doi()) return false;
  if (a.is_near() && a.width() != b.width()) return false;
  return true;
}

bool ProfilesEqual(const UserProfile& a, const UserProfile& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.preferences().size(); ++i) {
    if (!PreferencesEqual(a.preferences()[i], b.preferences()[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace storage
}  // namespace qp
