#ifndef QP_STORAGE_SNAPSHOT_H_
#define QP_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qp/pref/profile.h"
#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// The durable directory's source of truth: which snapshot file covers
/// state up to `seqno`, and which WAL file holds the records after it.
/// Written atomically (temp + rename), so a reader always sees either
/// the old or the new generation, never a mix.
struct Manifest {
  /// Every mutation with seqno <= this is inside the snapshot.
  uint64_t seqno = 0;
  /// Snapshot file name within the directory; empty for a fresh store.
  std::string snapshot_file;
  uint64_t snapshot_bytes = 0;
  uint32_t snapshot_crc = 0;  // CRC32C of the snapshot file's bytes.
  /// WAL file name; its first record has seqno `seqno + 1`.
  std::string wal_file;
};

/// Name of the manifest file within a storage directory.
extern const char kManifestName[];

/// File-name builders: "snapshot-<seqno>.qps" / "wal-<first_seqno>.log".
std::string SnapshotFileName(uint64_t seqno);
std::string WalFileName(uint64_t first_seqno);

Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const Manifest& manifest);
Result<Manifest> ReadManifest(FileSystem* fs, const std::string& dir);

/// One user's state inside a snapshot. Profiles are carried as
/// shared_ptrs on the write side so snapshotting never copies them.
using SnapshotUsers =
    std::vector<std::pair<std::string, std::shared_ptr<const UserProfile>>>;

/// Serializes `users` to `path` (profile bodies in the paper's text
/// round-trip format, byte-length framed), fsyncs it, and reports the
/// byte count + CRC32C for the manifest.
Status WriteSnapshot(FileSystem* fs, const std::string& path,
                     const SnapshotUsers& users, uint64_t* bytes,
                     uint32_t* crc);

/// Loads and verifies a snapshot written by WriteSnapshot. A size or
/// checksum mismatch against the manifest values is an error — a
/// snapshot is either wholly valid or the directory is corrupt.
Result<std::vector<std::pair<std::string, UserProfile>>> LoadSnapshot(
    FileSystem* fs, const std::string& path, uint64_t expected_bytes,
    uint32_t expected_crc);

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_SNAPSHOT_H_
