#ifndef QP_STORAGE_SNAPSHOT_H_
#define QP_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qp/pref/profile.h"
#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {

/// The durable directory's source of truth: which snapshot file covers
/// state up to `seqno`, and which WAL file holds the records after it.
/// Written atomically (temp + rename), so a reader always sees either
/// the old or the new generation, never a mix.
struct Manifest {
  /// Every mutation with seqno <= this is inside the snapshot.
  uint64_t seqno = 0;
  /// Snapshot file name within the directory; empty for a fresh store.
  std::string snapshot_file;
  uint64_t snapshot_bytes = 0;
  uint32_t snapshot_crc = 0;  // CRC32C of the snapshot file's bytes.
  /// WAL file name; its first record has seqno `seqno + 1`.
  std::string wal_file;
};

/// Name of the manifest file within a storage directory.
extern const char kManifestName[];

/// File-name builders: "snapshot-<seqno>.qps" / "wal-<first_seqno>.log".
std::string SnapshotFileName(uint64_t seqno);
std::string WalFileName(uint64_t first_seqno);

Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const Manifest& manifest);
Result<Manifest> ReadManifest(FileSystem* fs, const std::string& dir);

/// One user's state inside a snapshot. Profiles are carried as
/// shared_ptrs on the write side so snapshotting never copies them.
using SnapshotUsers =
    std::vector<std::pair<std::string, std::shared_ptr<const UserProfile>>>;

/// Serializes `users` to `path` (profile bodies in the paper's text
/// round-trip format, byte-length framed), fsyncs it, and reports the
/// byte count + CRC32C for the manifest.
Status WriteSnapshot(FileSystem* fs, const std::string& path,
                     const SnapshotUsers& users, uint64_t* bytes,
                     uint32_t* crc);

/// Loads and verifies a snapshot written by WriteSnapshot. A size or
/// checksum mismatch against the manifest values is an error — a
/// snapshot is either wholly valid or the directory is corrupt.
Result<std::vector<std::pair<std::string, UserProfile>>> LoadSnapshot(
    FileSystem* fs, const std::string& path, uint64_t expected_bytes,
    uint32_t expected_crc);

/// Where one user's serialized profile body sits inside a snapshot file,
/// the unit of the tiered store's cold index: a cold profile is paged in
/// with a single ReadFileRange(offset, length) + UserProfile::Parse, no
/// other entry touched.
struct SnapshotEntry {
  std::string user_id;
  uint64_t offset = 0;  // Byte offset of the profile body in the file.
  uint64_t length = 0;  // Body length in bytes.
};

/// Verifies the whole file (size + CRC32C against the manifest) and
/// walks only the length-framed entry headers — profile bodies are never
/// parsed — returning every user's body position. This is how a tiered
/// recovery indexes a million-user snapshot without materializing a
/// single profile.
Result<std::vector<SnapshotEntry>> IndexSnapshot(FileSystem* fs,
                                                 const std::string& path,
                                                 uint64_t expected_bytes,
                                                 uint32_t expected_crc);

/// Streaming counterpart of WriteSnapshot for checkpoints that merge
/// hot in-memory profiles with cold bodies copied from the previous
/// snapshot: entries are appended one at a time (buffered, CRC32C
/// extended incrementally) so the writer never holds the whole snapshot
/// in memory, and each Add records the body's SnapshotEntry for the next
/// cold index. Usage: Open (with the exact final entry count — the
/// format's count header is written up front), Add per user in sorted
/// order, Finish (flush + fsync + close, reporting bytes and CRC for the
/// manifest). Any error is sticky and fails Finish.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(FileSystem* fs);

  Status Open(const std::string& path, uint64_t count);
  Status Add(const std::string& user_id, std::string_view body);
  Status Finish(uint64_t* bytes, uint32_t* crc);

  /// Body positions of every Add, in Add order. Valid after Finish.
  std::vector<SnapshotEntry> TakeEntries() { return std::move(entries_); }

 private:
  Status Flush();

  FileSystem* fs_;
  std::unique_ptr<WritableFile> file_;
  std::string buffer_;
  uint64_t written_ = 0;  // Bytes handed to the file so far.
  uint32_t crc_ = 0;
  uint64_t declared_count_ = 0;
  uint64_t added_ = 0;
  std::vector<SnapshotEntry> entries_;
  Status status_;
};

}  // namespace storage
}  // namespace qp

#endif  // QP_STORAGE_SNAPSHOT_H_
