#include "qp/util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qp {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` representable in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n >= 1);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace qp
