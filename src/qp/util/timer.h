#ifndef QP_UTIL_TIMER_H_
#define QP_UTIL_TIMER_H_

#include <chrono>

namespace qp {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qp

#endif  // QP_UTIL_TIMER_H_
