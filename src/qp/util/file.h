#ifndef QP_UTIL_FILE_H_
#define QP_UTIL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qp/util/status.h"

namespace qp {

/// An append-only output stream. The storage layer never seeks or
/// overwrites: WAL segments and snapshots are written front to back, and
/// atomicity comes from write-to-temp + Rename at the FileSystem level.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces everything appended so far to stable storage (fsync). Data
  /// that was never synced may vanish in a crash; data that was is
  /// guaranteed to survive.
  virtual Status Sync() = 0;

  /// Closes the file. Idempotent; the destructor closes implicitly but
  /// swallows errors, so callers that care must Close() explicitly.
  virtual Status Close() = 0;
};

/// Minimal filesystem surface the storage subsystem runs on. Production
/// uses the POSIX implementation (DefaultFileSystem()); tests substitute
/// FaultInjectingFileSystem to simulate crashes, torn writes and fsync
/// failures deterministically.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending. `truncate` discards existing content.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into a string. NotFound if it does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Reads exactly `[offset, offset + length)` of the file. OutOfRange
  /// when the range extends past EOF — a caller holding a stale index
  /// must find out, not get a short read. The default implementation is
  /// ReadFile + substr, so every FileSystem (including the fault-
  /// injecting one, which keeps its read-fault wiring) supports it; the
  /// POSIX implementation overrides it with pread so the tiered profile
  /// store can page one cold profile in without touching the rest of a
  /// multi-megabyte snapshot.
  virtual Result<std::string> ReadFileRange(const std::string& path,
                                            uint64_t offset, uint64_t length);

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates `path` (single level); OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Names (not paths) of the entries in `path`, excluding "." / "..".
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// Fsyncs the directory itself so renames/creates within it are
  /// durable. A no-op on filesystems without directory entries.
  virtual Status SyncDir(const std::string& path) = 0;
};

/// The process-wide POSIX filesystem singleton.
FileSystem* DefaultFileSystem();

/// Joins a directory and a file name with exactly one separator.
std::string JoinPath(std::string_view dir, std::string_view name);

/// Writes `content` to `path` via a temp file + atomic rename, synced
/// before the rename — a crash leaves either the old file or the new
/// one, never a torn mix. Callers that need the rename itself durable
/// follow up with fs->SyncDir on the parent directory.
Status WriteFileAtomic(FileSystem* fs, const std::string& path,
                       std::string_view content);

}  // namespace qp

#endif  // QP_UTIL_FILE_H_
