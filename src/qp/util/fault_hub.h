#ifndef QP_UTIL_FAULT_HUB_H_
#define QP_UTIL_FAULT_HUB_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qp/util/status.h"

/// Seed-driven chaos framework: named fault sites threaded through every
/// subsystem (`QP_FAULT_POINT("wal.sync")`, `"pool.submit"`, ...) with
/// per-site schedules that are a pure function of (seed, site, call
/// index) — the same seed always produces the same fault schedule, so
/// any chaos-trial failure replays exactly.
///
/// Define QP_FAULTS_DISABLED at compile time to stub every fault site to
/// a literal `Status::Ok()` / empty action: production builds carry zero
/// chaos overhead, not even the disarmed atomic load.

namespace qp {

/// What an armed fault site does when its schedule fires.
enum class FaultMode {
  /// Return a Status error from the site (default: kUnavailable).
  kError,
  /// Sleep for `delay`, then proceed normally — models a slow disk, a
  /// scheduler stall, lock convoying. Surfaces as deadline pressure.
  kDelay,
  /// Perform only part of the operation (e.g. a short write keeping
  /// `partial_fraction` of the payload) and then fail — models torn
  /// writes and half-applied effects. Sites that have no partial
  /// semantics treat it as kError.
  kPartial,
};

/// Per-site firing schedule. All triggers compose (OR): a call fires if
/// the seeded coin lands under `probability`, or its 1-based index
/// equals `fire_on_nth`, or the index divides `fire_every`. The
/// probability coin for call n is a pure hash of (seed, site, n) — no
/// shared RNG stream, so concurrent sites never perturb each other's
/// schedules.
struct FaultRule {
  double probability = 0.0;
  uint64_t fire_on_nth = 0;  // 1-based call index; 0 = off.
  uint64_t fire_every = 0;   // Fire when index % fire_every == 0; 0 = off.
  uint64_t max_fires = 0;    // Stop firing after this many; 0 = unlimited.
  FaultMode mode = FaultMode::kError;
  StatusCode error_code = StatusCode::kUnavailable;
  std::chrono::microseconds delay{1000};
  double partial_fraction = 0.5;  // Fraction of the operation to perform.
};

/// The decision a fault site acts on. `fire == false` means proceed.
struct FaultAction {
  bool fire = false;
  FaultMode mode = FaultMode::kError;
  StatusCode error_code = StatusCode::kUnavailable;
  std::chrono::microseconds delay{0};
  double partial_fraction = 1.0;
  /// The injected error, pre-built so sites can `return action.ToStatus(...)`.
  Status ToStatus(std::string_view site) const;
  /// For kDelay actions: performs the bounded stall (capped at 50ms so a
  /// wild rule cannot hang a trial). No-op for other modes. Call it
  /// *outside* any lock the site holds.
  void Sleep() const;
};

/// Process-wide registry of fault sites. Disarmed (the default) every
/// site costs one relaxed atomic load. Arm(seed) + SetRule(site, ...)
/// turns schedules on; Reset() restores the pristine disarmed state
/// (tests must call it, the hub is shared by the whole process).
class FaultHub {
 public:
  static FaultHub* Global();

  /// Arms the hub: sites with rules start firing per their schedules.
  /// Also the determinism root — every firing decision hashes this seed.
  void Arm(uint64_t seed);
  void Disarm();
  /// Disarm + drop all rules and per-site counters.
  void Reset();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  void SetRule(const std::string& site, FaultRule rule);
  void ClearRule(const std::string& site);

  /// Derives a random-but-deterministic schedule over `sites` from
  /// `seed` (each site gets a mode and a firing probability drawn from a
  /// seeded RNG) and arms the hub. The one-stop chaos switch used by
  /// qpshell `\chaos <seed>` and the chaos property trials.
  void ArmRandom(uint64_t seed, const std::vector<std::string>& sites);

  /// The per-call decision for one site. Counts the call, evaluates the
  /// site's schedule, counts the fire. Disarmed: returns {} after a
  /// single relaxed load.
  FaultAction Evaluate(std::string_view site);

  /// Evaluate + act for sites without partial/delay semantics of their
  /// own: kError returns the injected Status, kDelay sleeps (bounded)
  /// and returns Ok, kPartial degenerates to kError.
  Status Check(std::string_view site);

  /// Total calls / fires recorded at `site` since the last Reset.
  uint64_t calls(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  uint64_t total_fires() const;

  /// One line per site: "site calls=N fires=M rule=..." — for \health.
  std::string Summary() const;

  /// The canonical site names wired into the library, for ArmRandom
  /// callers that want "everything".
  static const std::vector<std::string>& KnownSites();

  /// Called on every fire (after the max_fires budget admits it) with
  /// the site name and the 1-based call index. One process-wide slot,
  /// set at static-init by the observability layer to feed the flight
  /// recorder; nullptr disables. The listener runs under the hub's
  /// shared lock and must not call back into the hub. Purely an
  /// observer: it cannot perturb schedules (no RNG draw happens in it).
  using FireListener = void (*)(std::string_view site, uint64_t call_index);
  static void SetFireListener(FireListener listener);

 private:
  struct Site {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> fires{0};
    FaultRule rule;
    bool has_rule = false;
  };

  FaultHub() = default;

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> seed_{0};
  mutable std::shared_mutex mutex_;  // Guards sites_ (map shape + rules).
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_;
};

/// RAII chaos scope for tests: arms the global hub with `seed` on
/// construction, Reset()s it on destruction so no schedule leaks into
/// the next test.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(uint64_t seed) { FaultHub::Global()->Arm(seed); }
  ~ScopedFaultInjection() { FaultHub::Global()->Reset(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace qp

#ifdef QP_FAULTS_DISABLED
#define QP_FAULT_POINT(site) ::qp::Status::Ok()
#define QP_FAULT_ACTION(site) ::qp::FaultAction{}
#else
/// Drop-in fault site returning Status: `QP_RETURN_IF_ERROR(QP_FAULT_POINT("wal.sync"));`
#define QP_FAULT_POINT(site) ::qp::FaultHub::Global()->Check(site)
/// Fault site for code with its own partial/delay semantics.
#define QP_FAULT_ACTION(site) ::qp::FaultHub::Global()->Evaluate(site)
#endif

#endif  // QP_UTIL_FAULT_HUB_H_
