#include "qp/util/clock.h"

#include <algorithm>
#include <thread>

namespace qp {

namespace {

class RealClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepFor(std::chrono::nanoseconds duration) override {
    if (duration.count() > 0) std::this_thread::sleep_for(duration);
  }

  bool WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               std::chrono::nanoseconds timeout,
               const std::function<bool()>& pred) override {
    return cv.wait_for(lock, timeout, pred);
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* clock = new RealClock();
  return clock;
}

bool FakeClock::WaitFor(std::condition_variable& cv,
                        std::unique_lock<std::mutex>& lock,
                        std::chrono::nanoseconds timeout,
                        const std::function<bool()>& pred) {
  const int64_t deadline = NowNanos() + timeout.count();
  {
    std::lock_guard<std::mutex> guard(waiters_mutex_);
    waiters_.push_back(&cv);
  }
  // The deadline is re-checked against the (possibly advanced) fake time
  // on every wakeup; Advance() notifies the registered cv, so the only
  // way to be parked here past the deadline is for time not to have
  // reached it yet.
  cv.wait(lock, [&] { return pred() || NowNanos() >= deadline; });
  {
    std::lock_guard<std::mutex> guard(waiters_mutex_);
    auto it = std::find(waiters_.begin(), waiters_.end(), &cv);
    if (it != waiters_.end()) waiters_.erase(it);
  }
  return pred();
}

void FakeClock::Advance(std::chrono::nanoseconds duration) {
  now_ns_.fetch_add(duration.count(), std::memory_order_acq_rel);
  std::lock_guard<std::mutex> guard(waiters_mutex_);
  for (std::condition_variable* cv : waiters_) cv->notify_all();
}

}  // namespace qp
