#include "qp/util/clock.h"

#include <algorithm>
#include <thread>

namespace qp {

namespace {

class RealClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepFor(std::chrono::nanoseconds duration) override {
    if (duration.count() > 0) std::this_thread::sleep_for(duration);
  }

  bool WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               std::chrono::nanoseconds timeout,
               const std::function<bool()>& pred) override {
    return cv.wait_for(lock, timeout, pred);
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* clock = new RealClock();
  return clock;
}

bool FakeClock::WaitFor(std::condition_variable& cv,
                        std::unique_lock<std::mutex>& lock,
                        std::chrono::nanoseconds timeout,
                        const std::function<bool()>& pred) {
  const int64_t deadline = NowNanos() + timeout.count();
  // (De)register without the caller's lock held: Advance() locks
  // waiters_mutex_ and then each waiter's mutex, so taking
  // waiters_mutex_ while holding `lock` would invert that order.
  // Dropping the lock here is safe — cv.wait re-evaluates the predicate
  // under the lock before deciding to park.
  lock.unlock();
  {
    std::lock_guard<std::mutex> guard(waiters_mutex_);
    waiters_.push_back({&cv, lock.mutex()});
  }
  lock.lock();
  // Advance() acquires `lock`'s mutex before notifying, so a
  // notification cannot land between this predicate evaluation and the
  // park: either the waiter is already parked when it arrives, or the
  // predicate re-reads the already-advanced time.
  cv.wait(lock, [&] { return pred() || NowNanos() >= deadline; });
  lock.unlock();
  {
    std::lock_guard<std::mutex> guard(waiters_mutex_);
    auto it = std::find_if(waiters_.begin(), waiters_.end(),
                           [&](const Waiter& waiter) {
                             return waiter.cv == &cv &&
                                    waiter.mutex == lock.mutex();
                           });
    if (it != waiters_.end()) waiters_.erase(it);
  }
  lock.lock();
  return pred();
}

void FakeClock::Advance(std::chrono::nanoseconds duration) {
  now_ns_.fetch_add(duration.count(), std::memory_order_acq_rel);
  std::lock_guard<std::mutex> guard(waiters_mutex_);
  for (const Waiter& waiter : waiters_) {
    // Serialize with the waiter's evaluate-then-park window (see
    // WaitFor): once this mutex is acquired the waiter is either parked
    // or has not yet read the advanced time.
    { std::lock_guard<std::mutex> sync(*waiter.mutex); }
    waiter.cv->notify_all();
  }
}

}  // namespace qp
