#include "qp/util/fault_hub.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <thread>

#include "qp/util/random.h"

namespace qp {
namespace {

/// SplitMix64 finalizer: the avalanche permutation used to turn
/// (seed, site, call-index) into an independent uniform coin. Any bit
/// change in the input flips each output bit with probability ~1/2.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a 64-bit hash (top 53 bits).
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t HashSite(std::string_view site) {
  // FNV-1a, stable across platforms (std::hash is not guaranteed to be).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::atomic<FaultHub::FireListener> g_fire_listener{nullptr};

const char* ModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kError:
      return "error";
    case FaultMode::kDelay:
      return "delay";
    case FaultMode::kPartial:
      return "partial";
  }
  return "?";
}

}  // namespace

Status FaultAction::ToStatus(std::string_view site) const {
  return Status(error_code,
                "injected fault at " + std::string(site));
}

void FaultAction::Sleep() const {
  if (!fire || mode != FaultMode::kDelay) return;
  std::this_thread::sleep_for(std::min<std::chrono::microseconds>(
      delay, std::chrono::microseconds(50000)));
}

FaultHub* FaultHub::Global() {
  static FaultHub* hub = new FaultHub();
  return hub;
}

void FaultHub::Arm(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultHub::Disarm() { armed_.store(false, std::memory_order_release); }

void FaultHub::Reset() {
  Disarm();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  sites_.clear();
}

void FaultHub::SetRule(const std::string& site, FaultRule rule) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::unique_ptr<Site>& slot = sites_[site];
  if (slot == nullptr) slot = std::make_unique<Site>();
  slot->rule = rule;
  slot->has_rule = true;
}

void FaultHub::ClearRule(const std::string& site) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second->has_rule = false;
}

void FaultHub::ArmRandom(uint64_t seed,
                         const std::vector<std::string>& sites) {
  // One independent rule per site, all derived from the seed; iteration
  // order does not matter because each site's stream is keyed by its
  // name, not by draw order.
  for (const std::string& site : sites) {
    Rng rng(Mix(seed) ^ HashSite(site));
    FaultRule rule;
    rule.probability = 0.01 + 0.09 * rng.NextDouble();  // 1% .. 10%
    const double mode_draw = rng.NextDouble();
    if (mode_draw < 0.60) {
      rule.mode = FaultMode::kError;
    } else if (mode_draw < 0.85) {
      rule.mode = FaultMode::kDelay;
      rule.delay = std::chrono::microseconds(rng.Range(200, 3000));
    } else {
      rule.mode = FaultMode::kPartial;
      rule.partial_fraction = 0.1 + 0.8 * rng.NextDouble();
    }
    SetRule(site, rule);
  }
  Arm(seed);
}

FaultAction FaultHub::Evaluate(std::string_view site) {
  if (!armed_.load(std::memory_order_relaxed)) return FaultAction{};
  // Every touch of a Site happens under mutex_ (shared for the common
  // path): Reset() clears the map under the unique lock, so holding the
  // shared lock for the whole evaluation is what keeps a concurrent
  // Reset from destroying the Site mid-use. The counters are atomics,
  // so shared holders on different threads don't contend beyond the
  // lock itself.
  const std::string key(site);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = sites_.find(key);
  if (it == sites_.end()) {
    lock.unlock();
    {
      std::unique_lock<std::shared_mutex> create(mutex_);
      std::unique_ptr<Site>& slot = sites_[key];
      if (slot == nullptr) slot = std::make_unique<Site>();
    }
    lock.lock();
    it = sites_.find(key);
    // A Reset between the creation and the re-find disarms the hub;
    // treat it as this call losing the race and injecting nothing.
    if (it == sites_.end()) return FaultAction{};
  }
  Site* s = it->second.get();
  const uint64_t n = s->calls.fetch_add(1, std::memory_order_relaxed) + 1;

  if (!s->has_rule) return FaultAction{};
  const FaultRule rule = s->rule;

  bool fire = false;
  if (rule.fire_on_nth != 0 && n == rule.fire_on_nth) fire = true;
  if (!fire && rule.fire_every != 0 && n % rule.fire_every == 0) fire = true;
  if (!fire && rule.probability > 0.0) {
    const uint64_t h =
        Mix(seed_.load(std::memory_order_relaxed) ^ Mix(HashSite(site)) ^
            Mix(n * 0x9e3779b97f4a7c15ULL));
    fire = ToUnit(h) < rule.probability;
  }
  if (!fire) return FaultAction{};

  if (rule.max_fires != 0) {
    // Reserve a fire slot; once the budget is spent the site goes quiet.
    if (s->fires.fetch_add(1, std::memory_order_relaxed) >= rule.max_fires) {
      s->fires.fetch_sub(1, std::memory_order_relaxed);
      return FaultAction{};
    }
  } else {
    s->fires.fetch_add(1, std::memory_order_relaxed);
  }

  if (FireListener listener =
          g_fire_listener.load(std::memory_order_acquire);
      listener != nullptr) {
    listener(site, n);
  }

  FaultAction action;
  action.fire = true;
  action.mode = rule.mode;
  action.error_code = rule.error_code;
  action.delay = rule.delay;
  action.partial_fraction = rule.partial_fraction;
  return action;
}

void FaultHub::SetFireListener(FireListener listener) {
  g_fire_listener.store(listener, std::memory_order_release);
}

Status FaultHub::Check(std::string_view site) {
  FaultAction action = Evaluate(site);
  if (!action.fire) return Status::Ok();
  if (action.mode == FaultMode::kDelay) {
    action.Sleep();
    return Status::Ok();
  }
  return action.ToStatus(site);
}

uint64_t FaultHub::calls(const std::string& site) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->calls.load(std::memory_order_relaxed);
}

uint64_t FaultHub::fires(const std::string& site) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

uint64_t FaultHub::total_fires() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, site] : sites_) {
    total += site->fires.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultHub::Summary() const {
  std::ostringstream out;
  out << "fault hub: " << (armed() ? "armed" : "disarmed");
  if (armed()) out << " seed=" << seed();
  out << "\n";
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const Site& s = *sites_.at(name);
    out << "  " << name
        << " calls=" << s.calls.load(std::memory_order_relaxed)
        << " fires=" << s.fires.load(std::memory_order_relaxed);
    if (s.has_rule) {
      out << " mode=" << ModeName(s.rule.mode) << " p=" << s.rule.probability;
      if (s.rule.fire_on_nth != 0) out << " nth=" << s.rule.fire_on_nth;
      if (s.rule.fire_every != 0) out << " every=" << s.rule.fire_every;
      if (s.rule.max_fires != 0) out << " max=" << s.rule.max_fires;
    }
    out << "\n";
  }
  return out.str();
}

const std::vector<std::string>& FaultHub::KnownSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "fs.append",     "fs.read",       "fs.sync",        "wal.append",
      "wal.sync",      "service.admit", "cache.lookup",   "pool.submit",
      "exec.disjunct", "shard.route",   "shard.load",     "migrate.copy",
      "migrate.tail",  "migrate.apply", "migrate.cutover", "migrate.journal",
  };
  return *sites;
}

}  // namespace qp
