#ifndef QP_UTIL_STRING_UTIL_H_
#define QP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qp {

/// Joins `parts` with `sep` ("a", "b" -> "a<sep>b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`. Empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with up to `precision` significant digits, trimming
/// trailing zeros ("0.9", "0.72", "1").
std::string FormatDouble(double value, int precision = 6);

/// Formats a double so parsing it back yields the identical bits: the
/// shortest fixed-notation decimal that round-trips (never scientific
/// notation, so the profile/query lexers can read it back). The
/// persistence formatter — display paths keep FormatDouble.
std::string FormatDoubleRoundTrip(double value);

}  // namespace qp

#endif  // QP_UTIL_STRING_UTIL_H_
