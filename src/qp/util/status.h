#ifndef QP_UTIL_STATUS_H_
#define QP_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qp {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil convention: a small closed set of codes plus a
/// human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kParseError,
  /// The operation was refused because the system is saturated or a
  /// dependency is degraded (load shedding, open circuit breaker).
  /// Retryable after backoff, unlike kFailedPrecondition.
  kUnavailable,
  /// The request's response-time budget expired before the operation
  /// could start (work that *starts* in time but is cut short returns OK
  /// with partial, explicitly-flagged results instead).
  kDeadlineExceeded,
};

/// Returns the canonical lower-case name of a status code
/// (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a message otherwise. The library does not use
/// exceptions: fallible functions return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of an
/// error result is a programming error (assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::NotFound(...)` both work, mirroring absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define QP_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::qp::Status qp_status_tmp = (expr);         \
    if (!qp_status_tmp.ok()) return qp_status_tmp; \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the status,
/// otherwise assigns the value to `lhs`.
#define QP_ASSIGN_OR_RETURN(lhs, expr)                \
  QP_ASSIGN_OR_RETURN_IMPL(                           \
      QP_STATUS_CONCAT(qp_result_tmp_, __LINE__), lhs, expr)
#define QP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()
#define QP_STATUS_CONCAT(a, b) QP_STATUS_CONCAT_IMPL(a, b)
#define QP_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace qp

#endif  // QP_UTIL_STATUS_H_
