#ifndef QP_UTIL_DEADLINE_H_
#define QP_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace qp {

/// A monotonic-clock deadline (paper Section 4: personalization adapts to
/// the "desired response time"). Immutable and copyable; the infinite
/// deadline never expires and never reads the clock, so polling it costs
/// one branch.
class Deadline {
 public:
  /// Never expires.
  Deadline() : infinite_(true) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `millis` from now (clamped to >= 0).
  static Deadline AfterMillis(double millis) {
    if (millis < 0) millis = 0;
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(millis)));
  }

  bool is_infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; +infinity when infinite, 0 when past.
  double remaining_millis() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    double left = std::chrono::duration<double, std::milli>(
                      at_ - Clock::now())
                      .count();
    return left > 0 ? left : 0;
  }

 private:
  using Clock = std::chrono::steady_clock;

  explicit Deadline(Clock::time_point at) : infinite_(false), at_(at) {}

  bool infinite_;
  Clock::time_point at_{};
};

/// A cooperative cancellation token: an atomic flag any thread may set,
/// plus a deadline, both cheap to poll from a hot loop. The long-running
/// algorithms (best-first selection, the executor's row loops) poll
/// ShouldStop() and, on expiry, return the valid partial work done so far
/// instead of running to completion.
///
/// For deterministic tests (and as a pure cost budget independent of wall
/// time), set_poll_budget(n) makes the token trip after exactly n polls.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Thread-safe; sticky.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  const Deadline& deadline() const { return deadline_; }

  /// Trips ShouldStop() after `polls` further calls (each call consumes
  /// one unit). Negative disables the budget (the default).
  void set_poll_budget(int64_t polls) {
    poll_budget_.store(polls, std::memory_order_relaxed);
  }

  /// The poll the loops run: cancelled flag, then the poll budget, then
  /// the deadline (the only check that reads the clock). An exhausted
  /// budget trips the cancelled flag, so the stop is sticky.
  bool ShouldStop() const {
    if (cancelled()) return true;
    if (poll_budget_.load(std::memory_order_relaxed) >= 0 &&
        poll_budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return deadline_.expired();
  }

 private:
  Deadline deadline_;
  mutable std::atomic<bool> cancelled_{false};
  /// < 0: no budget. Otherwise decremented per poll; <= 0 trips.
  mutable std::atomic<int64_t> poll_budget_{-1};
};

}  // namespace qp

#endif  // QP_UTIL_DEADLINE_H_
