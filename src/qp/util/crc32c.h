#ifndef QP_UTIL_CRC32C_H_
#define QP_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qp {
namespace crc32c {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), the checksum
/// used by the storage layer to frame WAL records and snapshot files.
/// Software slice-by-4 implementation; Extend(0, ...) == Value(...).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) {
  return Extend(0, data, n);
}
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// Masks a CRC that is about to be stored next to the data it covers.
/// Storing raw CRCs invites accidental verification successes: a run of
/// zero bytes has CRC 0, so an unwritten (zero-filled) region would look
/// like a valid empty record. The rotate+offset mask (same scheme as
/// LevelDB/RocksDB) breaks that fixed point.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace qp

#endif  // QP_UTIL_CRC32C_H_
