#include "qp/util/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace qp {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  std::string msg = op + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  return Status::Internal(std::move(msg));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::Ok();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, fd));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out(length, '\0');
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::pread(fd, out.data() + done, length - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("pread", path, err);
      }
      if (n == 0) break;  // EOF before the range was satisfied.
      done += static_cast<size_t>(n);
    }
    ::close(fd);
    if (done < length) {
      return Status::OutOfRange("read range past EOF in " + path);
    }
    return out;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", path, errno);
    }
    return Status::Ok();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir", path, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir", path, errno);
    Status status;
    if (::fsync(fd) != 0 && errno != EINVAL) {
      // EINVAL: the filesystem does not support fsync on directories.
      status = ErrnoStatus("fsync dir", path, errno);
    }
    ::close(fd);
    return status;
  }
};

}  // namespace

Result<std::string> FileSystem::ReadFileRange(const std::string& path,
                                              uint64_t offset,
                                              uint64_t length) {
  QP_ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  if (offset > content.size() || length > content.size() - offset) {
    return Status::OutOfRange("read range past EOF in " + path);
  }
  return content.substr(offset, length);
}

FileSystem* DefaultFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

Status WriteFileAtomic(FileSystem* fs, const std::string& path,
                       std::string_view content) {
  const std::string tmp = path + ".tmp";
  QP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                      fs->NewWritableFile(tmp, /*truncate=*/true));
  QP_RETURN_IF_ERROR(file->Append(content));
  QP_RETURN_IF_ERROR(file->Sync());
  QP_RETURN_IF_ERROR(file->Close());
  return fs->Rename(tmp, path);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (!out.empty() && out.back() != '/') out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace qp
