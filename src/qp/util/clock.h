#ifndef QP_UTIL_CLOCK_H_
#define QP_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace qp {

/// The time source behind every backoff/cadence decision that must be
/// testable: circuit-breaker reopen windows, scrubber intervals, and
/// migration retry backoff all read time through this seam instead of
/// touching std::chrono directly. Production code uses Clock::Real()
/// (steady_clock); tests inject a FakeClock and advance it explicitly,
/// so a suite that used to sleep-and-poll wall time becomes a
/// deterministic sequence of Advance() calls — immune to sanitizer
/// slowdowns.
///
/// Implementations must be thread-safe: NowNanos is read concurrently
/// by mutators and background threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds. Only differences are meaningful.
  virtual int64_t NowNanos() const = 0;

  /// Blocks the caller for `duration` of this clock's time. A FakeClock
  /// returns immediately after advancing itself, so retry loops with
  /// backoff run at full speed under test.
  virtual void SleepFor(std::chrono::nanoseconds duration) = 0;

  /// The condition-variable analogue of SleepFor: waits on `cv` (with
  /// `lock` held, as usual) until `pred()` holds or `timeout` of this
  /// clock's time has passed. Returns pred()'s final value. The real
  /// clock forwards to cv.wait_for; a FakeClock parks the waiter until
  /// either the cv is notified or Advance() pushes time past the
  /// deadline.
  virtual bool WaitFor(std::condition_variable& cv,
                       std::unique_lock<std::mutex>& lock,
                       std::chrono::nanoseconds timeout,
                       const std::function<bool()>& pred) = 0;

  /// The process-wide steady-clock instance (never deleted).
  static Clock* Real();
};

/// Deterministic test clock: time moves only when Advance() is called.
/// Threads blocked in WaitFor() re-evaluate their predicate/deadline on
/// every Advance, so a test drives "5 seconds pass" as one call instead
/// of sleeping.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_ns = 0) : now_ns_(start_ns) {}

  int64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_acquire);
  }

  void SleepFor(std::chrono::nanoseconds duration) override {
    Advance(duration);
  }

  bool WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               std::chrono::nanoseconds timeout,
               const std::function<bool()>& pred) override;

  /// Moves time forward and wakes every thread parked in WaitFor so it
  /// can re-check its deadline.
  void Advance(std::chrono::nanoseconds duration);

 private:
  /// A parked WaitFor call. The waiter's mutex is recorded alongside its
  /// cv because Advance() must acquire it before notifying: notifying
  /// without it can land between the waiter's predicate evaluation and
  /// its park, and that wakeup is lost forever.
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mutex;
  };

  std::atomic<int64_t> now_ns_;
  std::mutex waiters_mutex_;
  std::vector<Waiter> waiters_;
};

}  // namespace qp

#endif  // QP_UTIL_CLOCK_H_
