#ifndef QP_UTIL_RANDOM_H_
#define QP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qp {

/// Deterministic 64-bit PRNG (xoshiro256++), seeded via SplitMix64.
/// Used everywhere randomness is needed so data generation, workloads and
/// benchmarks are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so there is no modulo bias.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed integers over [0, n). Rank 0 is the most popular item;
/// probability of rank k is proportional to 1 / (k+1)^theta. Sampling is
/// O(log n) via binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  /// `n` must be >= 1. `theta` = 0 degenerates to uniform.
  ZipfDistribution(uint64_t n, double theta);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace qp

#endif  // QP_UTIL_RANDOM_H_
