#include "qp/util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace qp {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string FormatDoubleRoundTrip(double value) {
  // Fixed notation can need ~310 digits before the point plus the
  // fractional shortest-round-trip tail.
  char buf[384];
  auto result =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::fixed);
  if (result.ec != std::errc()) {
    // Unrepresentable in the buffer (cannot happen for finite doubles at
    // this size); fall back to max-precision fixed.
    std::snprintf(buf, sizeof(buf), "%.17f", value);
    return buf;
  }
  return std::string(buf, result.ptr);
}

}  // namespace qp
