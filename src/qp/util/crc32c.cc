#include "qp/util/crc32c.h"

#include <array>

namespace qp {
namespace crc32c {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Reflected Castagnoli.

struct Tables {
  // table[0] is the classic byte-at-a-time table; tables 1..3 let the
  // hot loop consume four bytes per iteration (slice-by-4).
  uint32_t t[4][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tables = GetTables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = ~init_crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xff] ^ tables.t[2][(crc >> 8) & 0xff] ^
          tables.t[1][(crc >> 16) & 0xff] ^ tables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p) & 0xff];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace crc32c
}  // namespace qp
