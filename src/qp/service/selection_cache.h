#ifndef QP_SERVICE_SELECTION_CACHE_H_
#define QP_SERVICE_SELECTION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qp/core/interest_criterion.h"
#include "qp/graph/preference_path.h"
#include "qp/obs/metrics.h"
#include "qp/query/query.h"

namespace qp {

/// Counters of one cache instance. Snapshot with SelectionCache::stats().
struct SelectionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// EraseUser calls (not entries dropped): each is one targeted
  /// per-user invalidation, e.g. after a routed mutation.
  uint64_t user_invalidations = 0;
};

/// A bounded, thread-safe LRU cache of preference-selection results: the
/// top-K PreferencePaths the selector extracted for one (user epoch,
/// normalized query, interest criterion) triple. Re-running best-first
/// selection dominates the per-query cost for large profiles (paper
/// Figure 6), and real query streams repeat — the "continuous
/// re-evaluation under change" workload of Chomicki's preference surveys.
///
/// Invalidation is epoch-based: the key embeds the user's ProfileStore
/// epoch, which every profile mutation bumps, so entries for the old
/// profile become unreachable immediately and age out through the LRU
/// bound. Values are immutable shared_ptrs: hits share, never copy.
class SelectionCache {
 public:
  using Paths = std::shared_ptr<const std::vector<PreferencePath>>;

  /// Caches at most `capacity` entries (clamped to >= 1). `metrics`,
  /// when given, mirrors the stats into qp_selection_cache_* counters
  /// (looked up once here; not owned, must outlive the cache).
  explicit SelectionCache(size_t capacity,
                          obs::MetricsRegistry* metrics = nullptr);

  /// The composed cache key. Collision-free by construction: the exact
  /// canonical strings are keyed, not their hashes.
  static std::string MakeKey(const std::string& user_id, uint64_t epoch,
                             const std::string& canonical_query_key,
                             const InterestCriterion& criterion);

  /// The cached selection, or nullptr on miss.
  Paths Lookup(const std::string& key);

  /// Inserts (or refreshes) `paths` under `key`, evicting the least
  /// recently used entry when full. The overload taking `user_id` also
  /// indexes the entry by owner so EraseUser can drop exactly that
  /// user's entries; the two-argument form leaves the entry unowned
  /// (epoch aging still applies).
  void Insert(const std::string& key, Paths paths);
  void Insert(const std::string& user_id, const std::string& key, Paths paths);

  /// Drops every entry owned by `user_id` — and nothing else. The
  /// surgical invalidation a mutation path wants: epoch keying already
  /// makes stale entries unreachable, but they would otherwise squat in
  /// the LRU until aged out; this frees the capacity immediately without
  /// touching other users' live entries. Returns the number dropped.
  size_t EraseUser(const std::string& user_id);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  SelectionCacheStats stats() const;

  /// Drops every entry (stats are kept).
  void Clear();

 private:
  struct Slot {
    std::string key;
    std::string user_id;  // Empty when inserted without an owner.
    Paths paths;
  };

  void InsertLocked(const std::string& user_id, const std::string& key,
                    Paths paths);
  /// Unlinks one LRU slot from index_ and by_user_ (not from lru_).
  void UnindexLocked(const Slot& slot);

  size_t capacity_;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_insertions_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Counter* metric_user_invalidations_ = nullptr;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Slot> lru_;
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
  /// Owner index: user id -> that user's cache keys.
  std::unordered_map<std::string, std::unordered_set<std::string>> by_user_;
  SelectionCacheStats stats_;
};

}  // namespace qp

#endif  // QP_SERVICE_SELECTION_CACHE_H_
