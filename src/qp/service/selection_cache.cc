#include "qp/service/selection_cache.h"

namespace qp {

SelectionCache::SelectionCache(size_t capacity,
                               obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (metrics != nullptr) {
    metric_hits_ = metrics->counter("qp_selection_cache_hits_total");
    metric_misses_ = metrics->counter("qp_selection_cache_misses_total");
    metric_insertions_ =
        metrics->counter("qp_selection_cache_insertions_total");
    metric_evictions_ =
        metrics->counter("qp_selection_cache_evictions_total");
  }
}

std::string SelectionCache::MakeKey(const std::string& user_id,
                                    uint64_t epoch,
                                    const std::string& canonical_query_key,
                                    const InterestCriterion& criterion) {
  return user_id + "@" + std::to_string(epoch) + "|" + criterion.ToString() +
         "|" + canonical_query_key;
}

SelectionCache::Paths SelectionCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (metric_misses_ != nullptr) metric_misses_->Add(1);
    return nullptr;
  }
  ++stats_.hits;
  if (metric_hits_ != nullptr) metric_hits_->Add(1);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->paths;
}

void SelectionCache::Insert(const std::string& key, Paths paths) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.insertions;
  if (metric_insertions_ != nullptr) metric_insertions_->Add(1);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->paths = std::move(paths);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(paths)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    if (metric_evictions_ != nullptr) metric_evictions_->Add(1);
  }
}

size_t SelectionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SelectionCacheStats SelectionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SelectionCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace qp
