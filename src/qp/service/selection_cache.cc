#include "qp/service/selection_cache.h"

namespace qp {

SelectionCache::SelectionCache(size_t capacity,
                               obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (metrics != nullptr) {
    metric_hits_ = metrics->counter("qp_selection_cache_hits_total");
    metric_misses_ = metrics->counter("qp_selection_cache_misses_total");
    metric_insertions_ =
        metrics->counter("qp_selection_cache_insertions_total");
    metric_evictions_ =
        metrics->counter("qp_selection_cache_evictions_total");
    metric_user_invalidations_ =
        metrics->counter("qp_selection_cache_user_invalidations_total");
  }
}

std::string SelectionCache::MakeKey(const std::string& user_id,
                                    uint64_t epoch,
                                    const std::string& canonical_query_key,
                                    const InterestCriterion& criterion) {
  return user_id + "@" + std::to_string(epoch) + "|" + criterion.ToString() +
         "|" + canonical_query_key;
}

SelectionCache::Paths SelectionCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (metric_misses_ != nullptr) metric_misses_->Add(1);
    return nullptr;
  }
  ++stats_.hits;
  if (metric_hits_ != nullptr) metric_hits_->Add(1);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->paths;
}

void SelectionCache::Insert(const std::string& key, Paths paths) {
  std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(/*user_id=*/"", key, std::move(paths));
}

void SelectionCache::Insert(const std::string& user_id,
                            const std::string& key, Paths paths) {
  std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(user_id, key, std::move(paths));
}

void SelectionCache::InsertLocked(const std::string& user_id,
                                  const std::string& key, Paths paths) {
  ++stats_.insertions;
  if (metric_insertions_ != nullptr) metric_insertions_->Add(1);
  auto it = index_.find(key);
  if (it != index_.end()) {
    auto lru_it = it->second;  // UnindexLocked below invalidates `it`.
    if (lru_it->user_id != user_id) {
      // Same key, different (or newly declared) owner: re-home it.
      UnindexLocked(*lru_it);
      lru_it->user_id = user_id;
      index_[key] = lru_it;
      if (!user_id.empty()) by_user_[user_id].insert(key);
    }
    lru_it->paths = std::move(paths);
    lru_.splice(lru_.begin(), lru_, lru_it);
    return;
  }
  lru_.push_front(Slot{key, user_id, std::move(paths)});
  index_[key] = lru_.begin();
  if (!user_id.empty()) by_user_[user_id].insert(key);
  while (lru_.size() > capacity_) {
    UnindexLocked(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    if (metric_evictions_ != nullptr) metric_evictions_->Add(1);
  }
}

void SelectionCache::UnindexLocked(const Slot& slot) {
  index_.erase(slot.key);
  if (slot.user_id.empty()) return;
  auto it = by_user_.find(slot.user_id);
  if (it == by_user_.end()) return;
  it->second.erase(slot.key);
  if (it->second.empty()) by_user_.erase(it);
}

size_t SelectionCache::EraseUser(const std::string& user_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_user_.find(user_id);
  if (it == by_user_.end()) return 0;
  // Move the key set out first: the erase loop must not walk a container
  // it is shrinking.
  std::unordered_set<std::string> keys = std::move(it->second);
  by_user_.erase(it);
  size_t erased = 0;
  for (const std::string& key : keys) {
    auto slot = index_.find(key);
    if (slot == index_.end()) continue;
    auto lru_it = slot->second;
    index_.erase(slot);
    lru_.erase(lru_it);
    ++erased;
  }
  stats_.user_invalidations += erased;
  if (metric_user_invalidations_ != nullptr && erased > 0) {
    metric_user_invalidations_->Add(erased);
  }
  return erased;
}

size_t SelectionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SelectionCacheStats SelectionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SelectionCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  by_user_.clear();
}

}  // namespace qp
