#ifndef QP_SERVICE_THREAD_POOL_H_
#define QP_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qp {

/// A fixed-size work-stealing thread pool. Each worker owns a deque: it
/// pushes and pops its own work LIFO (cache-friendly for task trees) and
/// steals FIFO from the other workers when its deque drains — the
/// standard Chase-Lev discipline, here with per-deque mutexes, which is
/// plenty for the coarse-grained tasks (whole personalization requests)
/// this pool runs.
///
/// Tasks must not throw (the library reports failures through Status);
/// a throwing task terminates, like an exception escaping std::thread.
class ThreadPool {
 public:
  /// What Shutdown does with tasks still queued when it is called.
  enum class DrainMode {
    /// Run every queued task before the workers exit (the historical
    /// destructor behavior).
    kDrain,
    /// Drop queued tasks on the floor; only tasks already executing
    /// finish. Callers owning futures for dropped tasks must resolve
    /// them through some other channel (the service resolves via
    /// Submit's false return before this can happen).
    kDiscard,
  };

  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Shutdown(kDrain) + join, if not already shut down.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops the pool and joins the workers. Idempotent; the first call
  /// picks the mode, later calls (and the destructor) are no-ops. After
  /// Shutdown begins, Submit safely returns false instead of enqueueing.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  /// Enqueues `task` and returns true. Called from a worker thread, the
  /// task goes to that worker's own deque (stealable by the rest); from
  /// outside the pool, deques are fed round-robin. Once Shutdown has
  /// begun, returns false and the task is NOT enqueued (never UB, never
  /// silently dropped-but-true): the caller decides how to surface the
  /// rejection.
  bool Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (not yet running). Approximate: reads the
  /// deques without a global lock.
  size_t ApproxQueueDepth() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);

  /// Pops own work (back) or steals (front of the next non-empty deque,
  /// scanning from self+1). Returns false when every deque is empty.
  bool TryTake(size_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Wakes idle workers; guards only the sleep/wake handshake.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
};

}  // namespace qp

#endif  // QP_SERVICE_THREAD_POOL_H_
