#ifndef QP_SERVICE_THREAD_POOL_H_
#define QP_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qp {

/// A fixed-size work-stealing thread pool. Each worker owns a deque: it
/// pushes and pops its own work LIFO (cache-friendly for task trees) and
/// steals FIFO from the other workers when its deque drains — the
/// standard Chase-Lev discipline, here with per-deque mutexes, which is
/// plenty for the coarse-grained tasks (whole personalization requests)
/// this pool runs.
///
/// Tasks must not throw (the library reports failures through Status);
/// a throwing task terminates, like an exception escaping std::thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains remaining work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Called from a worker thread, the task goes to that
  /// worker's own deque (stealable by the rest); from outside the pool,
  /// deques are fed round-robin.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (not yet running). Approximate: reads the
  /// deques without a global lock.
  size_t ApproxQueueDepth() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);

  /// Pops own work (back) or steals (front of the next non-empty deque,
  /// scanning from self+1). Returns false when every deque is empty.
  bool TryTake(size_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Wakes idle workers; guards only the sleep/wake handshake.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
};

}  // namespace qp

#endif  // QP_SERVICE_THREAD_POOL_H_
