#include "qp/service/service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "qp/core/query_signature.h"
#include "qp/core/selection.h"
#include "qp/util/timer.h"

namespace qp {
namespace {

uint64_t Nanos(double millis) {
  return static_cast<uint64_t>(millis * 1e6);
}

void MaxInto(std::atomic<size_t>* target, size_t value) {
  size_t current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Atomically reserves one unit in `counter` unless it is at `bound`
/// (0 = unbounded). The CAS guarantees the counter never exceeds the
/// bound regardless of concurrent admitters.
bool TryReserve(std::atomic<size_t>* counter, size_t bound) {
  if (bound == 0) {
    counter->fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  size_t current = counter->load(std::memory_order_relaxed);
  while (true) {
    if (current >= bound) return false;
    if (counter->compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
}

/// The request's latency budget: an explicit deadline_ms wins, else the
/// context's desired response time, else unbounded.
Deadline EffectiveDeadline(const PersonalizationRequest& request) {
  if (request.deadline_ms > 0.0) {
    return Deadline::AfterMillis(request.deadline_ms);
  }
  if (request.context.has_value() &&
      request.context->max_latency_ms.has_value()) {
    return Deadline::AfterMillis(*request.context->max_latency_ms);
  }
  return Deadline::Infinite();
}

}  // namespace

const char* ToString(RequestDisposition disposition) {
  switch (disposition) {
    case RequestDisposition::kFull:
      return "full";
    case RequestDisposition::kDegraded:
      return "degraded";
    case RequestDisposition::kShed:
      return "shed";
    case RequestDisposition::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

PersonalizationService::PersonalizationService(const Database* db,
                                               ServiceOptions options)
    : PersonalizationService(
          db, options,
          std::make_unique<storage::DurableProfileStore>(&db->schema(),
                                                         options.num_shards)) {
}

PersonalizationService::PersonalizationService(
    const Database* db, ServiceOptions options,
    std::unique_ptr<storage::DurableProfileStore> store)
    : db_(db),
      options_(options),
      store_(std::move(store)),
      cache_(options.cache_capacity == 0 ? 1 : options.cache_capacity),
      cache_enabled_(options.cache_capacity > 0),
      pool_(options.num_workers > 0 ? options.num_workers
                                    : std::thread::hardware_concurrency()) {
  // Concurrent workers share the database read-only; build every lazy
  // column index up front so Lookup never mutates under them.
  db_->WarmIndexes();
}

Result<std::unique_ptr<PersonalizationService>>
PersonalizationService::OpenDurable(const Database* db,
                                    ServiceOptions options) {
  if (options.storage.dir.empty()) {
    return Status::InvalidArgument(
        "OpenDurable requires options.storage.dir");
  }
  QP_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DurableProfileStore> store,
      storage::DurableProfileStore::Open(&db->schema(), options.storage,
                                         options.num_shards));
  return std::unique_ptr<PersonalizationService>(
      new PersonalizationService(db, options, std::move(store)));
}

bool PersonalizationService::TryAdmit() {
  if (!TryReserve(&inflight_, options_.max_inflight)) return false;
  if (!TryReserve(&queued_, options_.max_queue_depth)) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

PersonalizationResponse PersonalizationService::PersonalizeOne(
    const PersonalizationRequest& request) {
  CancelToken cancel(EffectiveDeadline(request));
  if (cancel.ShouldStop()) {
    PersonalizationResponse response;
    response.status =
        Status::DeadlineExceeded("budget exhausted before start");
    response.disposition = RequestDisposition::kDeadlineExceeded;
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  return PersonalizeInternal(request, &cancel, /*degrade=*/false);
}

PersonalizationResponse PersonalizationService::PersonalizeInternal(
    const PersonalizationRequest& request, const CancelToken* cancel,
    bool degrade) {
  PersonalizationResponse response;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);

  // Resolve the effective options: the query context (device, budget,
  // bandwidth) derives criterion/top_n, then queue pressure steps the
  // top-count K down one rung (halve, minimum 1 — the same rule
  // DeriveOptions applies to sub-50ms budgets).
  PersonalizationOptions options =
      request.context.has_value()
          ? DeriveOptions(*request.context, request.options)
          : request.options;
  bool stepped_down = false;
  if (degrade &&
      options.criterion.kind() == InterestCriterion::Kind::kTopCount) {
    auto k = static_cast<size_t>(options.criterion.threshold());
    size_t reduced = std::max<size_t>(1, k / 2);
    if (reduced < k) {
      options.criterion = InterestCriterion::TopCount(reduced);
      stepped_down = true;
    }
  }

  auto snapshot = store_->Get(request.user_id);
  if (!snapshot.ok()) {
    response.status = snapshot.status();
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  const PersonalizationGraph& graph = *snapshot->graph;
  PreferenceSelector selector(&graph);

  // Phase 1: preference selection, served from the cache when possible.
  // A semantic filter changes what Select returns but is not part of the
  // key (it is an opaque callback), so such requests bypass the cache.
  WallTimer timer;
  std::vector<PreferencePath> selected;
  const bool cacheable =
      cache_enabled_ && options.semantic_filter == nullptr;
  if (cacheable) {
    std::string key = SelectionCache::MakeKey(
        request.user_id, snapshot->epoch, CanonicalQueryKey(request.query),
        options.criterion);
    SelectionCache::Paths cached = cache_.Lookup(key);
    if (cached != nullptr) {
      response.cache_hit = true;
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      selected = *cached;
    } else {
      counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      auto fresh = selector.Select(request.query, options.criterion,
                                   &response.outcome.selection_stats,
                                   /*semantic=*/nullptr, cancel);
      if (!fresh.ok()) {
        response.status = fresh.status();
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return response;
      }
      selected = std::move(fresh).value();
      // A deadline-truncated selection is a valid prefix for *this*
      // request but must not poison the cache for unconstrained ones.
      if (!response.outcome.selection_stats.degraded) {
        cache_.Insert(key, std::make_shared<const std::vector<PreferencePath>>(
                               selected));
      }
    }
  } else {
    counters_.cache_bypasses.fetch_add(1, std::memory_order_relaxed);
    auto fresh =
        selector.Select(request.query, options.criterion,
                        &response.outcome.selection_stats,
                        options.semantic_filter, cancel);
    if (!fresh.ok()) {
      response.status = fresh.status();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    selected = std::move(fresh).value();
  }

  std::vector<PreferencePath> negatives;
  if (options.max_negative > 0) {
    auto neg = selector.SelectNegative(request.query,
                                       options.max_negative,
                                       options.negative_min_doi);
    if (!neg.ok()) {
      response.status = neg.status();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    negatives = std::move(neg).value();
  }
  double selection_millis = timer.ElapsedMillis();
  counters_.selection_nanos.fetch_add(Nanos(selection_millis),
                                      std::memory_order_relaxed);

  // Phase 2: integration (identical to the serial Personalizer).
  auto integrated = Personalizer::IntegrateSelected(
      request.query, std::move(selected), std::move(negatives), options);
  if (!integrated.ok()) {
    response.status = integrated.status();
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  SelectionStats selection_stats = response.outcome.selection_stats;
  response.outcome = std::move(integrated).value();
  response.outcome.selection_stats = selection_stats;
  response.outcome.selection_millis = selection_millis;
  counters_.integration_nanos.fetch_add(
      Nanos(response.outcome.integration_millis), std::memory_order_relaxed);

  // Phase 3: execution (ranked for MQ), unless the caller only wants the
  // rewritten query.
  if (request.execute) {
    timer.Restart();
    Executor executor(db_);
    executor.set_cancel_token(cancel);
    auto result = response.outcome.sq.has_value()
                      ? executor.Execute(*response.outcome.sq)
                      : executor.Execute(*response.outcome.mq);
    if (!result.ok()) {
      response.status = result.status();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    response.results = std::move(result).value();
    if (options.top_n > 0) {
      response.results.Truncate(options.top_n);
    }
    response.execution_millis = timer.ElapsedMillis();
    counters_.execution_nanos.fetch_add(Nanos(response.execution_millis),
                                        std::memory_order_relaxed);
  }

  // Disposition: any reduction — K stepped down, selection cut to a
  // prefix, execution truncated — makes the (still valid) answer
  // degraded rather than full.
  if (stepped_down || response.outcome.selection_stats.degraded ||
      response.results.truncated()) {
    response.disposition = RequestDisposition::kDegraded;
    counters_.degraded.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

std::vector<std::future<PersonalizationResponse>>
PersonalizationService::PersonalizeBatch(
    std::vector<PersonalizationRequest> requests) {
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::future<PersonalizationResponse>> futures;
  futures.reserve(requests.size());
  for (PersonalizationRequest& request : requests) {
    // Admission control: reserve a queue + inflight slot before touching
    // the pool. A request that does not fit is shed right here — its
    // future resolves immediately and no worker time is spent on it.
    if (!TryAdmit()) {
      PersonalizationResponse shed;
      shed.status = Status::Unavailable("admission control: queue full");
      shed.disposition = RequestDisposition::kShed;
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      std::promise<PersonalizationResponse> promise;
      futures.push_back(promise.get_future());
      promise.set_value(std::move(shed));
      continue;
    }
    // The budget clock starts now, so it covers time spent in the queue.
    auto cancel = std::make_shared<CancelToken>(EffectiveDeadline(request));
    auto promise =
        std::make_shared<std::promise<PersonalizationResponse>>();
    futures.push_back(promise->get_future());
    bool submitted =
        pool_.Submit([this, request = std::move(request), cancel, promise]() {
          // This request is now executing, not queued; the depth left
          // behind decides whether it runs degraded.
          size_t depth =
              queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
          PersonalizationResponse response;
          if (cancel->ShouldStop()) {
            // The budget died in the queue: never start selection or
            // execution for it.
            response.status =
                Status::DeadlineExceeded("budget exhausted in queue");
            response.disposition = RequestDisposition::kDeadlineExceeded;
            counters_.requests.fetch_add(1, std::memory_order_relaxed);
            counters_.deadline_exceeded.fetch_add(1,
                                                  std::memory_order_relaxed);
          } else {
            const bool degrade = options_.degrade_queue_depth > 0 &&
                                 depth >= options_.degrade_queue_depth;
            response = PersonalizeInternal(request, cancel.get(), degrade);
          }
          inflight_.fetch_sub(1, std::memory_order_relaxed);
          promise->set_value(std::move(response));
        });
    if (!submitted) {
      // The pool refused the task (shutting down): release the admission
      // slots and resolve the future as shed so no caller hangs.
      queued_.fetch_sub(1, std::memory_order_relaxed);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      PersonalizationResponse shed;
      shed.status = Status::Unavailable("service shutting down");
      shed.disposition = RequestDisposition::kShed;
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      promise->set_value(std::move(shed));
      continue;
    }
    MaxInto(&counters_.max_queue_depth, pool_.ApproxQueueDepth());
  }
  return futures;
}

std::vector<PersonalizationResponse>
PersonalizationService::PersonalizeBatchAndWait(
    std::vector<PersonalizationRequest> requests) {
  std::vector<std::future<PersonalizationResponse>> futures =
      PersonalizeBatch(std::move(requests));
  std::vector<PersonalizationResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

ServiceStats PersonalizationService::stats() const {
  ServiceStats stats;
  stats.requests = counters_.requests.load(std::memory_order_relaxed);
  stats.batches = counters_.batches.load(std::memory_order_relaxed);
  stats.errors = counters_.errors.load(std::memory_order_relaxed);
  stats.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  stats.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
  stats.cache_bypasses =
      counters_.cache_bypasses.load(std::memory_order_relaxed);
  stats.shed = counters_.shed.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      counters_.deadline_exceeded.load(std::memory_order_relaxed);
  stats.degraded = counters_.degraded.load(std::memory_order_relaxed);
  stats.max_queue_depth =
      counters_.max_queue_depth.load(std::memory_order_relaxed);
  stats.selection_millis =
      counters_.selection_nanos.load(std::memory_order_relaxed) / 1e6;
  stats.integration_millis =
      counters_.integration_nanos.load(std::memory_order_relaxed) / 1e6;
  stats.execution_millis =
      counters_.execution_nanos.load(std::memory_order_relaxed) / 1e6;
  stats.cache = cache_.stats();
  stats.storage = store_->storage_stats();
  return stats;
}

}  // namespace qp
