#include "qp/service/service.h"

#include <thread>
#include <utility>

#include "qp/core/query_signature.h"
#include "qp/core/selection.h"
#include "qp/util/timer.h"

namespace qp {
namespace {

uint64_t Nanos(double millis) {
  return static_cast<uint64_t>(millis * 1e6);
}

void MaxInto(std::atomic<size_t>* target, size_t value) {
  size_t current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

PersonalizationService::PersonalizationService(const Database* db,
                                               ServiceOptions options)
    : PersonalizationService(
          db, options,
          std::make_unique<storage::DurableProfileStore>(&db->schema(),
                                                         options.num_shards)) {
}

PersonalizationService::PersonalizationService(
    const Database* db, ServiceOptions options,
    std::unique_ptr<storage::DurableProfileStore> store)
    : db_(db),
      store_(std::move(store)),
      cache_(options.cache_capacity == 0 ? 1 : options.cache_capacity),
      cache_enabled_(options.cache_capacity > 0),
      pool_(options.num_workers > 0 ? options.num_workers
                                    : std::thread::hardware_concurrency()) {
  // Concurrent workers share the database read-only; build every lazy
  // column index up front so Lookup never mutates under them.
  db_->WarmIndexes();
}

Result<std::unique_ptr<PersonalizationService>>
PersonalizationService::OpenDurable(const Database* db,
                                    ServiceOptions options) {
  if (options.storage.dir.empty()) {
    return Status::InvalidArgument(
        "OpenDurable requires options.storage.dir");
  }
  QP_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DurableProfileStore> store,
      storage::DurableProfileStore::Open(&db->schema(), options.storage,
                                         options.num_shards));
  return std::unique_ptr<PersonalizationService>(
      new PersonalizationService(db, options, std::move(store)));
}

PersonalizationResponse PersonalizationService::PersonalizeOne(
    const PersonalizationRequest& request) {
  PersonalizationResponse response;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);

  auto snapshot = store_->Get(request.user_id);
  if (!snapshot.ok()) {
    response.status = snapshot.status();
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  const PersonalizationGraph& graph = *snapshot->graph;
  PreferenceSelector selector(&graph);

  // Phase 1: preference selection, served from the cache when possible.
  // A semantic filter changes what Select returns but is not part of the
  // key (it is an opaque callback), so such requests bypass the cache.
  WallTimer timer;
  std::vector<PreferencePath> selected;
  const bool cacheable =
      cache_enabled_ && request.options.semantic_filter == nullptr;
  if (cacheable) {
    std::string key = SelectionCache::MakeKey(
        request.user_id, snapshot->epoch, CanonicalQueryKey(request.query),
        request.options.criterion);
    SelectionCache::Paths cached = cache_.Lookup(key);
    if (cached != nullptr) {
      response.cache_hit = true;
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      selected = *cached;
    } else {
      counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      auto fresh = selector.Select(request.query, request.options.criterion,
                                   &response.outcome.selection_stats);
      if (!fresh.ok()) {
        response.status = fresh.status();
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return response;
      }
      selected = std::move(fresh).value();
      cache_.Insert(
          key, std::make_shared<const std::vector<PreferencePath>>(selected));
    }
  } else {
    counters_.cache_bypasses.fetch_add(1, std::memory_order_relaxed);
    auto fresh =
        selector.Select(request.query, request.options.criterion,
                        &response.outcome.selection_stats,
                        request.options.semantic_filter);
    if (!fresh.ok()) {
      response.status = fresh.status();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    selected = std::move(fresh).value();
  }

  std::vector<PreferencePath> negatives;
  if (request.options.max_negative > 0) {
    auto neg = selector.SelectNegative(request.query,
                                       request.options.max_negative,
                                       request.options.negative_min_doi);
    if (!neg.ok()) {
      response.status = neg.status();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    negatives = std::move(neg).value();
  }
  double selection_millis = timer.ElapsedMillis();
  counters_.selection_nanos.fetch_add(Nanos(selection_millis),
                                      std::memory_order_relaxed);

  // Phase 2: integration (identical to the serial Personalizer).
  auto integrated = Personalizer::IntegrateSelected(
      request.query, std::move(selected), std::move(negatives),
      request.options);
  if (!integrated.ok()) {
    response.status = integrated.status();
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  SelectionStats selection_stats = response.outcome.selection_stats;
  response.outcome = std::move(integrated).value();
  response.outcome.selection_stats = selection_stats;
  response.outcome.selection_millis = selection_millis;
  counters_.integration_nanos.fetch_add(
      Nanos(response.outcome.integration_millis), std::memory_order_relaxed);

  // Phase 3: execution (ranked for MQ), unless the caller only wants the
  // rewritten query.
  if (request.execute) {
    timer.Restart();
    Executor executor(db_);
    auto result = response.outcome.sq.has_value()
                      ? executor.Execute(*response.outcome.sq)
                      : executor.Execute(*response.outcome.mq);
    if (!result.ok()) {
      response.status = result.status();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    response.results = std::move(result).value();
    if (request.options.top_n > 0) {
      response.results.Truncate(request.options.top_n);
    }
    response.execution_millis = timer.ElapsedMillis();
    counters_.execution_nanos.fetch_add(Nanos(response.execution_millis),
                                        std::memory_order_relaxed);
  }
  return response;
}

std::vector<std::future<PersonalizationResponse>>
PersonalizationService::PersonalizeBatch(
    std::vector<PersonalizationRequest> requests) {
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::future<PersonalizationResponse>> futures;
  futures.reserve(requests.size());
  for (PersonalizationRequest& request : requests) {
    auto task = std::make_shared<std::packaged_task<PersonalizationResponse()>>(
        [this, request = std::move(request)]() {
          return PersonalizeOne(request);
        });
    futures.push_back(task->get_future());
    pool_.Submit([task] { (*task)(); });
    MaxInto(&counters_.max_queue_depth, pool_.ApproxQueueDepth());
  }
  return futures;
}

std::vector<PersonalizationResponse>
PersonalizationService::PersonalizeBatchAndWait(
    std::vector<PersonalizationRequest> requests) {
  std::vector<std::future<PersonalizationResponse>> futures =
      PersonalizeBatch(std::move(requests));
  std::vector<PersonalizationResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

ServiceStats PersonalizationService::stats() const {
  ServiceStats stats;
  stats.requests = counters_.requests.load(std::memory_order_relaxed);
  stats.batches = counters_.batches.load(std::memory_order_relaxed);
  stats.errors = counters_.errors.load(std::memory_order_relaxed);
  stats.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  stats.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
  stats.cache_bypasses =
      counters_.cache_bypasses.load(std::memory_order_relaxed);
  stats.max_queue_depth =
      counters_.max_queue_depth.load(std::memory_order_relaxed);
  stats.selection_millis =
      counters_.selection_nanos.load(std::memory_order_relaxed) / 1e6;
  stats.integration_millis =
      counters_.integration_nanos.load(std::memory_order_relaxed) / 1e6;
  stats.execution_millis =
      counters_.execution_nanos.load(std::memory_order_relaxed) / 1e6;
  stats.cache = cache_.stats();
  stats.storage = store_->storage_stats();
  return stats;
}

}  // namespace qp
