#include "qp/service/service.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "qp/core/query_signature.h"
#include "qp/core/selection.h"
#include "qp/obs/flight_recorder.h"
#include "qp/util/fault_hub.h"
#include "qp/util/timer.h"

namespace qp {
namespace {

/// Atomically reserves one unit in `counter` unless it is at `bound`
/// (0 = unbounded). The CAS guarantees the counter never exceeds the
/// bound regardless of concurrent admitters.
bool TryReserve(std::atomic<size_t>* counter, size_t bound) {
  if (bound == 0) {
    counter->fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  size_t current = counter->load(std::memory_order_relaxed);
  while (true) {
    if (current >= bound) return false;
    if (counter->compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
}

/// The request's latency budget: an explicit deadline_ms wins, else the
/// context's desired response time, else unbounded.
Deadline EffectiveDeadline(const PersonalizationRequest& request) {
  if (request.deadline_ms > 0.0) {
    return Deadline::AfterMillis(request.deadline_ms);
  }
  if (request.context.has_value() &&
      request.context->max_latency_ms.has_value()) {
    return Deadline::AfterMillis(*request.context->max_latency_ms);
  }
  return Deadline::Infinite();
}

}  // namespace

const char* ToString(RequestDisposition disposition) {
  switch (disposition) {
    case RequestDisposition::kFull:
      return "full";
    case RequestDisposition::kDegraded:
      return "degraded";
    case RequestDisposition::kShed:
      return "shed";
    case RequestDisposition::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

PersonalizationService::PersonalizationService(const Database* db,
                                               ServiceOptions options)
    : PersonalizationService(db, std::move(options), nullptr) {}

PersonalizationService::PersonalizationService(
    const Database* db, ServiceOptions options,
    std::unique_ptr<storage::ProfileBackend> store)
    : db_(db),
      options_(options),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      store_(store != nullptr
                 ? std::move(store)
                 : std::make_unique<storage::DurableProfileStore>(
                       &db->schema(), options.num_shards, metrics_)),
      cache_(options.cache_capacity == 0 ? 1 : options.cache_capacity,
             metrics_),
      cache_enabled_(options.cache_capacity > 0),
      pool_(options.num_workers > 0 ? options.num_workers
                                    : std::thread::hardware_concurrency()),
      slo_(options.slo) {
  // Concurrent workers share the database read-only; build every lazy
  // column index up front so Lookup never mutates under them.
  db_->WarmIndexes();
  // A shard of a cluster labels its instruments {shard="<id>"} so every
  // shard shares one registry without the stat re-homing the sharded
  // front end used to do; a standalone service keeps the flat names.
  obs::MetricLabels labels;
  if (options_.shard_id >= 0) {
    labels.emplace_back("shard", std::to_string(options_.shard_id));
  }
  auto counter = [&](const char* name) {
    return metrics_->counter(name, labels);
  };
  inst_.requests = counter("qp_service_requests_total");
  inst_.batches = counter("qp_service_batches_total");
  inst_.errors = counter("qp_service_errors_total");
  inst_.cache_hits = counter("qp_service_cache_hits_total");
  inst_.cache_misses = counter("qp_service_cache_misses_total");
  inst_.cache_bypasses = counter("qp_service_cache_bypasses_total");
  inst_.shed = counter("qp_service_shed_total");
  inst_.deadline_exceeded = counter("qp_service_deadline_exceeded_total");
  inst_.degraded = counter("qp_service_degraded_total");
  inst_.full = counter("qp_service_full_total");
  auto disposition_counter = [&](const char* disposition) {
    obs::MetricLabels with_disposition = labels;
    with_disposition.emplace_back("disposition", disposition);
    return metrics_->counter("qp_service_requests_by_disposition_total",
                             with_disposition);
  };
  inst_.disp_full = disposition_counter("full");
  inst_.disp_degraded = disposition_counter("degraded");
  inst_.disp_shed = disposition_counter("shed");
  inst_.disp_deadline_exceeded = disposition_counter("deadline_exceeded");
  inst_.disp_error = disposition_counter("error");
  inst_.max_queue_depth =
      metrics_->gauge("qp_service_max_queue_depth", labels);
  inst_.request_seconds =
      metrics_->histogram("qp_service_request_seconds", labels);
  inst_.selection_seconds =
      metrics_->histogram("qp_service_selection_seconds", labels);
  inst_.integration_seconds =
      metrics_->histogram("qp_service_integration_seconds", labels);
  inst_.execution_seconds =
      metrics_->histogram("qp_service_execution_seconds", labels);
  metrics_->SetHelp("qp_service_requests_total",
                    "Requests admitted (counted at admission; dispositions "
                    "resolve later).");
  metrics_->SetHelp("qp_service_requests_by_disposition_total",
                    "Requests by final disposition: full | degraded | shed | "
                    "deadline_exceeded | error.");
  metrics_->SetHelp("qp_service_request_seconds",
                    "End-to-end request latency (seconds), queue wait "
                    "included.");
  // The flight recorder wants fault fires even when the storage layer
  // (whose static registrar usually installs the hook) is not linked in.
  FaultHub::SetFireListener(&obs::RecordFaultFire);
}

Result<std::unique_ptr<PersonalizationService>>
PersonalizationService::OpenDurable(const Database* db,
                                    ServiceOptions options) {
  if (options.storage.dir.empty()) {
    return Status::InvalidArgument(
        "OpenDurable requires options.storage.dir");
  }
  // The registry must exist before the store opens: recovery gauges and
  // the WAL's instruments are resolved against it during Open.
  std::unique_ptr<obs::MetricsRegistry> owned;
  if (options.metrics == nullptr) {
    owned = std::make_unique<obs::MetricsRegistry>();
    options.metrics = owned.get();
  }
  options.storage.metrics = options.metrics;
  QP_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DurableProfileStore> store,
      storage::DurableProfileStore::Open(&db->schema(), options.storage,
                                         options.num_shards));
  std::unique_ptr<PersonalizationService> service(
      new PersonalizationService(db, std::move(options), std::move(store)));
  // Hand the registry's ownership to the service (the raw pointer the
  // members cached stays valid across the move).
  if (owned != nullptr) service->owned_metrics_ = std::move(owned);
  return service;
}

bool PersonalizationService::TryAdmit() {
  // Chaos site: an injected admission refusal takes the existing shed
  // path — the future still resolves, the accounting identity still
  // holds. Delay mode models a slow admission check instead.
  if (!QP_FAULT_POINT("service.admit").ok()) return false;
  if (!TryReserve(&inflight_, options_.max_inflight)) return false;
  if (!TryReserve(&queued_, options_.max_queue_depth)) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void PersonalizationService::TraceUnranRequest(
    const char* disposition, const char* phase,
    const obs::TraceContext* context) {
  if (!obs::kTracingCompiledIn) return;
  // An unserved request attains neither objective.
  slo_.Record(/*served=*/false,
              std::numeric_limits<double>::infinity());
  obs::TraceSink* sink = trace_sink_.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  // Tail-keep rules: shed / queue-expired requests are kept even when
  // not head-sampled — they are exactly the traces an overload
  // post-mortem needs.
  const obs::SamplingPolicy& policy = options_.sampling;
  const std::string_view what = disposition;
  bool keep = context != nullptr && context->valid() && context->sampled;
  if (!keep && what == "shed") keep = policy.keep_shed;
  if (!keep && what == "deadline_exceeded") {
    keep = policy.keep_deadline_exceeded;
  }
  if (!keep) return;
  obs::RequestTrace trace = context != nullptr && context->valid()
                                ? obs::RequestTrace(*context)
                                : obs::RequestTrace();
  trace.SetDisposition(disposition, phase);
  obs::RecordTraceSummary(trace);
  sink->Consume(std::move(trace));
}

double PersonalizationService::SlowTraceThresholdMillis() const {
  if (options_.sampling.slow_millis > 0.0) {
    return options_.sampling.slow_millis;
  }
  return slow_p99_millis_.load(std::memory_order_relaxed);
}

PersonalizationResponse PersonalizationService::PersonalizeOne(
    const PersonalizationRequest& request) {
  CancelToken cancel(EffectiveDeadline(request));
  if (cancel.ShouldStop()) {
    PersonalizationResponse response;
    response.status =
        Status::DeadlineExceeded("budget exhausted before start");
    response.disposition = RequestDisposition::kDeadlineExceeded;
    inst_.requests->Add(1);
    inst_.deadline_exceeded->Add(1);
    inst_.disp_deadline_exceeded->Add(1);
    TraceUnranRequest("deadline_exceeded", "admission",
                      &request.trace_context);
    return response;
  }
  return PersonalizeInternal(request, &cancel, /*degrade=*/false);
}

PersonalizationResponse PersonalizationService::PersonalizeInternal(
    const PersonalizationRequest& request, const CancelToken* cancel,
    bool degrade) {
  inst_.requests->Add(1);
  obs::TraceSink* sink = trace_sink_.load(std::memory_order_acquire);
  std::optional<obs::RequestTrace> trace;
  // Where the trace context comes from decides who sampled: a valid
  // context means an upstream edge (the shard router) already made the
  // head decision and this service only honors it; an empty one makes
  // this service the edge — it mints the trace id and flips the head
  // coin itself. Either way the id exists before the pipeline runs, so
  // a tail-kept trace can still join its distributed family.
  obs::TraceContext context = request.trace_context;
  bool tail_candidate = false;
  // Fault-fire watermark for the tail rule; the sentinel means "not
  // watching" (hub disarmed or the rule is off) so the common path
  // never takes the hub's shared lock.
  constexpr uint64_t kNotWatching = ~uint64_t{0};
  uint64_t fires_before = kNotWatching;
  if (obs::kTracingCompiledIn && sink != nullptr) {
    if (!context.valid()) {
      context.trace_id = obs::NewTraceId();
      context.parent_span_id = 0;
      context.sampled =
          obs::HeadSampled(context.trace_id, options_.sampling.head_rate);
    }
    if (context.sampled) {
      trace.emplace(context);
    } else {
      tail_candidate = true;
      if (options_.sampling.keep_fault_fired &&
          FaultHub::Global()->armed()) {
        fires_before = FaultHub::Global()->total_fires();
      }
    }
  }

  WallTimer timer;
  PersonalizationResponse response = RunPipeline(
      request, cancel, degrade, trace.has_value() ? &*trace : nullptr);
  const double elapsed_millis = timer.ElapsedMillis();
  inst_.request_seconds->RecordMillis(elapsed_millis);

  // Exactly one disposition counter per request; the admission paths
  // (shed, expired-in-queue) count theirs at their own sites. `requests`
  // was incremented above, *before* any disposition — stats() relies on
  // that order for its accounting identity.
  if (!response.status.ok()) {
    inst_.errors->Add(1);
    inst_.disp_error->Add(1);
  } else if (response.disposition == RequestDisposition::kDegraded) {
    inst_.degraded->Add(1);
    inst_.disp_degraded->Add(1);
  } else {
    inst_.full->Add(1);
    inst_.disp_full->Add(1);
  }

  if (obs::kTracingCompiledIn) {
    slo_.Record(response.status.ok(), elapsed_millis);
    // The slow-trace threshold tracks the live p99; refresh the cached
    // copy every 1024 completions so the tail rule costs one relaxed
    // load per request, not a histogram merge.
    const uint64_t done = completed_.fetch_add(1, std::memory_order_relaxed);
    if ((done & 1023u) == 1023u && options_.sampling.slow_millis <= 0.0) {
      slow_p99_millis_.store(inst_.request_seconds->Snapshot().p99() * 1e3,
                             std::memory_order_relaxed);
    }
  }

  if (sink != nullptr && (trace.has_value() || tail_candidate)) {
    std::string phase;
    if (!response.status.ok()) {
      // The last span opened is where the pipeline stopped. A tail-kept
      // trace ran without spans, so its stop phase is unknown.
      phase = !trace.has_value()            ? ""
              : trace->spans().empty()      ? "admission"
                                            : trace->spans().back().name;
    } else if (response.disposition == RequestDisposition::kDegraded) {
      if (response.outcome.selection_stats.degraded) {
        phase = "preference_selection";
      } else if (response.results.truncated()) {
        phase = "execution";
      } else {
        phase = "admission";  // K stepped down under queue pressure.
      }
    }
    const char* disposition =
        response.status.ok() ? ToString(response.disposition) : "error";
    if (trace.has_value()) {
      trace->SetDisposition(disposition, std::move(phase));
      obs::RecordTraceSummary(*trace);
      sink->Consume(std::move(*trace));
    } else {
      // Tail rules: resurrect a minimal (span-less) trace for outcomes
      // the head coin must never lose — errors, degradations, slow
      // requests, and anything a chaos fault touched.
      const obs::SamplingPolicy& policy = options_.sampling;
      bool keep = false;
      if (!response.status.ok()) {
        keep = policy.keep_errors;
      } else if (response.disposition == RequestDisposition::kDegraded) {
        keep = policy.keep_degraded;
      } else if (response.disposition == RequestDisposition::kShed) {
        keep = policy.keep_shed;
      } else if (response.disposition ==
                 RequestDisposition::kDeadlineExceeded) {
        keep = policy.keep_deadline_exceeded;
      }
      if (!keep) {
        const double slow = SlowTraceThresholdMillis();
        keep = slow > 0.0 && elapsed_millis >= slow;
      }
      if (!keep && fires_before != kNotWatching &&
          FaultHub::Global()->total_fires() > fires_before) {
        keep = true;
      }
      if (keep) {
        obs::RequestTrace tail(context);
        tail.SetDisposition(disposition, std::move(phase));
        obs::RecordTraceSummary(tail);
        sink->Consume(std::move(tail));
      }
    }
  }
  return response;
}

PersonalizationResponse PersonalizationService::RunPipeline(
    const PersonalizationRequest& request, const CancelToken* cancel,
    bool degrade, obs::RequestTrace* trace) {
  PersonalizationResponse response;

  // A sharded deployment stamps which shard served the request on its
  // trace, and holds the span open across the whole pipeline so the
  // phase spans nest under it — the distributed tree then reads
  // router → shard → profile_lookup/cache/selection/execution. A
  // standalone service (shard_id < 0) keeps its phase spans as roots,
  // exactly the shape the single-node tooling expects.
  obs::ScopedSpan shard_span(options_.shard_id >= 0 ? trace : nullptr,
                             "shard");
  if (options_.shard_id >= 0) {
    shard_span.Counter("id", static_cast<uint64_t>(options_.shard_id));
  }

  // Resolve the effective options: the query context (device, budget,
  // bandwidth) derives criterion/top_n, then queue pressure steps the
  // top-count K down one rung (halve, minimum 1 — the same rule
  // DeriveOptions applies to sub-50ms budgets).
  PersonalizationOptions options =
      request.context.has_value()
          ? DeriveOptions(*request.context, request.options)
          : request.options;
  bool stepped_down = false;
  if (degrade &&
      options.criterion.kind() == InterestCriterion::Kind::kTopCount) {
    auto k = static_cast<size_t>(options.criterion.threshold());
    size_t reduced = std::max<size_t>(1, k / 2);
    if (reduced < k) {
      options.criterion = InterestCriterion::TopCount(reduced);
      stepped_down = true;
    }
  }

  obs::ScopedSpan profile_span(trace, "profile_lookup");
  auto snapshot = store_->Get(request.user_id);
  profile_span.Counter("found", snapshot.ok() ? 1 : 0);
  profile_span.End();
  if (!snapshot.ok()) {
    response.status = snapshot.status();
    return response;
  }
  // A profile the integrity scrubber quarantined is served degraded: the
  // raw query runs unpersonalized (an exact, if unranked, answer) rather
  // than personalizing from state known to violate its invariants. The
  // scrubber's repair path lifts the quarantine once the profile is
  // rebuilt from the last good snapshot + WAL replay.
  if (store_->IsQuarantined(request.user_id)) {
    obs::ScopedSpan quarantine_span(trace, "quarantined_bypass");
    response.outcome.sq = request.query;
    if (request.execute) {
      WallTimer exec_timer;
      Executor executor(db_);
      executor.set_cancel_token(cancel);
      executor.set_trace(trace);
      executor.BindMetrics(metrics_);
      auto result = executor.Execute(request.query);
      if (!result.ok()) {
        response.status = result.status();
        return response;
      }
      response.results = std::move(result).value();
      if (options.top_n > 0) response.results.Truncate(options.top_n);
      response.execution_millis = exec_timer.ElapsedMillis();
      inst_.execution_seconds->RecordMillis(response.execution_millis);
    }
    response.disposition = RequestDisposition::kDegraded;
    return response;
  }
  const PersonalizationGraph& graph = *snapshot->graph;
  PreferenceSelector selector(&graph);

  // Phase 1: preference selection, served from the cache when possible.
  // A semantic filter changes what Select returns but is not part of the
  // key (it is an opaque callback), so such requests bypass the cache.
  WallTimer timer;
  std::vector<PreferencePath> selected;
  bool cacheable =
      cache_enabled_ && options.semantic_filter == nullptr;
  // Chaos site: a faulted cache lookup degrades to a bypass — the
  // request recomputes its selection (correct, just slower) rather than
  // failing or serving a stale entry.
  if (cacheable) {
    FaultAction cache_fault = QP_FAULT_ACTION("cache.lookup");
    cache_fault.Sleep();
    if (cache_fault.fire && cache_fault.mode != FaultMode::kDelay) {
      cacheable = false;
    }
  }
  if (cacheable) {
    std::string key = SelectionCache::MakeKey(
        request.user_id, snapshot->epoch, CanonicalQueryKey(request.query),
        options.criterion);
    obs::ScopedSpan cache_span(trace, "cache_lookup");
    SelectionCache::Paths cached = cache_.Lookup(key);
    cache_span.Counter("hit", cached != nullptr ? 1 : 0);
    cache_span.End();
    if (cached != nullptr) {
      response.cache_hit = true;
      inst_.cache_hits->Add(1);
      selected = *cached;
    } else {
      inst_.cache_misses->Add(1);
      auto fresh = selector.Select(request.query, options.criterion,
                                   &response.outcome.selection_stats,
                                   /*semantic=*/nullptr, cancel, trace);
      if (!fresh.ok()) {
        response.status = fresh.status();
        return response;
      }
      selected = std::move(fresh).value();
      // A deadline-truncated selection is a valid prefix for *this*
      // request but must not poison the cache for unconstrained ones.
      if (!response.outcome.selection_stats.degraded) {
        cache_.Insert(request.user_id, key,
                      std::make_shared<const std::vector<PreferencePath>>(
                          selected));
      }
    }
  } else {
    inst_.cache_bypasses->Add(1);
    auto fresh =
        selector.Select(request.query, options.criterion,
                        &response.outcome.selection_stats,
                        options.semantic_filter, cancel, trace);
    if (!fresh.ok()) {
      response.status = fresh.status();
      return response;
    }
    selected = std::move(fresh).value();
  }

  std::vector<PreferencePath> negatives;
  if (options.max_negative > 0) {
    obs::ScopedSpan negative_span(trace, "negative_selection");
    auto neg = selector.SelectNegative(request.query,
                                       options.max_negative,
                                       options.negative_min_doi);
    if (!neg.ok()) {
      response.status = neg.status();
      return response;
    }
    negatives = std::move(neg).value();
    negative_span.Counter("selected", negatives.size());
  }
  double selection_millis = timer.ElapsedMillis();
  inst_.selection_seconds->RecordMillis(selection_millis);

  // Phase 2: integration (identical to the serial Personalizer).
  auto integrated = Personalizer::IntegrateSelected(
      request.query, std::move(selected), std::move(negatives), options,
      trace);
  if (!integrated.ok()) {
    response.status = integrated.status();
    return response;
  }
  SelectionStats selection_stats = response.outcome.selection_stats;
  response.outcome = std::move(integrated).value();
  response.outcome.selection_stats = selection_stats;
  response.outcome.selection_millis = selection_millis;
  inst_.integration_seconds->RecordMillis(
      response.outcome.integration_millis);

  // Phase 3: execution (ranked for MQ), unless the caller only wants the
  // rewritten query.
  if (request.execute) {
    timer.Restart();
    Executor executor(db_);
    executor.set_cancel_token(cancel);
    executor.set_trace(trace);
    executor.BindMetrics(metrics_);
    auto result = response.outcome.sq.has_value()
                      ? executor.Execute(*response.outcome.sq)
                      : executor.Execute(*response.outcome.mq);
    if (!result.ok()) {
      response.status = result.status();
      return response;
    }
    response.results = std::move(result).value();
    if (options.top_n > 0) {
      response.results.Truncate(options.top_n);
    }
    response.execution_millis = timer.ElapsedMillis();
    inst_.execution_seconds->RecordMillis(response.execution_millis);
  }

  // Disposition: any reduction — K stepped down, selection cut to a
  // prefix, execution truncated — makes the (still valid) answer
  // degraded rather than full.
  if (stepped_down || response.outcome.selection_stats.degraded ||
      response.results.truncated()) {
    response.disposition = RequestDisposition::kDegraded;
  }
  return response;
}

std::vector<std::future<PersonalizationResponse>>
PersonalizationService::PersonalizeBatch(
    std::vector<PersonalizationRequest> requests) {
  inst_.batches->Add(1);
  std::vector<std::future<PersonalizationResponse>> futures;
  futures.reserve(requests.size());
  for (PersonalizationRequest& request : requests) {
    // Admission control: reserve a queue + inflight slot before touching
    // the pool. A request that does not fit is shed right here — its
    // future resolves immediately and no worker time is spent on it.
    if (!TryAdmit()) {
      PersonalizationResponse shed;
      shed.status = Status::Unavailable("admission control: queue full");
      shed.disposition = RequestDisposition::kShed;
      inst_.requests->Add(1);
      inst_.shed->Add(1);
      inst_.disp_shed->Add(1);
      TraceUnranRequest("shed", "admission", &request.trace_context);
      std::promise<PersonalizationResponse> promise;
      futures.push_back(promise.get_future());
      promise.set_value(std::move(shed));
      continue;
    }
    // The budget clock starts now, so it covers time spent in the queue.
    auto cancel = std::make_shared<CancelToken>(EffectiveDeadline(request));
    auto promise =
        std::make_shared<std::promise<PersonalizationResponse>>();
    futures.push_back(promise->get_future());
    bool submitted =
        pool_.Submit([this, request = std::move(request), cancel, promise]() {
          // This request is now executing, not queued; the depth left
          // behind decides whether it runs degraded.
          size_t depth =
              queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
          PersonalizationResponse response;
          if (cancel->ShouldStop()) {
            // The budget died in the queue: never start selection or
            // execution for it.
            response.status =
                Status::DeadlineExceeded("budget exhausted in queue");
            response.disposition = RequestDisposition::kDeadlineExceeded;
            inst_.requests->Add(1);
            inst_.deadline_exceeded->Add(1);
            inst_.disp_deadline_exceeded->Add(1);
            TraceUnranRequest("deadline_exceeded", "queue",
                              &request.trace_context);
          } else {
            const bool degrade = options_.degrade_queue_depth > 0 &&
                                 depth >= options_.degrade_queue_depth;
            response = PersonalizeInternal(request, cancel.get(), degrade);
          }
          inflight_.fetch_sub(1, std::memory_order_relaxed);
          promise->set_value(std::move(response));
        });
    if (!submitted) {
      // The pool refused the task (shutting down): release the admission
      // slots and resolve the future as shed so no caller hangs.
      queued_.fetch_sub(1, std::memory_order_relaxed);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      PersonalizationResponse shed;
      shed.status = Status::Unavailable("service shutting down");
      shed.disposition = RequestDisposition::kShed;
      inst_.requests->Add(1);
      inst_.shed->Add(1);
      inst_.disp_shed->Add(1);
      // The request moved into the rejected task; its context is gone.
      TraceUnranRequest("shed", "admission", nullptr);
      promise->set_value(std::move(shed));
      continue;
    }
    inst_.max_queue_depth->SetMax(
        static_cast<double>(pool_.ApproxQueueDepth()));
  }
  return futures;
}

std::vector<PersonalizationResponse>
PersonalizationService::PersonalizeBatchAndWait(
    std::vector<PersonalizationRequest> requests) {
  std::vector<std::future<PersonalizationResponse>> futures =
      PersonalizeBatch(std::move(requests));
  std::vector<PersonalizationResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

ServiceStats PersonalizationService::stats() const {
  ServiceStats stats;
  // Read the disposition counters *before* `requests`: requests are
  // counted at admission and dispositions at resolution (in that program
  // order, seq_cst), so in this read order the disposition sum can trail
  // requests — in-flight work — but never exceed it.
  stats.errors = inst_.errors->Value();
  stats.shed = inst_.shed->Value();
  stats.deadline_exceeded = inst_.deadline_exceeded->Value();
  stats.degraded = inst_.degraded->Value();
  stats.full = inst_.full->Value();
  stats.requests = inst_.requests->Value();
  stats.batches = inst_.batches->Value();
  stats.cache_hits = inst_.cache_hits->Value();
  stats.cache_misses = inst_.cache_misses->Value();
  stats.cache_bypasses = inst_.cache_bypasses->Value();
  stats.max_queue_depth =
      static_cast<size_t>(inst_.max_queue_depth->Value());
  stats.selection_millis = inst_.selection_seconds->Snapshot().sum * 1e3;
  stats.integration_millis =
      inst_.integration_seconds->Snapshot().sum * 1e3;
  stats.execution_millis = inst_.execution_seconds->Snapshot().sum * 1e3;
  stats.cache = cache_.stats();
  stats.storage = store_->storage_stats();
  stats.tier = store_->tier_stats();
  return stats;
}

std::string PersonalizationService::DumpMetrics(
    obs::ExportFormat format) const {
  // Sampled gauges: refreshed at dump time rather than maintained on the
  // hot path, so the export is a coherent point-in-time view for free.
  metrics_->gauge("qp_service_queue_depth")
      ->Set(static_cast<double>(queued_.load(std::memory_order_relaxed)));
  metrics_->gauge("qp_service_inflight")
      ->Set(static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  metrics_->gauge("qp_selection_cache_entries")
      ->Set(static_cast<double>(cache_.size()));
  storage::StorageStats storage = store_->storage_stats();
  if (storage.durable) {
    metrics_->gauge("qp_storage_wal_segment_bytes")
        ->Set(static_cast<double>(storage.wal_segment_bytes));
    metrics_->gauge("qp_storage_breaker_open")
        ->Set(storage.breaker_open ? 1.0 : 0.0);
    metrics_->gauge("qp_storage_quarantined_profiles")
        ->Set(static_cast<double>(storage.quarantined_profiles));
  }
  storage::TierStats tier = store_->tier_stats();
  if (tier.enabled) {
    metrics_->gauge("qp_tier_hot_resident")
        ->Set(static_cast<double>(tier.hot_resident));
    metrics_->gauge("qp_tier_cold_users")
        ->Set(static_cast<double>(tier.cold_users));
    // The same residency split as a labeled family, so a cluster scrape
    // can sum/compare tiers without parsing metric names.
    obs::MetricLabels tier_labels;
    if (options_.shard_id >= 0) {
      tier_labels.emplace_back("shard", std::to_string(options_.shard_id));
    }
    tier_labels.emplace_back("tier", "hot");
    metrics_->gauge("qp_tier_resident_users", tier_labels)
        ->Set(static_cast<double>(tier.hot_resident));
    tier_labels.back().second = "cold";
    metrics_->gauge("qp_tier_resident_users", tier_labels)
        ->Set(static_cast<double>(tier.cold_users));
  }
  if (obs::kTracingCompiledIn) {
    obs::MetricLabels slo_labels;
    if (options_.shard_id >= 0) {
      slo_labels.emplace_back("shard", std::to_string(options_.shard_id));
    }
    const obs::SloSnapshot slo = slo_.Evaluate();
    metrics_->gauge("qp_slo_availability", slo_labels)
        ->Set(slo.availability);
    metrics_->gauge("qp_slo_availability_burn_rate", slo_labels)
        ->Set(slo.availability_burn_rate);
    metrics_->gauge("qp_slo_latency_attainment", slo_labels)
        ->Set(slo.latency_attainment);
    metrics_->gauge("qp_slo_latency_burn_rate", slo_labels)
        ->Set(slo.latency_burn_rate);
    metrics_->gauge("qp_slo_window_requests", slo_labels)
        ->Set(static_cast<double>(slo.window_requests));
    metrics_->SetHelp("qp_slo_availability_burn_rate",
                      "Error-budget burn multiple over the rolling window "
                      "(1.0 = burning exactly the budget).");
  }
  return metrics_->Export(format);
}

}  // namespace qp
