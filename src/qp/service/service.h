#ifndef QP_SERVICE_SERVICE_H_
#define QP_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qp/core/context.h"
#include "qp/core/personalizer.h"
#include "qp/exec/executor.h"
#include "qp/obs/metrics.h"
#include "qp/obs/slo.h"
#include "qp/obs/trace.h"
#include "qp/relational/database.h"
#include "qp/service/profile_store.h"
#include "qp/service/selection_cache.h"
#include "qp/service/thread_pool.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/util/status.h"

namespace qp {

/// Tuning knobs of a PersonalizationService.
struct ServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  size_t num_workers = 0;
  /// Shards of the profile store.
  size_t num_shards = 16;
  /// Selection-cache capacity in entries; 0 disables the cache.
  size_t cache_capacity = 4096;
  /// Admission control: maximum requests waiting for a worker (0 =
  /// unbounded). A batch request arriving with the queue at the bound is
  /// shed immediately — its future resolves to Status::Unavailable with
  /// disposition kShed — instead of growing the queue. The bound is
  /// enforced with compare-and-swap, so the queue never exceeds it even
  /// under concurrent submission.
  size_t max_queue_depth = 0;
  /// Maximum admitted requests (queued + executing) at once (0 =
  /// unbounded). Excess requests are shed like max_queue_depth.
  size_t max_inflight = 0;
  /// Graceful degradation: when a worker picks up a request and the
  /// queue behind it is at least this deep (0 = disabled), the request
  /// runs with its top-count K stepped down (halved, minimum 1 — the
  /// DeriveOptions tight-budget rule) so the backlog drains faster.
  /// Degradation kicks in before shedding: it needs a lower watermark
  /// than max_queue_depth to be useful.
  size_t degrade_queue_depth = 0;
  /// Profile durability (WAL + snapshots). Leave `storage.dir` empty for
  /// a purely in-memory store; set it (via OpenDurable) to recover
  /// profiles across restarts.
  storage::StorageOptions storage;
  /// External metrics registry. When null (default) the service creates
  /// and owns one; either way every layer underneath — cache, profile
  /// store, WAL — publishes into the same registry, exposed via
  /// metrics() / DumpMetrics(). Not owned; must outlive the service.
  obs::MetricsRegistry* metrics = nullptr;
  /// Set by the sharded front end: this service is shard `shard_id` of a
  /// ShardedPersonalizationService. >= 0 stamps a "shard" span (with the
  /// id) on every request trace and labels this shard's qp_service_*
  /// instruments with {shard="<id>"}; -1 (default) = standalone service.
  int shard_id = -1;
  /// Trace sampling: head rate + tail-keep rules (see
  /// obs::SamplingPolicy). The default traces every request, matching
  /// the single-node plane; clusters dial head_rate down and rely on the
  /// tail rules to keep the interesting traces.
  obs::SamplingPolicy sampling;
  /// Rolling-window availability/latency objectives; evaluated into
  /// qp_slo_* gauges at DumpMetrics time and via SloStatus().
  obs::SloOptions slo;
};

/// One unit of batch work: personalize (and optionally execute) `query`
/// for `user_id` under `options`.
struct PersonalizationRequest {
  std::string user_id;
  SelectQuery query;
  PersonalizationOptions options;
  /// When false, stop after rewriting (outcome only, no result set) —
  /// the mode a system pushing personalized SQL to an external DBMS uses.
  bool execute = true;
  /// Per-request latency budget in milliseconds; <= 0 means none. The
  /// clock starts at submission, so the budget covers queue wait. A
  /// request whose budget expires before a worker picks it up resolves to
  /// Status::DeadlineExceeded without running; one that expires mid-run
  /// stops cooperatively and returns what it has (disposition kDegraded).
  double deadline_ms = 0.0;
  /// Optional query context. When set, the effective options are
  /// DeriveOptions(*context, options), and — unless deadline_ms is set —
  /// the context's max_latency_ms doubles as the request budget.
  std::optional<QueryContext> context;
  /// Distributed-trace propagation: set by the router so the shard's
  /// trace fragment shares the router's trace_id and hangs under its
  /// router span. Invalid (default) = this service is the trace edge and
  /// makes its own head-sampling decision.
  obs::TraceContext trace_context;
};

/// How the service resolved a request, for overload accounting: every
/// response is exactly one of these.
enum class RequestDisposition {
  /// Ran to completion with the requested parameters.
  kFull,
  /// Ran, but reduced: K stepped down under queue pressure, selection cut
  /// to a top-K prefix by the deadline, and/or execution truncated. The
  /// response is still a valid (partial) answer with Status::Ok.
  kDegraded,
  /// Rejected at admission (queue/inflight bound); Status::Unavailable,
  /// nothing ran.
  kShed,
  /// Budget expired before a worker started it; Status::DeadlineExceeded,
  /// nothing ran.
  kDeadlineExceeded,
};

/// "full" | "degraded" | "shed" | "deadline_exceeded".
const char* ToString(RequestDisposition disposition);

/// What a request resolves to. `status` gates the rest; on success
/// `outcome` always holds the rewrite and `results` the rows when the
/// request asked for execution.
struct PersonalizationResponse {
  Status status = Status::Ok();
  RequestDisposition disposition = RequestDisposition::kFull;
  bool cache_hit = false;
  PersonalizationOutcome outcome;
  ResultSet results;
  double execution_millis = 0.0;
};

/// Aggregate service counters, mirroring SelectionStats/ExecutorStats one
/// level up: phase latencies are summed across requests, queue depth is
/// sampled at submit time. Snapshot via PersonalizationService::stats().
///
/// This struct is a *view*: the live values are registry instruments
/// (qp_service_*), and stats() materializes them. The accounting
/// identity `requests == full + degraded + shed + deadline_exceeded +
/// errors` holds exactly at quiescence; a concurrent reader may observe
/// the disposition sum *behind* requests (requests are counted at
/// admission, dispositions at resolution) but never ahead of it —
/// stats() reads dispositions first, and the counters' seq_cst ordering
/// guarantees a disposition increment is never visible without the
/// requests increment that preceded it.
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Requests that bypassed the cache (semantic filter attached, or the
  /// cache is disabled).
  uint64_t cache_bypasses = 0;
  /// Overload accounting (see RequestDisposition): requests rejected at
  /// admission, expired before starting, and completed degraded. Requests
  /// that completed full are requests - errors - shed - deadline_exceeded
  /// - degraded.
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded = 0;
  /// Requests that completed with Status::Ok and no reduction.
  uint64_t full = 0;
  size_t max_queue_depth = 0;
  double selection_millis = 0.0;
  double integration_millis = 0.0;
  double execution_millis = 0.0;
  SelectionCacheStats cache;
  /// Durability counters: WAL records/bytes/fsyncs, checkpoints and the
  /// recovery cost of the Open that produced this service. All zero for
  /// an in-memory service.
  storage::StorageStats storage;
  /// Hot/cold residency counters; enabled only for a tiered backend.
  storage::TierStats tier;
};

/// The scale-out front door: a thread-pool-backed personalization service
/// over a shared read-only Database and a sharded ProfileStore, with a
/// per-user top-K selection cache. Independent (user, query) pairs of a
/// batch fan out across workers; per-request results are identical to a
/// serial Personalizer run (the executor canonicalizes row order, the
/// selector is deterministic, and profile snapshots are immutable).
class PersonalizationService {
 public:
  /// `db` is retained and must outlive the service; its indexes are
  /// warmed eagerly so concurrent execution never mutates shared state.
  /// The profile store is in-memory; `options.storage` is ignored here
  /// (a constructor cannot surface recovery failures) — use OpenDurable
  /// for a durable service.
  PersonalizationService(const Database* db, ServiceOptions options = {});

  /// Builds a service whose profile store is durable: opens (or
  /// initializes) `options.storage.dir`, recovering every profile that
  /// was stored there — snapshot load + WAL replay. Fails with the
  /// recovery error on corruption rather than serving partial state.
  static Result<std::unique_ptr<PersonalizationService>> OpenDurable(
      const Database* db, ServiceOptions options);

  /// Service over a caller-built storage backend — the constructor the
  /// sharded front end uses to hand each shard its own (tiered, durable)
  /// store. `backend` must not be null.
  PersonalizationService(const Database* db, ServiceOptions options,
                         std::unique_ptr<storage::ProfileBackend> backend);

  /// Profile management (thread-safe, usable while batches are in
  /// flight; see ProfileStore for the snapshot semantics). Mutations on
  /// a durable service are write-ahead logged.
  storage::ProfileBackend& profiles() { return *store_; }
  const storage::ProfileBackend& profiles() const { return *store_; }

  /// Drops user_id's selection-cache entries (and only theirs) — the
  /// targeted invalidation a routed mutation issues. Epoch keying already
  /// prevents stale hits; this frees the capacity they occupied. Returns
  /// the number of entries dropped.
  size_t InvalidateUserSelections(const std::string& user_id) {
    return cache_.EraseUser(user_id);
  }

  /// Fans the requests across the worker pool; future i resolves to
  /// request i's response. Errors (unknown user, invalid query) surface
  /// per-response, never as exceptions.
  std::vector<std::future<PersonalizationResponse>> PersonalizeBatch(
      std::vector<PersonalizationRequest> requests);

  /// Convenience: PersonalizeBatch + wait. Response order = request
  /// order, independent of completion order.
  std::vector<PersonalizationResponse> PersonalizeBatchAndWait(
      std::vector<PersonalizationRequest> requests);

  /// The serial path every worker runs; public so callers can compare
  /// threaded results against an in-thread baseline.
  PersonalizationResponse PersonalizeOne(const PersonalizationRequest& request);

  size_t num_workers() const { return pool_.num_threads(); }
  ServiceStats stats() const;

  /// The live metrics registry every layer of this service publishes
  /// into (owned unless ServiceOptions::metrics supplied an external
  /// one). Stable for the service's lifetime.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Exports the full registry in the given format, first refreshing
  /// sampled gauges (queue depth, inflight, cache size, live WAL segment
  /// bytes, breaker state, SLO burn rates) so the dump is a coherent
  /// point-in-time view.
  std::string DumpMetrics(obs::ExportFormat format) const;

  /// The rolling-window SLO evaluation (availability + latency burn
  /// rates). Also published as qp_slo_* gauges by DumpMetrics.
  obs::SloSnapshot SloStatus() const { return slo_.Evaluate(); }

  const ServiceOptions& options() const { return options_; }

  /// Per-request pipeline tracing: while a sink is attached, every
  /// request carries an obs::RequestTrace through the pipeline — spans
  /// for profile lookup, cache lookup, selection, integration and
  /// execution (with per-disjunct children) — and delivers it to the
  /// sink on resolution. Shed and queue-expired requests deliver a
  /// minimal trace recording the disposition and the phase they stopped
  /// in. nullptr detaches. The sink must be thread-safe and outlive the
  /// service (or be detached first); toggling mid-flight is safe, but
  /// requests already past the check keep their previous decision.
  void set_trace_sink(obs::TraceSink* sink) {
    trace_sink_.store(sink, std::memory_order_release);
  }

 private:
  /// Reserves an admission slot (queued + inflight), or returns false
  /// when either bound is reached — the caller sheds the request. CAS
  /// bounded, so neither counter ever exceeds its configured bound.
  bool TryAdmit();

  /// The full pipeline under a cancel token. `degrade` steps the
  /// criterion's K down before running (queue-pressure response). This
  /// wrapper owns the per-request observability: the requests counter,
  /// the trace (created when a sink is attached, delivered on every
  /// path), the request-latency histogram and the disposition counter.
  PersonalizationResponse PersonalizeInternal(
      const PersonalizationRequest& request, const CancelToken* cancel,
      bool degrade);

  /// The pipeline itself: profile lookup, cache/selection, integration,
  /// execution. Pure with respect to accounting except for the cache
  /// hit/miss/bypass counters and per-phase latency histograms.
  PersonalizationResponse RunPipeline(const PersonalizationRequest& request,
                                      const CancelToken* cancel, bool degrade,
                                      obs::RequestTrace* trace);

  /// Builds and delivers the minimal trace for a request that never ran
  /// (shed at admission, expired in queue), honouring the sampling
  /// policy's tail-keep rules, and records the SLO miss. No-op without a
  /// sink. `context` (may be null) links the trace to the caller's.
  void TraceUnranRequest(const char* disposition, const char* phase,
                         const obs::TraceContext* context);

  /// The slow-trace threshold for the tail sampling rule: the policy's
  /// explicit slow_millis when set, else a cached rolling p99 of
  /// qp_service_request_seconds (refreshed every 1024 completions).
  double SlowTraceThresholdMillis() const;

  const Database* db_;
  ServiceOptions options_;
  /// Declaration order matters: the registry must be live before the
  /// store and cache below cache their instrument pointers into it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  std::unique_ptr<storage::ProfileBackend> store_;
  SelectionCache cache_;
  bool cache_enabled_;
  ThreadPool pool_;

  /// Admission state: requests waiting for a worker, and requests
  /// admitted but not yet completed (queued + executing).
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> inflight_{0};

  std::atomic<obs::TraceSink*> trace_sink_{nullptr};

  /// SLO objectives over the request stream (lock-free ring; see
  /// obs::SloTracker). Shed/expired requests count as unserved.
  obs::SloTracker slo_;
  /// Tail-sampling support: completions since start (drives the p99
  /// refresh cadence) and the cached p99 in millis.
  std::atomic<uint64_t> completed_{0};
  std::atomic<double> slow_p99_millis_{0.0};

  /// Hot-path registry instruments, resolved once at construction (the
  /// registry hands out stable pointers). Phase latencies live in
  /// histograms; ServiceStats' *_millis sums are the histogram sums.
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_bypasses = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* full = nullptr;
    /// The labeled mirror of the per-disposition counters: one
    /// qp_service_requests_by_disposition_total{disposition=...} series
    /// each (plus the shard label on a sharded deployment).
    obs::Counter* disp_full = nullptr;
    obs::Counter* disp_degraded = nullptr;
    obs::Counter* disp_shed = nullptr;
    obs::Counter* disp_deadline_exceeded = nullptr;
    obs::Counter* disp_error = nullptr;
    obs::Gauge* max_queue_depth = nullptr;
    obs::Histogram* request_seconds = nullptr;
    obs::Histogram* selection_seconds = nullptr;
    obs::Histogram* integration_seconds = nullptr;
    obs::Histogram* execution_seconds = nullptr;
  };
  Instruments inst_;
};

}  // namespace qp

#endif  // QP_SERVICE_SERVICE_H_
