#ifndef QP_SERVICE_SERVICE_H_
#define QP_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qp/core/context.h"
#include "qp/core/personalizer.h"
#include "qp/exec/executor.h"
#include "qp/relational/database.h"
#include "qp/service/profile_store.h"
#include "qp/service/selection_cache.h"
#include "qp/service/thread_pool.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/util/status.h"

namespace qp {

/// Tuning knobs of a PersonalizationService.
struct ServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  size_t num_workers = 0;
  /// Shards of the profile store.
  size_t num_shards = 16;
  /// Selection-cache capacity in entries; 0 disables the cache.
  size_t cache_capacity = 4096;
  /// Admission control: maximum requests waiting for a worker (0 =
  /// unbounded). A batch request arriving with the queue at the bound is
  /// shed immediately — its future resolves to Status::Unavailable with
  /// disposition kShed — instead of growing the queue. The bound is
  /// enforced with compare-and-swap, so the queue never exceeds it even
  /// under concurrent submission.
  size_t max_queue_depth = 0;
  /// Maximum admitted requests (queued + executing) at once (0 =
  /// unbounded). Excess requests are shed like max_queue_depth.
  size_t max_inflight = 0;
  /// Graceful degradation: when a worker picks up a request and the
  /// queue behind it is at least this deep (0 = disabled), the request
  /// runs with its top-count K stepped down (halved, minimum 1 — the
  /// DeriveOptions tight-budget rule) so the backlog drains faster.
  /// Degradation kicks in before shedding: it needs a lower watermark
  /// than max_queue_depth to be useful.
  size_t degrade_queue_depth = 0;
  /// Profile durability (WAL + snapshots). Leave `storage.dir` empty for
  /// a purely in-memory store; set it (via OpenDurable) to recover
  /// profiles across restarts.
  storage::StorageOptions storage;
};

/// One unit of batch work: personalize (and optionally execute) `query`
/// for `user_id` under `options`.
struct PersonalizationRequest {
  std::string user_id;
  SelectQuery query;
  PersonalizationOptions options;
  /// When false, stop after rewriting (outcome only, no result set) —
  /// the mode a system pushing personalized SQL to an external DBMS uses.
  bool execute = true;
  /// Per-request latency budget in milliseconds; <= 0 means none. The
  /// clock starts at submission, so the budget covers queue wait. A
  /// request whose budget expires before a worker picks it up resolves to
  /// Status::DeadlineExceeded without running; one that expires mid-run
  /// stops cooperatively and returns what it has (disposition kDegraded).
  double deadline_ms = 0.0;
  /// Optional query context. When set, the effective options are
  /// DeriveOptions(*context, options), and — unless deadline_ms is set —
  /// the context's max_latency_ms doubles as the request budget.
  std::optional<QueryContext> context;
};

/// How the service resolved a request, for overload accounting: every
/// response is exactly one of these.
enum class RequestDisposition {
  /// Ran to completion with the requested parameters.
  kFull,
  /// Ran, but reduced: K stepped down under queue pressure, selection cut
  /// to a top-K prefix by the deadline, and/or execution truncated. The
  /// response is still a valid (partial) answer with Status::Ok.
  kDegraded,
  /// Rejected at admission (queue/inflight bound); Status::Unavailable,
  /// nothing ran.
  kShed,
  /// Budget expired before a worker started it; Status::DeadlineExceeded,
  /// nothing ran.
  kDeadlineExceeded,
};

/// "full" | "degraded" | "shed" | "deadline_exceeded".
const char* ToString(RequestDisposition disposition);

/// What a request resolves to. `status` gates the rest; on success
/// `outcome` always holds the rewrite and `results` the rows when the
/// request asked for execution.
struct PersonalizationResponse {
  Status status = Status::Ok();
  RequestDisposition disposition = RequestDisposition::kFull;
  bool cache_hit = false;
  PersonalizationOutcome outcome;
  ResultSet results;
  double execution_millis = 0.0;
};

/// Aggregate service counters, mirroring SelectionStats/ExecutorStats one
/// level up: phase latencies are summed across requests, queue depth is
/// sampled at submit time. Snapshot via PersonalizationService::stats().
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Requests that bypassed the cache (semantic filter attached, or the
  /// cache is disabled).
  uint64_t cache_bypasses = 0;
  /// Overload accounting (see RequestDisposition): requests rejected at
  /// admission, expired before starting, and completed degraded. Requests
  /// that completed full are requests - errors - shed - deadline_exceeded
  /// - degraded.
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded = 0;
  size_t max_queue_depth = 0;
  double selection_millis = 0.0;
  double integration_millis = 0.0;
  double execution_millis = 0.0;
  SelectionCacheStats cache;
  /// Durability counters: WAL records/bytes/fsyncs, checkpoints and the
  /// recovery cost of the Open that produced this service. All zero for
  /// an in-memory service.
  storage::StorageStats storage;
};

/// The scale-out front door: a thread-pool-backed personalization service
/// over a shared read-only Database and a sharded ProfileStore, with a
/// per-user top-K selection cache. Independent (user, query) pairs of a
/// batch fan out across workers; per-request results are identical to a
/// serial Personalizer run (the executor canonicalizes row order, the
/// selector is deterministic, and profile snapshots are immutable).
class PersonalizationService {
 public:
  /// `db` is retained and must outlive the service; its indexes are
  /// warmed eagerly so concurrent execution never mutates shared state.
  /// The profile store is in-memory; `options.storage` is ignored here
  /// (a constructor cannot surface recovery failures) — use OpenDurable
  /// for a durable service.
  PersonalizationService(const Database* db, ServiceOptions options = {});

  /// Builds a service whose profile store is durable: opens (or
  /// initializes) `options.storage.dir`, recovering every profile that
  /// was stored there — snapshot load + WAL replay. Fails with the
  /// recovery error on corruption rather than serving partial state.
  static Result<std::unique_ptr<PersonalizationService>> OpenDurable(
      const Database* db, ServiceOptions options);

  /// Profile management (thread-safe, usable while batches are in
  /// flight; see ProfileStore for the snapshot semantics). Mutations on
  /// a durable service are write-ahead logged.
  storage::DurableProfileStore& profiles() { return *store_; }
  const storage::DurableProfileStore& profiles() const { return *store_; }

  /// Fans the requests across the worker pool; future i resolves to
  /// request i's response. Errors (unknown user, invalid query) surface
  /// per-response, never as exceptions.
  std::vector<std::future<PersonalizationResponse>> PersonalizeBatch(
      std::vector<PersonalizationRequest> requests);

  /// Convenience: PersonalizeBatch + wait. Response order = request
  /// order, independent of completion order.
  std::vector<PersonalizationResponse> PersonalizeBatchAndWait(
      std::vector<PersonalizationRequest> requests);

  /// The serial path every worker runs; public so callers can compare
  /// threaded results against an in-thread baseline.
  PersonalizationResponse PersonalizeOne(const PersonalizationRequest& request);

  size_t num_workers() const { return pool_.num_threads(); }
  ServiceStats stats() const;

 private:
  PersonalizationService(const Database* db, ServiceOptions options,
                         std::unique_ptr<storage::DurableProfileStore> store);

  /// Reserves an admission slot (queued + inflight), or returns false
  /// when either bound is reached — the caller sheds the request. CAS
  /// bounded, so neither counter ever exceeds its configured bound.
  bool TryAdmit();

  /// The full pipeline under a cancel token. `degrade` steps the
  /// criterion's K down before running (queue-pressure response).
  PersonalizationResponse PersonalizeInternal(
      const PersonalizationRequest& request, const CancelToken* cancel,
      bool degrade);

  const Database* db_;
  ServiceOptions options_;
  std::unique_ptr<storage::DurableProfileStore> store_;
  SelectionCache cache_;
  bool cache_enabled_;
  ThreadPool pool_;

  /// Admission state: requests waiting for a worker, and requests
  /// admitted but not yet completed (queued + executing).
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> inflight_{0};

  /// Hot counters; folded into ServiceStats snapshots. Durations are
  /// accumulated in nanoseconds to keep the counters integral.
  struct AtomicStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> cache_bypasses{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> deadline_exceeded{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<size_t> max_queue_depth{0};
    std::atomic<uint64_t> selection_nanos{0};
    std::atomic<uint64_t> integration_nanos{0};
    std::atomic<uint64_t> execution_nanos{0};
  };
  mutable AtomicStats counters_;
};

}  // namespace qp

#endif  // QP_SERVICE_SERVICE_H_
