#ifndef QP_SERVICE_SERVICE_H_
#define QP_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "qp/core/personalizer.h"
#include "qp/exec/executor.h"
#include "qp/relational/database.h"
#include "qp/service/profile_store.h"
#include "qp/service/selection_cache.h"
#include "qp/service/thread_pool.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/util/status.h"

namespace qp {

/// Tuning knobs of a PersonalizationService.
struct ServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  size_t num_workers = 0;
  /// Shards of the profile store.
  size_t num_shards = 16;
  /// Selection-cache capacity in entries; 0 disables the cache.
  size_t cache_capacity = 4096;
  /// Profile durability (WAL + snapshots). Leave `storage.dir` empty for
  /// a purely in-memory store; set it (via OpenDurable) to recover
  /// profiles across restarts.
  storage::StorageOptions storage;
};

/// One unit of batch work: personalize (and optionally execute) `query`
/// for `user_id` under `options`.
struct PersonalizationRequest {
  std::string user_id;
  SelectQuery query;
  PersonalizationOptions options;
  /// When false, stop after rewriting (outcome only, no result set) —
  /// the mode a system pushing personalized SQL to an external DBMS uses.
  bool execute = true;
};

/// What a request resolves to. `status` gates the rest; on success
/// `outcome` always holds the rewrite and `results` the rows when the
/// request asked for execution.
struct PersonalizationResponse {
  Status status = Status::Ok();
  bool cache_hit = false;
  PersonalizationOutcome outcome;
  ResultSet results;
  double execution_millis = 0.0;
};

/// Aggregate service counters, mirroring SelectionStats/ExecutorStats one
/// level up: phase latencies are summed across requests, queue depth is
/// sampled at submit time. Snapshot via PersonalizationService::stats().
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Requests that bypassed the cache (semantic filter attached, or the
  /// cache is disabled).
  uint64_t cache_bypasses = 0;
  size_t max_queue_depth = 0;
  double selection_millis = 0.0;
  double integration_millis = 0.0;
  double execution_millis = 0.0;
  SelectionCacheStats cache;
  /// Durability counters: WAL records/bytes/fsyncs, checkpoints and the
  /// recovery cost of the Open that produced this service. All zero for
  /// an in-memory service.
  storage::StorageStats storage;
};

/// The scale-out front door: a thread-pool-backed personalization service
/// over a shared read-only Database and a sharded ProfileStore, with a
/// per-user top-K selection cache. Independent (user, query) pairs of a
/// batch fan out across workers; per-request results are identical to a
/// serial Personalizer run (the executor canonicalizes row order, the
/// selector is deterministic, and profile snapshots are immutable).
class PersonalizationService {
 public:
  /// `db` is retained and must outlive the service; its indexes are
  /// warmed eagerly so concurrent execution never mutates shared state.
  /// The profile store is in-memory; `options.storage` is ignored here
  /// (a constructor cannot surface recovery failures) — use OpenDurable
  /// for a durable service.
  PersonalizationService(const Database* db, ServiceOptions options = {});

  /// Builds a service whose profile store is durable: opens (or
  /// initializes) `options.storage.dir`, recovering every profile that
  /// was stored there — snapshot load + WAL replay. Fails with the
  /// recovery error on corruption rather than serving partial state.
  static Result<std::unique_ptr<PersonalizationService>> OpenDurable(
      const Database* db, ServiceOptions options);

  /// Profile management (thread-safe, usable while batches are in
  /// flight; see ProfileStore for the snapshot semantics). Mutations on
  /// a durable service are write-ahead logged.
  storage::DurableProfileStore& profiles() { return *store_; }
  const storage::DurableProfileStore& profiles() const { return *store_; }

  /// Fans the requests across the worker pool; future i resolves to
  /// request i's response. Errors (unknown user, invalid query) surface
  /// per-response, never as exceptions.
  std::vector<std::future<PersonalizationResponse>> PersonalizeBatch(
      std::vector<PersonalizationRequest> requests);

  /// Convenience: PersonalizeBatch + wait. Response order = request
  /// order, independent of completion order.
  std::vector<PersonalizationResponse> PersonalizeBatchAndWait(
      std::vector<PersonalizationRequest> requests);

  /// The serial path every worker runs; public so callers can compare
  /// threaded results against an in-thread baseline.
  PersonalizationResponse PersonalizeOne(const PersonalizationRequest& request);

  size_t num_workers() const { return pool_.num_threads(); }
  ServiceStats stats() const;

 private:
  PersonalizationService(const Database* db, ServiceOptions options,
                         std::unique_ptr<storage::DurableProfileStore> store);

  const Database* db_;
  std::unique_ptr<storage::DurableProfileStore> store_;
  SelectionCache cache_;
  bool cache_enabled_;
  ThreadPool pool_;

  /// Hot counters; folded into ServiceStats snapshots. Durations are
  /// accumulated in nanoseconds to keep the counters integral.
  struct AtomicStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> cache_bypasses{0};
    std::atomic<size_t> max_queue_depth{0};
    std::atomic<uint64_t> selection_nanos{0};
    std::atomic<uint64_t> integration_nanos{0};
    std::atomic<uint64_t> execution_nanos{0};
  };
  mutable AtomicStats counters_;
};

}  // namespace qp

#endif  // QP_SERVICE_SERVICE_H_
