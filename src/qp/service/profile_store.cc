#include "qp/service/profile_store.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

namespace qp {

ProfileStore::ProfileStore(const Schema* schema, size_t num_shards,
                           obs::MetricsRegistry* metrics)
    : schema_(schema) {
  if (metrics != nullptr) {
    metric_gets_ = metrics->counter("qp_profile_store_gets_total");
    metric_get_misses_ =
        metrics->counter("qp_profile_store_get_misses_total");
    metric_mutations_ = metrics->counter("qp_profile_store_mutations_total");
  }
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ProfileStore::Shard& ProfileStore::ShardFor(const std::string& user_id) const {
  size_t h = std::hash<std::string>{}(user_id);
  return *shards_[h % shards_.size()];
}

Status ProfileStore::Put(const std::string& user_id, UserProfile profile) {
  // Build (and validate) outside any lock: graph construction is the
  // expensive part of an update and must not block readers.
  QP_ASSIGN_OR_RETURN(PersonalizationGraph graph,
                      PersonalizationGraph::Build(schema_, profile));
  auto new_profile =
      std::make_shared<const UserProfile>(std::move(profile));
  auto new_graph =
      std::make_shared<const PersonalizationGraph>(std::move(graph));

  Shard& shard = ShardFor(user_id);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    Entry& entry = shard.users[user_id];
    entry.profile = std::move(new_profile);
    entry.graph = std::move(new_graph);
    entry.epoch = ++shard.next_epoch;
  }
  if (metric_mutations_ != nullptr) metric_mutations_->Add(1);
  return Status::Ok();
}

Status ProfileStore::Upsert(
    const std::string& user_id,
    const std::vector<AtomicPreference>& preferences) {
  Shard& shard = ShardFor(user_id);
  while (true) {
    // Snapshot the base profile and its epoch. 0 means "user absent":
    // real epochs start at 1 (++next_epoch), and Remove burns an epoch,
    // so absence is distinguishable from every present state.
    uint64_t base_epoch = 0;
    UserProfile updated;
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      auto it = shard.users.find(user_id);
      if (it != shard.users.end()) {
        updated = *it->second.profile;
        base_epoch = it->second.epoch;
      }
    }
    for (const AtomicPreference& pref : preferences) {
      updated.AddOrUpdate(pref);
    }
    // Build (and validate) outside the lock, like Put.
    QP_ASSIGN_OR_RETURN(PersonalizationGraph graph,
                        PersonalizationGraph::Build(schema_, updated));
    auto new_profile =
        std::make_shared<const UserProfile>(std::move(updated));
    auto new_graph =
        std::make_shared<const PersonalizationGraph>(std::move(graph));
    {
      std::unique_lock<std::shared_mutex> lock(shard.mutex);
      auto it = shard.users.find(user_id);
      uint64_t current_epoch =
          it == shard.users.end() ? 0 : it->second.epoch;
      if (current_epoch != base_epoch) {
        // Another writer swapped this user between our read and now;
        // blindly installing would silently drop their preferences.
        // Re-merge onto the new base (writers make progress: each
        // failed validation means someone else committed).
        continue;
      }
      Entry& entry = shard.users[user_id];
      entry.profile = std::move(new_profile);
      entry.graph = std::move(new_graph);
      entry.epoch = ++shard.next_epoch;
      if (metric_mutations_ != nullptr) metric_mutations_->Add(1);
      return Status::Ok();
    }
  }
}

Result<ProfileSnapshot> ProfileStore::Get(const std::string& user_id) const {
  if (metric_gets_ != nullptr) metric_gets_->Add(1);
  const Shard& shard = ShardFor(user_id);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.users.find(user_id);
  if (it == shard.users.end()) {
    if (metric_get_misses_ != nullptr) metric_get_misses_->Add(1);
    return Status::NotFound("unknown user: " + user_id);
  }
  return ProfileSnapshot{it->second.profile, it->second.graph,
                         it->second.epoch};
}

Status ProfileStore::Remove(const std::string& user_id) {
  Shard& shard = ShardFor(user_id);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (shard.users.erase(user_id) == 0) {
    return Status::NotFound("unknown user: " + user_id);
  }
  // Burn an epoch so a later re-insert of the same user can never revisit
  // an epoch a cache entry might still be keyed on.
  ++shard.next_epoch;
  if (metric_mutations_ != nullptr) metric_mutations_->Add(1);
  return Status::Ok();
}

void ProfileStore::InstallUnvalidatedForTest(const std::string& user_id,
                                             UserProfile profile) {
  auto new_profile = std::make_shared<const UserProfile>(std::move(profile));
  Shard& shard = ShardFor(user_id);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  Entry& entry = shard.users[user_id];
  entry.profile = std::move(new_profile);
  if (entry.graph == nullptr) {
    // A brand-new corrupt entry still needs *a* graph so readers do not
    // dereference null; an empty one matches "graph out of sync with
    // profile", which is exactly what the scrubber must detect.
    auto empty = PersonalizationGraph::Build(schema_, UserProfile());
    if (empty.ok()) {
      entry.graph = std::make_shared<const PersonalizationGraph>(
          std::move(empty).value());
    }
  }
  entry.epoch = ++shard.next_epoch;
}

std::vector<std::pair<std::string, ProfileSnapshot>> ProfileStore::All()
    const {
  std::vector<std::pair<std::string, ProfileSnapshot>> out;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [user_id, entry] : shard->users) {
      out.emplace_back(user_id, ProfileSnapshot{entry.profile, entry.graph,
                                                entry.epoch});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::string> ProfileStore::Users() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [user_id, entry] : shard->users) {
      out.push_back(user_id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t ProfileStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->users.size();
  }
  return total;
}

}  // namespace qp
