#include "qp/service/thread_pool.h"

#include "qp/util/fault_hub.h"

namespace qp {
namespace {

/// Identifies the pool (and worker slot) the current thread belongs to,
/// so Submit from inside a task lands on the submitter's own deque.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity current_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(DrainMode::kDrain); }

void ThreadPool::Shutdown(DrainMode mode) {
  // First caller wins; everyone else (including the destructor after an
  // explicit Shutdown) just waits for the join to have happened.
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    while (!joined_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  if (mode == DrainMode::kDiscard) {
    // Submit re-checks stopping_ under the queue mutex, so after this
    // sweep no task can sit in a deque: late submitters see stopping_
    // and bail, earlier ones are cleared here.
    for (auto& queue : queues_) {
      std::lock_guard<std::mutex> lock(queue->mutex);
      pending_.fetch_sub(queue->tasks.size(), std::memory_order_acq_rel);
      queue->tasks.clear();
    }
  }
  {
    // Pair with the workers' wait so no notify is lost between their
    // predicate check and sleep.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  joined_.store(true, std::memory_order_release);
}

bool ThreadPool::Submit(std::function<void()> task) {
  // Chaos site: a refused submission. Callers already handle `false`
  // (the service sheds the request), so an injected refusal exercises
  // exactly the shutdown-race path.
  if (!QP_FAULT_POINT("pool.submit").ok()) return false;
  size_t target;
  if (current_worker.pool == this) {
    target = current_worker.index;
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  // Count before publishing the task: a worker that pops it decrements
  // strictly after this increment, so pending_ never underflows.
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    // Checked under the queue mutex: Shutdown sets stopping_ before it
    // sweeps the deques (kDiscard), so either this push is swept or this
    // check sees stopping_ — a task can never be left behind unrun.
    if (stopping_.load(std::memory_order_acquire)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
  return true;
}

size_t ThreadPool::ApproxQueueDepth() const {
  return pending_.load(std::memory_order_acquire);
}

bool ThreadPool::TryTake(size_t self, std::function<void()>* task) {
  {
    // Own deque: LIFO.
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal: FIFO from the next non-empty victim.
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  current_worker = {this, self};
  std::function<void()> task;
  for (;;) {
    if (TryTake(self, &task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace qp
