#ifndef QP_SERVICE_PROFILE_STORE_H_
#define QP_SERVICE_PROFILE_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qp/graph/personalization_graph.h"
#include "qp/obs/metrics.h"
#include "qp/pref/profile.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

/// What a reader gets: an immutable view of one user's personalization
/// state. The shared_ptrs keep the snapshot alive after the store moves
/// on, so an in-flight selection never observes a half-updated profile —
/// updates build a fresh profile + graph and atomically swap the entry
/// (copy-on-write).
struct ProfileSnapshot {
  std::shared_ptr<const UserProfile> profile;
  std::shared_ptr<const PersonalizationGraph> graph;
  /// Bumped on every mutation of this user's profile. Cache keys embed it,
  /// so a profile change silently invalidates every cached selection of
  /// that user (stale entries age out of the LRU).
  uint64_t epoch = 0;
};

/// A sharded, reader-writer-locked map user-id -> personalization graph.
/// Reads (the per-query hot path) take one shard's shared lock just long
/// enough to copy two shared_ptrs; writes build the new graph *outside*
/// the lock and swap under the exclusive lock, so heavy profile updates
/// never stall readers of other users — and stall readers of the same
/// user only for the pointer swap.
class ProfileStore {
 public:
  /// `schema` is retained and must outlive the store (graphs reference
  /// it). `num_shards` is clamped to >= 1. `metrics`, when given, counts
  /// gets (hit/miss split) and mutations as qp_profile_store_* counters
  /// (not owned; must outlive the store).
  explicit ProfileStore(const Schema* schema, size_t num_shards = 16,
                        obs::MetricsRegistry* metrics = nullptr);

  /// Inserts or replaces `user_id`'s profile: validates it, builds the
  /// personalization graph, swaps the entry and bumps the user's epoch.
  Status Put(const std::string& user_id, UserProfile profile);

  /// Read-modify-write: copies the current profile (empty if the user is
  /// new), applies AddOrUpdate for each preference, and Puts the result.
  /// Concurrent Upserts of the same user serialize on the swap; last
  /// writer wins at the granularity of whole profiles.
  Status Upsert(const std::string& user_id,
                const std::vector<AtomicPreference>& preferences);

  /// The user's current snapshot; NotFound for unknown users.
  Result<ProfileSnapshot> Get(const std::string& user_id) const;

  /// Removes the user (snapshots already taken stay valid); NotFound if
  /// the user does not exist. Like every other mutator this returns a
  /// Status — callers that only care whether anything happened can test
  /// `Remove(id).ok()`.
  Status Remove(const std::string& user_id);

  /// Every user's current snapshot, sorted by user id (deterministic —
  /// the storage layer serializes this into snapshot files). Each shard
  /// is read under its shared lock; the result is a point-in-time view
  /// per shard, not a global atomic cut.
  std::vector<std::pair<std::string, ProfileSnapshot>> All() const;

  /// Every user's id, sorted — the body-free companion of All() for
  /// callers (migration, tiering) that only need to enumerate ownership.
  std::vector<std::string> Users() const;

  size_t size() const;
  const Schema& schema() const { return *schema_; }

  /// Chaos/test backdoor: installs `profile` for `user_id` *without*
  /// validation and without rebuilding the personalization graph (the
  /// previous graph, if any, is kept) — the in-memory signature of a
  /// corrupted entry. The epoch still bumps, so caches notice. Only the
  /// integrity scrubber's tests and the chaos harness should call this.
  void InstallUnvalidatedForTest(const std::string& user_id,
                                 UserProfile profile);

 private:
  struct Entry {
    std::shared_ptr<const UserProfile> profile;
    std::shared_ptr<const PersonalizationGraph> graph;
    uint64_t epoch = 0;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, Entry> users;
    /// Epochs are drawn from a shard-wide monotone counter (not per
    /// entry): a user removed and later re-inserted must not revisit an
    /// old epoch, or cache entries from the deleted profile would be
    /// served for the new one.
    uint64_t next_epoch = 0;
  };

  Shard& ShardFor(const std::string& user_id) const;

  const Schema* schema_;
  obs::Counter* metric_gets_ = nullptr;
  obs::Counter* metric_get_misses_ = nullptr;
  obs::Counter* metric_mutations_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qp

#endif  // QP_SERVICE_PROFILE_STORE_H_
