#ifndef QP_QUERY_SQL_PARSER_H_
#define QP_QUERY_SQL_PARSER_H_

#include <string_view>
#include <variant>

#include "qp/query/query.h"
#include "qp/util/status.h"

namespace qp {

/// A parsed SQL statement: either a plain SPJ select or a compound
/// (UNION ALL / GROUP BY / HAVING) query.
struct ParsedStatement {
  std::variant<SelectQuery, CompoundQuery> statement;

  bool is_select() const {
    return std::holds_alternative<SelectQuery>(statement);
  }
  bool is_compound() const {
    return std::holds_alternative<CompoundQuery>(statement);
  }
  const SelectQuery& select() const {
    return std::get<SelectQuery>(statement);
  }
  const CompoundQuery& compound() const {
    return std::get<CompoundQuery>(statement);
  }
};

/// Parses the SQL subset this library emits (see sql_writer.h):
///   select [distinct] v.c, ... from TABLE alias, ... [where <bool-expr>]
/// where <bool-expr> is and/or combinations (with parentheses) of equality
/// selections and joins; and the compound form
///   select cols from ((select...) union all (select...)) ALIAS
///   group by cols [having count(*) >= N | degree_of_conjunction(doi) > d]
///   [order by degree_of_conjunction(doi) desc]
/// Keywords are case-insensitive. No schema checks are performed here; run
/// SelectQuery::Validate / CompoundQuery::Validate afterwards if desired.
Result<ParsedStatement> ParseStatement(std::string_view sql);

/// Convenience wrapper that requires a plain select.
Result<SelectQuery> ParseSelectQuery(std::string_view sql);

}  // namespace qp

#endif  // QP_QUERY_SQL_PARSER_H_
