#include "qp/query/query.h"

namespace qp {

Status SelectQuery::AddVariable(std::string alias, std::string table) {
  if (HasVariable(alias)) {
    return Status::AlreadyExists("duplicate tuple variable: " + alias);
  }
  from_.push_back({std::move(alias), std::move(table)});
  return Status::Ok();
}

void SelectQuery::AddProjection(std::string var, std::string column) {
  projections_.push_back({std::move(var), std::move(column)});
}

const TupleVariable* SelectQuery::FindVariable(
    const std::string& alias) const {
  for (const auto& v : from_) {
    if (v.alias == alias) return &v;
  }
  return nullptr;
}

std::string SelectQuery::FreshAlias(const std::string& prefix) const {
  if (!HasVariable(prefix)) return prefix;
  for (int i = 2;; ++i) {
    std::string candidate = prefix + std::to_string(i);
    if (!HasVariable(candidate)) return candidate;
  }
}

namespace {

/// Resolves `alias.column` against the query's FROM list and the schema.
Result<DataType> ResolveAttribute(const SelectQuery& query,
                                  const Schema& schema,
                                  const std::string& alias,
                                  const std::string& column) {
  const TupleVariable* var = query.FindVariable(alias);
  if (var == nullptr) {
    return Status::InvalidArgument("undeclared tuple variable: " + alias);
  }
  QP_ASSIGN_OR_RETURN(const TableSchema* table, schema.GetTable(var->table));
  auto idx = table->ColumnIndex(column);
  if (!idx.has_value()) {
    return Status::InvalidArgument("table " + var->table + " (variable " +
                                   alias + ") has no column " + column);
  }
  return table->column(*idx).type;
}

Status ValidateAtom(const SelectQuery& query, const Schema& schema,
                    const AtomicCondition& atom) {
  if (atom.is_selection()) {
    QP_ASSIGN_OR_RETURN(
        DataType type,
        ResolveAttribute(query, schema, atom.var(), atom.column()));
    if (!atom.value().is_null() && atom.value().type() != type) {
      return Status::InvalidArgument(
          "selection literal type mismatch in " + atom.ToSql() +
          ": column is " + DataTypeName(type));
    }
    return Status::Ok();
  }
  if (atom.is_near()) {
    QP_ASSIGN_OR_RETURN(
        DataType type,
        ResolveAttribute(query, schema, atom.var(), atom.column()));
    if (type != DataType::kInt64 && type != DataType::kDouble) {
      return Status::InvalidArgument(
          "near() requires a numeric column: " + atom.ToSql());
    }
    if (atom.value().type() != DataType::kInt64 &&
        atom.value().type() != DataType::kDouble) {
      return Status::InvalidArgument(
          "near() requires a numeric target: " + atom.ToSql());
    }
    if (!(atom.width() > 0.0)) {
      return Status::InvalidArgument("near() requires a positive width: " +
                                     atom.ToSql());
    }
    return Status::Ok();
  }
  QP_ASSIGN_OR_RETURN(
      DataType left,
      ResolveAttribute(query, schema, atom.left_var(), atom.left_column()));
  QP_ASSIGN_OR_RETURN(
      DataType right,
      ResolveAttribute(query, schema, atom.right_var(), atom.right_column()));
  if (left != right) {
    return Status::InvalidArgument("join type mismatch in " + atom.ToSql());
  }
  return Status::Ok();
}

}  // namespace

Status SelectQuery::Validate(const Schema& schema) const {
  if (from_.empty()) {
    return Status::InvalidArgument("query has no tuple variables");
  }
  for (const auto& var : from_) {
    if (!schema.HasTable(var.table)) {
      return Status::InvalidArgument("unknown table in FROM: " + var.table);
    }
  }
  if (projections_.empty()) {
    return Status::InvalidArgument("query projects nothing");
  }
  for (const auto& item : projections_) {
    QP_RETURN_IF_ERROR(
        ResolveAttribute(*this, schema, item.var, item.column).status());
  }
  if (where_ != nullptr) {
    std::vector<AtomicCondition> atoms;
    where_->CollectAtoms(&atoms);
    for (const auto& atom : atoms) {
      QP_RETURN_IF_ERROR(ValidateAtom(*this, schema, atom));
    }
  }
  return Status::Ok();
}

Status CompoundQuery::Validate(const Schema& schema) const {
  if (parts_.empty()) {
    return Status::InvalidArgument("compound query has no parts");
  }
  for (const auto& part : parts_) {
    QP_RETURN_IF_ERROR(part.query.Validate(schema));
    if (part.degree < -1.0 || part.degree > 1.0) {
      return Status::InvalidArgument("part degree out of [-1, 1]: " +
                                     std::to_string(part.degree));
    }
  }
  const auto& first = parts_[0].query.projections();
  for (size_t i = 1; i < parts_.size(); ++i) {
    const auto& other = parts_[i].query.projections();
    if (other.size() != first.size()) {
      return Status::InvalidArgument(
          "compound query parts have different projection arities");
    }
  }
  for (const SelectQuery& exclusion : exclusions_) {
    QP_RETURN_IF_ERROR(exclusion.Validate(schema));
    if (exclusion.projections().size() != first.size()) {
      return Status::InvalidArgument(
          "exclusion projection arity differs from the parts'");
    }
  }
  return Status::Ok();
}

}  // namespace qp
