#ifndef QP_QUERY_CONDITION_H_
#define QP_QUERY_CONDITION_H_

#include <memory>
#include <string>
#include <vector>

#include "qp/relational/value.h"

namespace qp {

/// Atomic query element: an equality selection `var.column = value`, an
/// equality join `lvar.lcolumn = rvar.rcolumn`, or a *soft* proximity
/// selection `near(var.column, target, width)` — satisfied to degree
/// max(0, 1 - |v - target| / width), the soft-constraint extension
/// ("price near $20") the paper lists as ongoing work. These are exactly
/// the constructs the preference model assigns degrees of interest to.
class AtomicCondition {
 public:
  enum class Kind { kSelection, kJoin, kNear };

  /// Default-constructs a vacuous selection; exists so AtomicCondition can
  /// be held by value in containers and nodes. Use the factories below.
  AtomicCondition() = default;

  static AtomicCondition Selection(std::string var, std::string column,
                                   Value value);
  static AtomicCondition Join(std::string left_var, std::string left_column,
                              std::string right_var,
                              std::string right_column);
  /// `target` must be numeric, `width` > 0. Rows at distance >= width do
  /// not match at all (satisfaction 0).
  static AtomicCondition Near(std::string var, std::string column,
                              Value target, double width);

  Kind kind() const { return kind_; }
  bool is_selection() const { return kind_ == Kind::kSelection; }
  bool is_join() const { return kind_ == Kind::kJoin; }
  bool is_near() const { return kind_ == Kind::kNear; }

  /// Selection / near accessors (require is_selection() || is_near()).
  const std::string& var() const { return left_var_; }
  const std::string& column() const { return left_column_; }
  const Value& value() const { return value_; }
  /// Proximity half-width (require is_near()).
  double width() const { return width_; }

  /// Satisfaction of a near condition by `v`: 1 at the target, linear
  /// decay, 0 from `width` away (and for non-numeric / NULL values).
  /// Requires is_near().
  double Satisfaction(const Value& v) const;

  /// Join accessors (require is_join()).
  const std::string& left_var() const { return left_var_; }
  const std::string& left_column() const { return left_column_; }
  const std::string& right_var() const { return right_var_; }
  const std::string& right_column() const { return right_column_; }

  /// Tuple-variable aliases referenced by this atom (1 or 2 entries).
  std::vector<std::string> ReferencedVars() const;

  /// SQL rendering, e.g. `MV.mid=GN.mid` or `GN.genre='comedy'`.
  std::string ToSql() const;

  friend bool operator==(const AtomicCondition& a, const AtomicCondition& b);

 private:
  Kind kind_ = Kind::kSelection;
  std::string left_var_;
  std::string left_column_;
  std::string right_var_;    // Joins only.
  std::string right_column_; // Joins only.
  Value value_;              // Selections and near conditions.
  double width_ = 0.0;       // Near conditions only.
};

inline bool operator!=(const AtomicCondition& a, const AtomicCondition& b) {
  return !(a == b);
}

class ConditionNode;
/// Condition trees are immutable and shared; copying a query is cheap.
using ConditionPtr = std::shared_ptr<const ConditionNode>;

/// A boolean combination of atomic conditions: a binary-free n-ary tree of
/// AND / OR nodes over atoms. A null ConditionPtr means "true" (no
/// qualification).
class ConditionNode {
 public:
  enum class Kind { kAtom, kAnd, kOr };

  /// Factories. MakeAnd / MakeOr flatten nested nodes of the same kind,
  /// drop null children, and collapse a single child to itself; an empty
  /// child list yields null ("true" for AND; callers must not pass an
  /// empty OR, which would be "false").
  static ConditionPtr MakeAtom(AtomicCondition atom);
  static ConditionPtr MakeAnd(std::vector<ConditionPtr> children);
  static ConditionPtr MakeOr(std::vector<ConditionPtr> children);

  /// Conjunction of two possibly-null conditions.
  static ConditionPtr Conjoin(ConditionPtr a, ConditionPtr b);

  Kind kind() const { return kind_; }
  const AtomicCondition& atom() const { return atom_; }
  const std::vector<ConditionPtr>& children() const { return children_; }

  /// Appends every atom in the subtree to `out` (pre-order).
  void CollectAtoms(std::vector<AtomicCondition>* out) const;

  /// SQL rendering with minimal parenthesization: OR children of an AND
  /// are parenthesized.
  std::string ToSql() const;

  /// Number of atoms in the subtree.
  size_t NumAtoms() const;

 private:
  ConditionNode() = default;

  Kind kind_ = Kind::kAtom;
  AtomicCondition atom_;
  std::vector<ConditionPtr> children_;
};

/// Structural equality of condition trees (same shape, same atoms).
bool ConditionEquals(const ConditionPtr& a, const ConditionPtr& b);

/// Converts a condition tree to disjunctive normal form: a list of
/// conjunctions of atoms whose disjunction is equivalent to `condition`.
/// A null condition yields a single empty conjunction ("true").
/// Exponential in the worst case; the personalization workload produces
/// at most C(K-M, L) disjuncts (the paper's SQ combination count).
std::vector<std::vector<AtomicCondition>> ToDnf(const ConditionPtr& condition);

}  // namespace qp

#endif  // QP_QUERY_CONDITION_H_
