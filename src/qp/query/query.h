#ifndef QP_QUERY_QUERY_H_
#define QP_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "qp/query/condition.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

/// A tuple variable: an alias ranging over a relation
/// (`from MOVIE MV` declares {alias="MV", table="MOVIE"}).
struct TupleVariable {
  std::string alias;
  std::string table;

  friend bool operator==(const TupleVariable& a, const TupleVariable& b) {
    return a.alias == b.alias && a.table == b.table;
  }
};

/// One projected attribute, `var.column`.
struct ProjectionItem {
  std::string var;
  std::string column;

  /// Column label in the result ("MV.title").
  std::string OutputName() const { return var + "." + column; }

  friend bool operator==(const ProjectionItem& a, const ProjectionItem& b) {
    return a.var == b.var && a.column == b.column;
  }
};

/// A conjunctive/disjunctive SPJ query: SELECT [DISTINCT] projections
/// FROM tuple variables WHERE condition-tree. This is the query class the
/// paper personalizes.
class SelectQuery {
 public:
  SelectQuery() = default;

  /// Declares `alias` ranging over `table`. Fails on duplicate alias.
  Status AddVariable(std::string alias, std::string table);

  /// Appends `var.column` to the projection list.
  void AddProjection(std::string var, std::string column);

  void set_where(ConditionPtr where) { where_ = std::move(where); }
  void set_distinct(bool distinct) { distinct_ = distinct; }

  const std::vector<TupleVariable>& from() const { return from_; }
  const std::vector<ProjectionItem>& projections() const {
    return projections_;
  }
  const ConditionPtr& where() const { return where_; }
  bool distinct() const { return distinct_; }

  /// The variable declared as `alias`, or nullptr.
  const TupleVariable* FindVariable(const std::string& alias) const;

  /// True if some declared alias equals `alias`.
  bool HasVariable(const std::string& alias) const {
    return FindVariable(alias) != nullptr;
  }

  /// Smallest unused alias with the given prefix ("GN", "GN2", "GN3"...).
  std::string FreshAlias(const std::string& prefix) const;

  /// Checks the query against `schema`: every variable ranges over an
  /// existing table, every projected / selected / joined attribute exists,
  /// every atom references declared variables, selection literal types
  /// match the column type, and joined columns have matching types.
  Status Validate(const Schema& schema) const;

 private:
  std::vector<TupleVariable> from_;
  std::vector<ProjectionItem> projections_;
  ConditionPtr where_;
  bool distinct_ = false;
};

/// HAVING predicate of a compound (MQ-style) query.
struct HavingClause {
  enum class Kind {
    kNone,
    /// count(*) >= min_count: "at least L preferences satisfied".
    kCountAtLeast,
    /// DEGREE_OF_CONJUNCTION(doi) > min_degree: minimum estimated degree
    /// of interest per result row.
    kDegreeAbove,
  };

  Kind kind = Kind::kNone;
  size_t min_count = 0;
  double min_degree = 0.0;

  static HavingClause None() { return {}; }
  static HavingClause CountAtLeast(size_t n) {
    return {Kind::kCountAtLeast, n, 0.0};
  }
  static HavingClause DegreeAbove(double d) {
    return {Kind::kDegreeAbove, 0, d};
  }
};

/// One branch of a compound query: a SELECT plus the degree of interest
/// of the preference it integrates (0 for branches with no preference).
/// A *negative* degree marks a penalty branch: rows it returns do not
/// count towards count(*) but have their combined degree multiplied by
/// (1 - |degree|) — how soft dislikes demote results.
struct CompoundPart {
  SelectQuery query;
  double degree = 0.0;
};

/// The paper's MQ form: UNION ALL of partial queries, grouped by the
/// projected attributes of the initial query, filtered by a HAVING clause
/// and optionally ordered by the estimated combined degree of interest
/// (the DEGREE_OF_CONJUNCTION aggregate). Extended with EXCEPT blocks
/// (veto-strength dislikes): rows returned by any exclusion query are
/// removed from the answer.
class CompoundQuery {
 public:
  CompoundQuery() = default;

  void AddPart(SelectQuery query, double degree) {
    parts_.push_back({std::move(query), degree});
  }

  /// Adds an EXCEPT block; its projection must match the parts'.
  void AddExclusion(SelectQuery query) {
    exclusions_.push_back(std::move(query));
  }

  void set_having(HavingClause having) { having_ = having; }
  void set_order_by_degree(bool v) { order_by_degree_ = v; }

  const std::vector<CompoundPart>& parts() const { return parts_; }
  const std::vector<SelectQuery>& exclusions() const { return exclusions_; }
  const HavingClause& having() const { return having_; }
  bool order_by_degree() const { return order_by_degree_; }

  /// True if degrees participate in the result (HAVING on degree or
  /// ORDER BY degree); the SQL writer then emits a doi column per part.
  bool UsesDegrees() const {
    return order_by_degree_ || having_.kind == HavingClause::Kind::kDegreeAbove;
  }

  /// All parts valid and projection lists structurally identical.
  Status Validate(const Schema& schema) const;

 private:
  std::vector<CompoundPart> parts_;
  std::vector<SelectQuery> exclusions_;
  HavingClause having_;
  bool order_by_degree_ = false;
};

}  // namespace qp

#endif  // QP_QUERY_QUERY_H_
