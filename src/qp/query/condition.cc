#include "qp/query/condition.h"

#include <cassert>

#include "qp/util/string_util.h"

namespace qp {

AtomicCondition AtomicCondition::Selection(std::string var, std::string column,
                                           Value value) {
  AtomicCondition c;
  c.kind_ = Kind::kSelection;
  c.left_var_ = std::move(var);
  c.left_column_ = std::move(column);
  c.value_ = std::move(value);
  return c;
}

AtomicCondition AtomicCondition::Join(std::string left_var,
                                      std::string left_column,
                                      std::string right_var,
                                      std::string right_column) {
  AtomicCondition c;
  c.kind_ = Kind::kJoin;
  c.left_var_ = std::move(left_var);
  c.left_column_ = std::move(left_column);
  c.right_var_ = std::move(right_var);
  c.right_column_ = std::move(right_column);
  return c;
}

AtomicCondition AtomicCondition::Near(std::string var, std::string column,
                                      Value target, double width) {
  assert(width > 0.0);
  AtomicCondition c;
  c.kind_ = Kind::kNear;
  c.left_var_ = std::move(var);
  c.left_column_ = std::move(column);
  c.value_ = std::move(target);
  c.width_ = width;
  return c;
}

double AtomicCondition::Satisfaction(const Value& v) const {
  assert(is_near());
  if (v.is_null() || v.type() == DataType::kString) return 0.0;
  double distance = v.AsNumeric() - value_.AsNumeric();
  if (distance < 0) distance = -distance;
  if (distance >= width_) return 0.0;
  return 1.0 - distance / width_;
}

std::vector<std::string> AtomicCondition::ReferencedVars() const {
  if (is_join()) return {left_var_, right_var_};
  return {left_var_};
}

std::string AtomicCondition::ToSql() const {
  switch (kind_) {
    case Kind::kSelection:
      return left_var_ + "." + left_column_ + "=" + value_.ToSqlLiteral();
    case Kind::kNear:
      return "near(" + left_var_ + "." + left_column_ + ", " +
             value_.ToSqlLiteral() + ", " + FormatDouble(width_) + ")";
    case Kind::kJoin:
      break;
  }
  return left_var_ + "." + left_column_ + "=" + right_var_ + "." +
         right_column_;
}

bool operator==(const AtomicCondition& a, const AtomicCondition& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.is_join()) {
    return a.left_var_ == b.left_var_ && a.left_column_ == b.left_column_ &&
           a.right_var_ == b.right_var_ &&
           a.right_column_ == b.right_column_;
  }
  return a.left_var_ == b.left_var_ && a.left_column_ == b.left_column_ &&
         a.value_ == b.value_ && a.width_ == b.width_;
}

ConditionPtr ConditionNode::MakeAtom(AtomicCondition atom) {
  auto node = std::shared_ptr<ConditionNode>(new ConditionNode());
  node->kind_ = Kind::kAtom;
  node->atom_ = std::move(atom);
  return node;
}

ConditionPtr ConditionNode::MakeAnd(std::vector<ConditionPtr> children) {
  std::vector<ConditionPtr> flat;
  for (auto& child : children) {
    if (child == nullptr) continue;  // "true" is the identity of AND.
    if (child->kind() == Kind::kAnd) {
      for (const auto& grandchild : child->children()) {
        flat.push_back(grandchild);
      }
    } else {
      flat.push_back(std::move(child));
    }
  }
  if (flat.empty()) return nullptr;
  if (flat.size() == 1) return flat[0];
  auto node = std::shared_ptr<ConditionNode>(new ConditionNode());
  node->kind_ = Kind::kAnd;
  node->children_ = std::move(flat);
  return node;
}

ConditionPtr ConditionNode::MakeOr(std::vector<ConditionPtr> children) {
  std::vector<ConditionPtr> flat;
  for (auto& child : children) {
    if (child == nullptr) continue;
    if (child->kind() == Kind::kOr) {
      for (const auto& grandchild : child->children()) {
        flat.push_back(grandchild);
      }
    } else {
      flat.push_back(std::move(child));
    }
  }
  if (flat.empty()) return nullptr;
  if (flat.size() == 1) return flat[0];
  auto node = std::shared_ptr<ConditionNode>(new ConditionNode());
  node->kind_ = Kind::kOr;
  node->children_ = std::move(flat);
  return node;
}

ConditionPtr ConditionNode::Conjoin(ConditionPtr a, ConditionPtr b) {
  return MakeAnd({std::move(a), std::move(b)});
}

void ConditionNode::CollectAtoms(std::vector<AtomicCondition>* out) const {
  if (kind_ == Kind::kAtom) {
    out->push_back(atom_);
    return;
  }
  for (const auto& child : children_) child->CollectAtoms(out);
}

std::string ConditionNode::ToSql() const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_.ToSql();
    case Kind::kAnd: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " and ";
        if (children_[i]->kind() == Kind::kOr) {
          out += "(" + children_[i]->ToSql() + ")";
        } else {
          out += children_[i]->ToSql();
        }
      }
      return out;
    }
    case Kind::kOr: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " or ";
        if (children_[i]->kind() == Kind::kAnd) {
          out += "(" + children_[i]->ToSql() + ")";
        } else {
          out += children_[i]->ToSql();
        }
      }
      return out;
    }
  }
  return "";
}

size_t ConditionNode::NumAtoms() const {
  if (kind_ == Kind::kAtom) return 1;
  size_t n = 0;
  for (const auto& child : children_) n += child->NumAtoms();
  return n;
}

bool ConditionEquals(const ConditionPtr& a, const ConditionPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  if (a->kind() == ConditionNode::Kind::kAtom) return a->atom() == b->atom();
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!ConditionEquals(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

std::vector<std::vector<AtomicCondition>> ToDnf(
    const ConditionPtr& condition) {
  if (condition == nullptr) return {{}};
  switch (condition->kind()) {
    case ConditionNode::Kind::kAtom:
      return {{condition->atom()}};
    case ConditionNode::Kind::kOr: {
      std::vector<std::vector<AtomicCondition>> out;
      for (const auto& child : condition->children()) {
        auto sub = ToDnf(child);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return out;
    }
    case ConditionNode::Kind::kAnd: {
      std::vector<std::vector<AtomicCondition>> out = {{}};
      for (const auto& child : condition->children()) {
        auto sub = ToDnf(child);
        std::vector<std::vector<AtomicCondition>> next;
        next.reserve(out.size() * sub.size());
        for (const auto& left : out) {
          for (const auto& right : sub) {
            std::vector<AtomicCondition> merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
          }
        }
        out = std::move(next);
      }
      return out;
    }
  }
  return {{}};
}

}  // namespace qp
