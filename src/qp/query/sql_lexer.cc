#include "qp/query/sql_lexer.h"

#include <cctype>

#include "qp/util/string_util.h"

namespace qp {

bool Token::IsKeyword(std::string_view keyword) const {
  if (kind != TokenKind::kIdent) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIdent, std::string(sql.substr(start, i - start)),
           start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (!seen_dot && sql[i] == '.'))) {
        // A '.' is part of the number only if followed by a digit,
        // otherwise it is the attribute separator (rare after a number,
        // but keep the rule uniform).
        if (sql[i] == '.') {
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(
                                sql[i + 1]))) {
            break;
          }
          seen_dot = true;
        }
        ++i;
      }
      tokens.push_back(
          {TokenKind::kNumber, std::string(sql.substr(start, i - start)),
           start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool terminated = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // Escaped quote.
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          terminated = true;
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!terminated) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      tokens.push_back({TokenKind::kSymbol, ">=", start});
      i += 2;
      continue;
    }
    switch (c) {
      case '.':
      case ',':
      case '(':
      case ')':
      case '[':
      case ']':
      case '=':
      case '*':
      case '>':
      case '-':
        tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
        ++i;
        continue;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace qp
