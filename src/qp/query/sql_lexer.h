#ifndef QP_QUERY_SQL_LEXER_H_
#define QP_QUERY_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "qp/util/status.h"

namespace qp {

/// Token kinds produced by the SQL lexer. Keywords are reported as kIdent;
/// the parser matches them case-insensitively.
enum class TokenKind {
  kIdent,
  kNumber,   // Integer or decimal literal.
  kString,   // Single-quoted, with '' as the escape for a quote.
  kSymbol,   // One of . , ( ) [ ] = * > - and the two-char >=. The square
             // brackets are used by the profile text format, not by SQL;
             // '-' only as the sign of negative degree literals.
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Identifier text, symbol text, or literal spelling.
  size_t offset = 0;  // Byte offset into the input, for error messages.

  bool IsSymbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword match.
  bool IsKeyword(std::string_view keyword) const;
};

/// Tokenizes `sql`. The final token is always kEnd. Fails on unterminated
/// strings and unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace qp

#endif  // QP_QUERY_SQL_LEXER_H_
