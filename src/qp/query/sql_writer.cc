#include "qp/query/sql_writer.h"

#include "qp/util/string_util.h"

namespace qp {
namespace {

std::string ProjectionSql(const SelectQuery& query, bool with_degree,
                          double degree) {
  std::vector<std::string> items;
  for (const auto& item : query.projections()) {
    items.push_back(item.var + "." + item.column);
  }
  if (with_degree) {
    // Negative degrees (penalty parts) print with their sign.
    items.push_back(FormatDouble(degree) + " as doi");
  }
  return Join(items, ", ");
}

std::string SelectSql(const SelectQuery& query, bool with_degree,
                      double degree) {
  std::string sql = "select ";
  if (query.distinct()) sql += "distinct ";
  sql += ProjectionSql(query, with_degree, degree);
  sql += " from ";
  std::vector<std::string> froms;
  for (const auto& var : query.from()) {
    froms.push_back(var.table + " " + var.alias);
  }
  sql += Join(froms, ", ");
  if (query.where() != nullptr) {
    sql += " where " + query.where()->ToSql();
  }
  return sql;
}

}  // namespace

std::string ToSql(const SelectQuery& query) {
  return SelectSql(query, /*with_degree=*/false, 0.0);
}

std::string ToSql(const CompoundQuery& query) {
  const bool degrees = query.UsesDegrees();
  std::string outer_cols;
  {
    std::vector<std::string> cols;
    if (!query.parts().empty()) {
      for (const auto& item : query.parts()[0].query.projections()) {
        cols.push_back(item.var + "." + item.column);
      }
    }
    outer_cols = Join(cols, ", ");
  }

  std::string sql = "select " + outer_cols + " from (";
  for (size_t i = 0; i < query.parts().size(); ++i) {
    if (i > 0) sql += " union all ";
    sql += "(" + SelectSql(query.parts()[i].query, degrees,
                           query.parts()[i].degree) +
           ")";
  }
  sql += ") TEMP group by " + outer_cols;

  switch (query.having().kind) {
    case HavingClause::Kind::kNone:
      break;
    case HavingClause::Kind::kCountAtLeast:
      sql += " having count(*) >= " + std::to_string(query.having().min_count);
      break;
    case HavingClause::Kind::kDegreeAbove:
      sql += " having degree_of_conjunction(doi) > " +
             FormatDouble(query.having().min_degree);
      break;
  }
  for (const SelectQuery& exclusion : query.exclusions()) {
    sql += " except (" +
           SelectSql(exclusion, /*with_degree=*/false, 0.0) + ")";
  }
  if (query.order_by_degree()) {
    sql += " order by degree_of_conjunction(doi) desc";
  }
  return sql;
}

}  // namespace qp
