#ifndef QP_QUERY_SQL_WRITER_H_
#define QP_QUERY_SQL_WRITER_H_

#include <string>

#include "qp/query/query.h"

namespace qp {

/// Renders a query as a single-line SQL string in the dialect the parser
/// accepts, e.g.
///   select distinct MV.title from MOVIE MV, PLAY PL
///   where MV.mid=PL.mid and PL.date='2/7/2003'
std::string ToSql(const SelectQuery& query);

/// Renders a compound (MQ-style) query:
///   select MV.title from ((select distinct MV.title from ...)
///   union all (select distinct MV.title from ...)) TEMP
///   group by MV.title having count(*) >= 2
///   [except (select ...)]* [order by degree_of_conjunction(doi) desc]
/// When the compound uses degrees, each part carries a literal degree
/// column `<d> as doi` (negative for penalty parts) and HAVING/ORDER BY
/// use degree_of_conjunction(doi). EXCEPT blocks carry veto exclusions.
std::string ToSql(const CompoundQuery& query);

}  // namespace qp

#endif  // QP_QUERY_SQL_WRITER_H_
