#include "qp/query/sql_parser.h"

#include <cstdlib>

#include "qp/query/sql_lexer.h"

namespace qp {
namespace {

/// Recursive-descent parser over the token stream. All Parse* methods
/// leave the cursor just past what they consumed.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedStatement> ParseStatement() {
    QP_RETURN_IF_ERROR(ExpectKeyword("select"));
    // Projection list of the outermost select.
    bool distinct = ConsumeKeyword("distinct");
    std::vector<ProjectionItem> outer;
    QP_RETURN_IF_ERROR(ParseProjectionList(&outer, nullptr));
    QP_RETURN_IF_ERROR(ExpectKeyword("from"));

    if (Peek().IsSymbol("(")) {
      if (distinct) {
        return Error("distinct is not supported on a compound query");
      }
      QP_ASSIGN_OR_RETURN(CompoundQuery compound, ParseCompoundTail(outer));
      return ParsedStatement{std::move(compound)};
    }
    QP_ASSIGN_OR_RETURN(SelectQuery select,
                        ParseSelectTail(distinct, std::move(outer)));
    QP_RETURN_IF_ERROR(ExpectEnd());
    return ParsedStatement{std::move(select)};
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (near offset " +
                              std::to_string(Peek().offset) + ")");
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (Peek().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(std::string_view symbol) {
    if (Peek().IsSymbol(symbol)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Error("expected '" + std::string(keyword) + "', got '" +
                   Peek().text + "'");
    }
    return Status::Ok();
  }
  Status ExpectSymbol(std::string_view symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Error("expected '" + std::string(symbol) + "', got '" +
                   Peek().text + "'");
    }
    return Status::Ok();
  }
  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return Status::Ok();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected identifier, got '" + Peek().text + "'");
    }
    return Advance().text;
  }

  static Value NumberValue(const std::string& text) {
    if (text.find('.') != std::string::npos) {
      return Value::Real(std::strtod(text.c_str(), nullptr));
    }
    return Value::Int(std::strtoll(text.c_str(), nullptr, 10));
  }

  Result<double> ExpectNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected number, got '" + Peek().text + "'");
    }
    return std::strtod(Advance().text.c_str(), nullptr);
  }

  /// Parses `v.c [, v.c | NUMBER as IDENT]*`. A `NUMBER as doi` item sets
  /// *degree when `degree` is non-null, and is rejected otherwise.
  Status ParseProjectionList(std::vector<ProjectionItem>* items,
                             double* degree) {
    for (;;) {
      if (Peek().kind == TokenKind::kNumber || Peek().IsSymbol("-")) {
        if (degree == nullptr) {
          return Error("literal projection only allowed inside a compound "
                       "query part");
        }
        double sign = ConsumeSymbol("-") ? -1.0 : 1.0;
        QP_ASSIGN_OR_RETURN(double d, ExpectNumber());
        QP_RETURN_IF_ERROR(ExpectKeyword("as"));
        QP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        if (name != "doi") {
          return Error("literal projection must be aliased 'doi'");
        }
        *degree = sign * d;
      } else {
        QP_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
        QP_RETURN_IF_ERROR(ExpectSymbol("."));
        QP_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
        items->push_back({std::move(var), std::move(column)});
      }
      if (!ConsumeSymbol(",")) break;
    }
    if (items->empty()) return Error("empty projection list");
    return Status::Ok();
  }

  /// Parses the rest of a plain select after FROM (the projection list and
  /// distinct flag were already consumed).
  Result<SelectQuery> ParseSelectTail(bool distinct,
                                      std::vector<ProjectionItem> items) {
    SelectQuery query;
    query.set_distinct(distinct);
    for (;;) {
      QP_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
      QP_ASSIGN_OR_RETURN(std::string alias, ExpectIdent());
      QP_RETURN_IF_ERROR(query.AddVariable(std::move(alias), std::move(table)));
      if (!ConsumeSymbol(",")) break;
    }
    for (auto& item : items) {
      query.AddProjection(std::move(item.var), std::move(item.column));
    }
    if (ConsumeKeyword("where")) {
      QP_ASSIGN_OR_RETURN(ConditionPtr where, ParseOrExpr());
      query.set_where(std::move(where));
    }
    return query;
  }

  /// Parses a full parenthesized-or-not select statement (used for
  /// compound parts): `select [distinct] items from ... [where ...]`.
  Result<CompoundPart> ParsePartSelect() {
    QP_RETURN_IF_ERROR(ExpectKeyword("select"));
    bool distinct = ConsumeKeyword("distinct");
    std::vector<ProjectionItem> items;
    double degree = 0.0;
    QP_RETURN_IF_ERROR(ParseProjectionList(&items, &degree));
    QP_RETURN_IF_ERROR(ExpectKeyword("from"));
    QP_ASSIGN_OR_RETURN(SelectQuery query,
                        ParseSelectTail(distinct, std::move(items)));
    return CompoundPart{std::move(query), degree};
  }

  /// Parses everything after `select <outer> from` when the next token is
  /// '(' — the compound (MQ) form.
  Result<CompoundQuery> ParseCompoundTail(
      const std::vector<ProjectionItem>& outer) {
    QP_RETURN_IF_ERROR(ExpectSymbol("("));
    CompoundQuery compound;
    for (;;) {
      QP_RETURN_IF_ERROR(ExpectSymbol("("));
      QP_ASSIGN_OR_RETURN(CompoundPart part, ParsePartSelect());
      QP_RETURN_IF_ERROR(ExpectSymbol(")"));
      compound.AddPart(std::move(part.query), part.degree);
      if (ConsumeKeyword("union")) {
        QP_RETURN_IF_ERROR(ExpectKeyword("all"));
        continue;
      }
      break;
    }
    QP_RETURN_IF_ERROR(ExpectSymbol(")"));
    QP_RETURN_IF_ERROR(ExpectIdent().status());  // Derived-table alias.
    QP_RETURN_IF_ERROR(ExpectKeyword("group"));
    QP_RETURN_IF_ERROR(ExpectKeyword("by"));
    std::vector<ProjectionItem> group_by;
    QP_RETURN_IF_ERROR(ParseProjectionList(&group_by, nullptr));
    if (group_by != outer) {
      return Error("group by list must match the outer projection list");
    }
    const auto& first = compound.parts().empty()
                            ? group_by
                            : compound.parts()[0].query.projections();
    if (group_by != first) {
      return Error("group by list must match the part projections");
    }

    if (ConsumeKeyword("having")) {
      if (ConsumeKeyword("count")) {
        QP_RETURN_IF_ERROR(ExpectSymbol("("));
        QP_RETURN_IF_ERROR(ExpectSymbol("*"));
        QP_RETURN_IF_ERROR(ExpectSymbol(")"));
        QP_RETURN_IF_ERROR(ExpectSymbol(">="));
        QP_ASSIGN_OR_RETURN(double n, ExpectNumber());
        compound.set_having(HavingClause::CountAtLeast(
            static_cast<size_t>(n)));
      } else if (ConsumeKeyword("degree_of_conjunction")) {
        QP_RETURN_IF_ERROR(ExpectSymbol("("));
        QP_RETURN_IF_ERROR(ExpectKeyword("doi"));
        QP_RETURN_IF_ERROR(ExpectSymbol(")"));
        QP_RETURN_IF_ERROR(ExpectSymbol(">"));
        QP_ASSIGN_OR_RETURN(double d, ExpectNumber());
        compound.set_having(HavingClause::DegreeAbove(d));
      } else {
        return Error("expected count(*) or degree_of_conjunction(doi)");
      }
    }
    while (ConsumeKeyword("except")) {
      QP_RETURN_IF_ERROR(ExpectSymbol("("));
      QP_ASSIGN_OR_RETURN(CompoundPart exclusion, ParsePartSelect());
      QP_RETURN_IF_ERROR(ExpectSymbol(")"));
      compound.AddExclusion(std::move(exclusion.query));
    }
    if (ConsumeKeyword("order")) {
      QP_RETURN_IF_ERROR(ExpectKeyword("by"));
      QP_RETURN_IF_ERROR(ExpectKeyword("degree_of_conjunction"));
      QP_RETURN_IF_ERROR(ExpectSymbol("("));
      QP_RETURN_IF_ERROR(ExpectKeyword("doi"));
      QP_RETURN_IF_ERROR(ExpectSymbol(")"));
      QP_RETURN_IF_ERROR(ExpectKeyword("desc"));
      compound.set_order_by_degree(true);
    }
    QP_RETURN_IF_ERROR(ExpectEnd());
    return compound;
  }

  Result<ConditionPtr> ParseOrExpr() {
    std::vector<ConditionPtr> children;
    QP_ASSIGN_OR_RETURN(ConditionPtr first, ParseAndExpr());
    children.push_back(std::move(first));
    while (ConsumeKeyword("or")) {
      QP_ASSIGN_OR_RETURN(ConditionPtr next, ParseAndExpr());
      children.push_back(std::move(next));
    }
    return ConditionNode::MakeOr(std::move(children));
  }

  Result<ConditionPtr> ParseAndExpr() {
    std::vector<ConditionPtr> children;
    QP_ASSIGN_OR_RETURN(ConditionPtr first, ParsePrimary());
    children.push_back(std::move(first));
    while (ConsumeKeyword("and")) {
      QP_ASSIGN_OR_RETURN(ConditionPtr next, ParsePrimary());
      children.push_back(std::move(next));
    }
    return ConditionNode::MakeAnd(std::move(children));
  }

  Result<ConditionPtr> ParsePrimary() {
    if (ConsumeSymbol("(")) {
      QP_ASSIGN_OR_RETURN(ConditionPtr inner, ParseOrExpr());
      QP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    // near(v.c, target, width) — the soft proximity condition.
    if (Peek().IsKeyword("near") && Peek(1).IsSymbol("(")) {
      Advance();
      Advance();
      QP_ASSIGN_OR_RETURN(std::string near_var, ExpectIdent());
      QP_RETURN_IF_ERROR(ExpectSymbol("."));
      QP_ASSIGN_OR_RETURN(std::string near_column, ExpectIdent());
      QP_RETURN_IF_ERROR(ExpectSymbol(","));
      double sign = ConsumeSymbol("-") ? -1.0 : 1.0;
      if (Peek().kind != TokenKind::kNumber) {
        return Error("near() target must be numeric");
      }
      Value target = NumberValue(Advance().text);
      if (sign < 0) {
        target = target.type() == DataType::kInt64
                     ? Value::Int(-target.as_int())
                     : Value::Real(-target.as_double());
      }
      QP_RETURN_IF_ERROR(ExpectSymbol(","));
      QP_ASSIGN_OR_RETURN(double width, ExpectNumber());
      QP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ConditionNode::MakeAtom(AtomicCondition::Near(
          std::move(near_var), std::move(near_column), std::move(target),
          width));
    }
    QP_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
    QP_RETURN_IF_ERROR(ExpectSymbol("."));
    QP_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
    QP_RETURN_IF_ERROR(ExpectSymbol("="));
    if (Peek().kind == TokenKind::kString) {
      Value v = Value::Str(Advance().text);
      return ConditionNode::MakeAtom(AtomicCondition::Selection(
          std::move(var), std::move(column), std::move(v)));
    }
    if (Peek().kind == TokenKind::kNumber) {
      Value v = NumberValue(Advance().text);
      return ConditionNode::MakeAtom(AtomicCondition::Selection(
          std::move(var), std::move(column), std::move(v)));
    }
    QP_ASSIGN_OR_RETURN(std::string right_var, ExpectIdent());
    QP_RETURN_IF_ERROR(ExpectSymbol("."));
    QP_ASSIGN_OR_RETURN(std::string right_column, ExpectIdent());
    return ConditionNode::MakeAtom(AtomicCondition::Join(
        std::move(var), std::move(column), std::move(right_var),
        std::move(right_column)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedStatement> ParseStatement(std::string_view sql) {
  QP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectQuery> ParseSelectQuery(std::string_view sql) {
  QP_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseStatement(sql));
  if (!stmt.is_select()) {
    return Status::ParseError("expected a plain select query");
  }
  return stmt.select();
}

}  // namespace qp
