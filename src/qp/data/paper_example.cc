#include "qp/data/paper_example.h"

#include "qp/data/movie_db.h"

namespace qp {
namespace {

/// Both users share the structural (join) part of the profile; only the
/// degrees in the narrative are pinned down by the paper, the rest are
/// natural completions (both directions of every join are present so
/// preferences reach the whole schema).
void AddStandardJoins(UserProfile* profile) {
  auto join = [&](const char* ft, const char* fc, const char* tt,
                  const char* tc, double doi) {
    (void)profile->Add(
        AtomicPreference::Join({ft, fc}, {tt, tc}, doi));
  };
  join("THEATRE", "tid", "PLAY", "tid", 1.0);    // Figure 2, row 1.
  join("PLAY", "tid", "THEATRE", "tid", 1.0);    // Figure 2, row 2.
  join("PLAY", "mid", "MOVIE", "mid", 1.0);      // Figure 2, row 3.
  join("MOVIE", "mid", "PLAY", "mid", 0.8);      // Figure 2, row 4.
  join("MOVIE", "mid", "GENRE", "mid", 0.9);     // Figure 2, row 5.
  join("GENRE", "mid", "MOVIE", "mid", 0.9);
  join("MOVIE", "mid", "CAST", "mid", 0.8);      // Kidman example: 0.8*1*0.9.
  join("CAST", "mid", "MOVIE", "mid", 0.8);
  join("CAST", "aid", "ACTOR", "aid", 1.0);
  join("ACTOR", "aid", "CAST", "aid", 1.0);
  join("MOVIE", "mid", "DIRECTED", "mid", 1.0);  // Allen example: 1*1*0.7.
  join("DIRECTED", "mid", "MOVIE", "mid", 1.0);
  join("DIRECTED", "did", "DIRECTOR", "did", 1.0);
  join("DIRECTOR", "did", "DIRECTED", "did", 1.0);
}

void AddSelection(UserProfile* profile, const char* table, const char* column,
                  const char* value, double doi) {
  (void)profile->Add(AtomicPreference::Selection({table, column},
                                                 Value::Str(value), doi));
}

}  // namespace

UserProfile JulieProfile() {
  UserProfile profile;
  AddStandardJoins(&profile);
  // "She is a fan of comedies, enjoys thrillers, and likes adventures to a
  // lesser extent."
  AddSelection(&profile, "GENRE", "genre", "comedy", 0.9);   // Figure 2.
  AddSelection(&profile, "GENRE", "genre", "thriller", 0.7); // Figure 2.
  AddSelection(&profile, "GENRE", "genre", "adventure", 0.5);
  // "Her favourite is D. Lynch followed by W. Allen." The Allen degree is
  // pinned at 0.7 by the Section 3.3 example; 0.8 places Lynch between
  // Allen and the comedy path, matching the Section 5 top-3.
  AddSelection(&profile, "DIRECTOR", "name", "D. Lynch", 0.8);
  AddSelection(&profile, "DIRECTOR", "name", "W. Allen", 0.7);
  // "She likes N. Kidman followed by A. Hopkins and I. Rossellini."
  AddSelection(&profile, "ACTOR", "name", "N. Kidman", 0.9);  // Section 3.2.
  AddSelection(&profile, "ACTOR", "name", "A. Hopkins", 0.8); // Figure 2.
  AddSelection(&profile, "ACTOR", "name", "I. Rossellini", 0.6);
  // "Julie prefers theatres located downtown."
  AddSelection(&profile, "THEATRE", "region", "downtown", 0.7);
  return profile;
}

UserProfile RobProfile() {
  UserProfile profile;
  AddStandardJoins(&profile);
  // "Rob likes sci-fi movies and actress J. Roberts."
  AddSelection(&profile, "GENRE", "genre", "sci-fi", 0.9);
  AddSelection(&profile, "ACTOR", "name", "J. Roberts", 0.85);
  return profile;
}

SelectQuery TonightQuery() {
  SelectQuery query;
  (void)query.AddVariable("MV", "MOVIE");
  (void)query.AddVariable("PL", "PLAY");
  query.AddProjection("MV", "title");
  query.set_where(ConditionNode::MakeAnd({
      ConditionNode::MakeAtom(
          AtomicCondition::Join("MV", "mid", "PL", "mid")),
      ConditionNode::MakeAtom(AtomicCondition::Selection(
          "PL", "date", Value::Str("2/7/2003"))),
  }));
  return query;
}

Result<Database> BuildPaperDatabase() {
  Database db(MovieSchema());
  auto I = [](int64_t v) { return Value::Int(v); };
  auto S = [](const char* v) { return Value::Str(v); };

  struct MovieRow {
    int64_t mid;
    const char* title;
    int64_t year;
    std::vector<const char*> genres;
    int64_t director;
    std::vector<int64_t> cast;
  };
  // Directors: 0 D. Lynch, 1 W. Allen, 2 S. Kubrick, 3 M. Tarkowski.
  // Actors: 0 N. Kidman, 1 A. Hopkins, 2 I. Rossellini, 3 J. Roberts,
  //         4 R. Atkinson.
  const std::vector<MovieRow> movies = {
      {0, "The Quiet Comedy", 2002, {"comedy"}, 0, {0, 1}},
      {1, "Laugh Lines", 2001, {"comedy"}, 1, {1}},
      {2, "Night Chase", 2003, {"thriller"}, 0, {0, 2}},
      {3, "Space Odyssey", 2003, {"sci-fi"}, 2, {3}},
      {4, "Asian Cuisine Stories", 2000, {"documentary"}, 3, {4}},
      {5, "Dream Theatre", 1999, {"comedy", "adventure"}, 1, {0, 3}},
  };
  const std::vector<const char*> actors = {
      "N. Kidman", "A. Hopkins", "I. Rossellini", "J. Roberts",
      "R. Atkinson"};
  const std::vector<const char*> directors = {"D. Lynch", "W. Allen",
                                              "S. Kubrick", "M. Tarkowski"};

  for (size_t i = 0; i < actors.size(); ++i) {
    QP_RETURN_IF_ERROR(
        db.Insert("ACTOR", {I(static_cast<int64_t>(i)), S(actors[i])}));
  }
  for (size_t i = 0; i < directors.size(); ++i) {
    QP_RETURN_IF_ERROR(db.Insert(
        "DIRECTOR", {I(static_cast<int64_t>(i)), S(directors[i])}));
  }
  QP_RETURN_IF_ERROR(db.Insert(
      "THEATRE", {I(0), S("Odeon"), S("555-1000"), S("downtown")}));
  QP_RETURN_IF_ERROR(
      db.Insert("THEATRE", {I(1), S("Rex"), S("555-1001"), S("uptown")}));

  for (const MovieRow& movie : movies) {
    QP_RETURN_IF_ERROR(
        db.Insert("MOVIE", {I(movie.mid), S(movie.title), I(movie.year)}));
    for (const char* genre : movie.genres) {
      QP_RETURN_IF_ERROR(db.Insert("GENRE", {I(movie.mid), S(genre)}));
    }
    QP_RETURN_IF_ERROR(
        db.Insert("DIRECTED", {I(movie.mid), I(movie.director)}));
    for (size_t c = 0; c < movie.cast.size(); ++c) {
      QP_RETURN_IF_ERROR(db.Insert(
          "CAST", {I(movie.mid), I(movie.cast[c]), S("none"),
                   S(("Role " + std::to_string(c)).c_str())}));
    }
    // Every movie plays tonight; alternate theatres.
    QP_RETURN_IF_ERROR(
        db.Insert("PLAY", {I(movie.mid % 2), I(movie.mid), S("2/7/2003")}));
  }
  // A screening on another night, to make the date selection matter.
  QP_RETURN_IF_ERROR(db.Insert("PLAY", {I(0), I(4), S("3/7/2003")}));
  return db;
}

}  // namespace qp
