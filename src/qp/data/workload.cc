#include "qp/data/workload.h"

#include <cctype>

namespace qp {
namespace {

/// Tables worth projecting from (entity relations with a display column).
struct BaseChoice {
  const char* table;
  const char* display_column;
};

std::string AliasFor(const SelectQuery& query, const std::string& table) {
  std::string prefix;
  for (char c : table.substr(0, 2)) {
    prefix += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return query.FreshAlias(prefix);
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const Database* db, uint64_t seed,
                                     WorkloadConfig config)
    : db_(db), rng_(seed), config_(config) {}

std::vector<std::string> WorkloadGenerator::ValueColumns(
    const std::string& table) const {
  const Schema& schema = db_->schema();
  const TableSchema* ts = schema.FindTable(table);
  std::vector<std::string> out;
  for (const Column& column : ts->columns()) {
    bool joined = false;
    for (const SchemaJoin& join : schema.joins()) {
      if ((join.left.table == table && join.left.column == column.name) ||
          (join.right.table == table && join.right.column == column.name)) {
        joined = true;
        break;
      }
    }
    if (!joined) out.push_back(column.name);
  }
  return out;
}

Result<Value> WorkloadGenerator::SampleValue(const std::string& table,
                                             const std::string& column) {
  QP_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));
  if (t->num_rows() == 0) {
    return Status::FailedPrecondition("cannot sample from empty table " +
                                      table);
  }
  size_t col = *t->schema().ColumnIndex(column);
  RowId row = static_cast<RowId>(rng_.Below(t->num_rows()));
  return t->At(row, col);
}

Result<SelectQuery> WorkloadGenerator::RandomQuery() {
  const Schema& schema = db_->schema();

  // Entity relations that have at least one value column make good bases.
  std::vector<BaseChoice> bases;
  static constexpr BaseChoice kKnownBases[] = {
      {"MOVIE", "title"}, {"THEATRE", "name"},
      {"ACTOR", "name"},  {"DIRECTOR", "name"},
  };
  for (const BaseChoice& base : kKnownBases) {
    if (schema.HasTable(base.table)) bases.push_back(base);
  }
  if (bases.empty()) {
    // Generic fallback for non-movie schemas: any table, first column.
    for (const TableSchema& table : schema.tables()) {
      bases.push_back({table.name().c_str(),
                       table.columns().front().name.c_str()});
    }
  }
  const BaseChoice& base = bases[rng_.Below(bases.size())];

  SelectQuery query;
  std::string base_alias = AliasFor(query, base.table);
  QP_RETURN_IF_ERROR(query.AddVariable(base_alias, base.table));
  query.AddProjection(base_alias, base.display_column);

  std::vector<ConditionPtr> atoms;
  // Random walk over declared joins.
  size_t extra = rng_.Below(config_.max_extra_relations + 1);
  for (size_t step = 0; step < extra; ++step) {
    // Pick a random variable already in the query, then a random join out
    // of its table into a table not yet present. Copy the source variable:
    // AddVariable below may reallocate the FROM list.
    const TupleVariable source =
        query.from()[rng_.Below(query.from().size())];
    std::vector<Schema::OutgoingJoin> options;
    for (const Schema::OutgoingJoin& join :
         schema.JoinsFrom(source.table)) {
      bool used = false;
      for (const TupleVariable& var : query.from()) {
        if (var.table == join.to.table) {
          used = true;
          break;
        }
      }
      if (!used) options.push_back(join);
    }
    if (options.empty()) break;
    const Schema::OutgoingJoin& join = options[rng_.Below(options.size())];
    std::string alias = AliasFor(query, join.to.table);
    QP_RETURN_IF_ERROR(query.AddVariable(alias, join.to.table));
    atoms.push_back(ConditionNode::MakeAtom(
        AtomicCondition::Join(source.alias, join.from.column, alias,
                              join.to.column)));
  }

  // One guaranteed selection (plus an optional second) on value columns
  // of the included relations. Link relations like DIRECTED have no value
  // columns, so draw only from variables that do (the base relations all
  // qualify, so the pool is never empty).
  std::vector<TupleVariable> eligible;
  for (const TupleVariable& var : query.from()) {
    if (!ValueColumns(var.table).empty()) eligible.push_back(var);
  }
  size_t num_selections =
      1 + (rng_.Bernoulli(config_.second_selection_prob) ? 1 : 0);
  for (size_t s = 0; s < num_selections && !eligible.empty(); ++s) {
    const TupleVariable& var = eligible[rng_.Below(eligible.size())];
    std::vector<std::string> columns = ValueColumns(var.table);
    const std::string& column = columns[rng_.Below(columns.size())];
    QP_ASSIGN_OR_RETURN(Value value, SampleValue(var.table, column));
    atoms.push_back(ConditionNode::MakeAtom(
        AtomicCondition::Selection(var.alias, column, std::move(value))));
  }

  query.set_where(ConditionNode::MakeAnd(std::move(atoms)));
  QP_RETURN_IF_ERROR(query.Validate(schema));
  return query;
}

Result<std::vector<SelectQuery>> WorkloadGenerator::RandomQueries(size_t n) {
  std::vector<SelectQuery> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QP_ASSIGN_OR_RETURN(SelectQuery query, RandomQuery());
    out.push_back(std::move(query));
  }
  return out;
}

}  // namespace qp
