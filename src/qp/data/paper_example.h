#ifndef QP_DATA_PAPER_EXAMPLE_H_
#define QP_DATA_PAPER_EXAMPLE_H_

#include "qp/pref/profile.h"
#include "qp/query/query.h"
#include "qp/relational/database.h"
#include "qp/util/status.h"

namespace qp {

/// The paper's running example, reconstructed exactly: Julie's profile
/// (Figures 2/3 and the narrative of Section 3), Rob's profile, the
/// motivating "what is shown tonight" query, and a small handcrafted
/// database instance over the movie schema that makes the worked examples
/// observable end to end.
///
/// Degrees are chosen to reproduce every number computed in the paper:
///  - N. Kidman transitive selection:  0.8 * 1 * 0.9   = 0.72
///  - W. Allen transitive selection:   1 * 1 * 0.7     = 0.7
///  - comedy transitive selection:     0.9 * 0.9       = 0.81
///  - conjunction(comedy, W. Allen):   1-(1-0.7)(1-0.81) = 0.943
///  - disjunction(comedy, W. Allen):   (0.7+0.81)/2      = 0.755
///  - top-3 for the tonight query: comedy (0.81), D. Lynch (0.8),
///    N. Kidman (0.72) — the set listed at the end of Section 5.
UserProfile JulieProfile();

/// Rob likes sci-fi movies and actress J. Roberts.
UserProfile RobProfile();

/// select MV.title from MOVIE MV, PLAY PL
/// where MV.mid=PL.mid and PL.date='2/7/2003'
SelectQuery TonightQuery();

/// A compact instance of the movie schema with the entities the examples
/// mention (N. Kidman, D. Lynch, W. Allen, J. Roberts, comedies,
/// thrillers, sci-fi, ...) all playing on '2/7/2003'.
Result<Database> BuildPaperDatabase();

}  // namespace qp

#endif  // QP_DATA_PAPER_EXAMPLE_H_
