#ifndef QP_DATA_MOVIE_DB_H_
#define QP_DATA_MOVIE_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qp/pref/profile_generator.h"
#include "qp/relational/database.h"
#include "qp/util/status.h"

namespace qp {

/// Knobs of the synthetic movie database (the stand-in for the paper's
/// IMDb extract). Defaults are laptop-benchmark scale; the paper's 340k
/// movies are reachable by raising `num_movies` (the experiment shapes are
/// scale-invariant).
struct MovieDbConfig {
  size_t num_movies = 5000;
  size_t num_actors = 2000;
  size_t num_directors = 400;
  size_t num_theatres = 40;
  size_t num_regions = 8;
  size_t num_genres = 15;
  /// PLAY rows: for each theatre and each day, this many screenings.
  size_t num_days = 14;
  size_t plays_per_theatre_per_day = 3;
  /// CAST rows per movie are drawn uniformly from [min_cast, max_cast].
  size_t min_cast = 2;
  size_t max_cast = 6;
  /// Movies may carry 1..max_genres_per_movie genres.
  size_t max_genres_per_movie = 3;
  /// Popularity skew (genre/actor/director assignment) — Zipf theta.
  double zipf_theta = 0.8;
  uint64_t seed = 42;
};

/// The paper's 8-relation schema with its foreign-key joins:
///   THEATRE(tid, name, phone, region)      PLAY(tid, mid, date)
///   MOVIE(mid, title, year)                CAST(mid, aid, award, role)
///   ACTOR(aid, name)                       DIRECTED(mid, did)
///   DIRECTOR(did, name)                    GENRE(mid, genre)
Schema MovieSchema();

/// Generates a populated database per `config`. Deterministic in the seed.
Result<Database> GenerateMovieDatabase(const MovieDbConfig& config);

/// Canonical generated value spellings, shared by tests/workloads:
/// genres cycle through a fixed list; names are "Actor #i" etc.
std::string GenreName(size_t i);
std::string RegionName(size_t i);
std::string ActorName(size_t i);
std::string DirectorName(size_t i);
std::string MovieTitle(size_t i);
std::string TheatreName(size_t i);
std::string PlayDate(size_t day);

/// Harvests candidate (attribute, value) pools for the profile generator
/// from the value-bearing attributes of the movie schema: GENRE.genre,
/// ACTOR.name, DIRECTOR.name, THEATRE.region, MOVIE.year. Values are the
/// distinct values present in `db` (capped per attribute).
Result<std::vector<CandidatePool>> MovieCandidatePools(
    const Database& db, size_t max_values_per_attribute = 10000);

}  // namespace qp

#endif  // QP_DATA_MOVIE_DB_H_
