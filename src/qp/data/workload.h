#ifndef QP_DATA_WORKLOAD_H_
#define QP_DATA_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qp/query/query.h"
#include "qp/relational/database.h"
#include "qp/util/random.h"
#include "qp/util/status.h"

namespace qp {

struct WorkloadConfig {
  /// Extra relations joined onto the base relation: drawn uniformly from
  /// [0, max_extra_relations].
  size_t max_extra_relations = 2;
  /// Probability of a second selection condition (one is always added so
  /// queries resemble the paper's "what is shown tonight" requests rather
  /// than full scans).
  double second_selection_prob = 0.3;
};

/// Generates random SPJ queries over a database, the stand-in for the
/// paper's "set of 100 randomly created queries": a random connected
/// subgraph of the schema graph (base relation + random walk over declared
/// joins), join conditions along the walk, 1-2 equality selections with
/// values sampled from the actual data, projecting a display attribute of
/// the base relation.
class WorkloadGenerator {
 public:
  /// `db` is retained and must outlive the generator.
  WorkloadGenerator(const Database* db, uint64_t seed,
                    WorkloadConfig config = {});

  /// Draws one random query (deterministic in the seed sequence).
  Result<SelectQuery> RandomQuery();

  /// Convenience: a batch of `n` queries.
  Result<std::vector<SelectQuery>> RandomQueries(size_t n);

 private:
  /// Columns of `table` that participate in no declared join — the
  /// "value" attributes eligible for selections.
  std::vector<std::string> ValueColumns(const std::string& table) const;

  /// The value of `column` in a uniformly random row of `table`.
  Result<Value> SampleValue(const std::string& table,
                            const std::string& column);

  const Database* db_;
  Rng rng_;
  WorkloadConfig config_;
};

}  // namespace qp

#endif  // QP_DATA_WORKLOAD_H_
