#include "qp/data/movie_db.h"

#include <array>
#include <cstdio>
#include <unordered_set>

#include "qp/util/random.h"

namespace qp {
namespace {

constexpr std::array<const char*, 15> kGenres = {
    "comedy",  "thriller",  "sci-fi", "drama",   "adventure",
    "romance", "horror",    "crime",  "fantasy", "animation",
    "war",     "western",   "musical", "mystery", "documentary"};

constexpr std::array<const char*, 8> kRegions = {
    "downtown", "uptown", "midtown", "harbor",
    "west end", "east side", "old town", "suburbs"};

}  // namespace

std::string GenreName(size_t i) { return kGenres[i % kGenres.size()]; }
std::string RegionName(size_t i) { return kRegions[i % kRegions.size()]; }
std::string ActorName(size_t i) { return "Actor #" + std::to_string(i); }
std::string DirectorName(size_t i) {
  return "Director #" + std::to_string(i);
}
std::string MovieTitle(size_t i) { return "Movie #" + std::to_string(i); }
std::string TheatreName(size_t i) {
  return "Theatre #" + std::to_string(i);
}
std::string PlayDate(size_t day) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2003-07-%02zu", day % 28 + 1);
  return buf;
}

Schema MovieSchema() {
  Schema schema;
  auto str = DataType::kString;
  auto i64 = DataType::kInt64;
  // AddTable cannot fail here (no duplicates); assert via (void).
  (void)schema.AddTable(TableSchema("THEATRE",
                                    {{"tid", i64},
                                     {"name", str},
                                     {"phone", str},
                                     {"region", str}},
                                    {"tid"}));
  (void)schema.AddTable(TableSchema(
      "PLAY", {{"tid", i64}, {"mid", i64}, {"date", str}}, {}));
  (void)schema.AddTable(TableSchema(
      "MOVIE", {{"mid", i64}, {"title", str}, {"year", i64}}, {"mid"}));
  (void)schema.AddTable(TableSchema(
      "CAST",
      {{"mid", i64}, {"aid", i64}, {"award", str}, {"role", str}}, {}));
  (void)schema.AddTable(
      TableSchema("ACTOR", {{"aid", i64}, {"name", str}}, {"aid"}));
  (void)schema.AddTable(
      TableSchema("DIRECTED", {{"mid", i64}, {"did", i64}}, {}));
  (void)schema.AddTable(
      TableSchema("DIRECTOR", {{"did", i64}, {"name", str}}, {"did"}));
  (void)schema.AddTable(
      TableSchema("GENRE", {{"mid", i64}, {"genre", str}}, {}));

  (void)schema.AddForeignKey({"PLAY", "tid"}, {"THEATRE", "tid"});
  (void)schema.AddForeignKey({"PLAY", "mid"}, {"MOVIE", "mid"});
  (void)schema.AddForeignKey({"CAST", "mid"}, {"MOVIE", "mid"});
  (void)schema.AddForeignKey({"CAST", "aid"}, {"ACTOR", "aid"});
  (void)schema.AddForeignKey({"DIRECTED", "mid"}, {"MOVIE", "mid"});
  (void)schema.AddForeignKey({"DIRECTED", "did"}, {"DIRECTOR", "did"});
  (void)schema.AddForeignKey({"GENRE", "mid"}, {"MOVIE", "mid"});
  return schema;
}

Result<Database> GenerateMovieDatabase(const MovieDbConfig& config) {
  Database db(MovieSchema());
  Rng rng(config.seed);
  ZipfDistribution genre_zipf(config.num_genres, config.zipf_theta);
  ZipfDistribution actor_zipf(config.num_actors, config.zipf_theta);
  ZipfDistribution director_zipf(config.num_directors, config.zipf_theta);
  ZipfDistribution movie_zipf(config.num_movies, config.zipf_theta);

  for (size_t t = 0; t < config.num_theatres; ++t) {
    QP_RETURN_IF_ERROR(db.Insert(
        "THEATRE",
        {Value::Int(static_cast<int64_t>(t)), Value::Str(TheatreName(t)),
         Value::Str("555-" + std::to_string(1000 + t)),
         Value::Str(RegionName(rng.Below(config.num_regions)))}));
  }
  for (size_t a = 0; a < config.num_actors; ++a) {
    QP_RETURN_IF_ERROR(
        db.Insert("ACTOR", {Value::Int(static_cast<int64_t>(a)),
                            Value::Str(ActorName(a))}));
  }
  for (size_t d = 0; d < config.num_directors; ++d) {
    QP_RETURN_IF_ERROR(
        db.Insert("DIRECTOR", {Value::Int(static_cast<int64_t>(d)),
                               Value::Str(DirectorName(d))}));
  }
  for (size_t m = 0; m < config.num_movies; ++m) {
    int64_t year = 1950 + static_cast<int64_t>(rng.Below(55));
    QP_RETURN_IF_ERROR(
        db.Insert("MOVIE", {Value::Int(static_cast<int64_t>(m)),
                            Value::Str(MovieTitle(m)), Value::Int(year)}));
    // Genres: 1..max distinct, popularity-skewed.
    size_t num_genres =
        1 + rng.Below(config.max_genres_per_movie);
    std::unordered_set<uint64_t> seen_genres;
    for (size_t g = 0; g < num_genres; ++g) {
      uint64_t genre = genre_zipf.Sample(&rng);
      if (!seen_genres.insert(genre).second) continue;
      QP_RETURN_IF_ERROR(
          db.Insert("GENRE", {Value::Int(static_cast<int64_t>(m)),
                              Value::Str(GenreName(genre))}));
    }
    // One director per movie.
    QP_RETURN_IF_ERROR(db.Insert(
        "DIRECTED",
        {Value::Int(static_cast<int64_t>(m)),
         Value::Int(static_cast<int64_t>(director_zipf.Sample(&rng)))}));
    // Cast.
    size_t cast_size = config.min_cast +
                       rng.Below(config.max_cast - config.min_cast + 1);
    std::unordered_set<uint64_t> seen_actors;
    for (size_t c = 0; c < cast_size; ++c) {
      uint64_t actor = actor_zipf.Sample(&rng);
      if (!seen_actors.insert(actor).second) continue;
      const char* award = rng.Bernoulli(0.02) ? "oscar" : "none";
      QP_RETURN_IF_ERROR(db.Insert(
          "CAST", {Value::Int(static_cast<int64_t>(m)),
                   Value::Int(static_cast<int64_t>(actor)),
                   Value::Str(award),
                   Value::Str("Role " + std::to_string(c))}));
    }
  }
  // Screenings: every theatre schedules popular movies each day.
  for (size_t t = 0; t < config.num_theatres; ++t) {
    for (size_t day = 0; day < config.num_days; ++day) {
      for (size_t s = 0; s < config.plays_per_theatre_per_day; ++s) {
        QP_RETURN_IF_ERROR(db.Insert(
            "PLAY",
            {Value::Int(static_cast<int64_t>(t)),
             Value::Int(static_cast<int64_t>(movie_zipf.Sample(&rng))),
             Value::Str(PlayDate(day))}));
      }
    }
  }
  return db;
}

Result<std::vector<CandidatePool>> MovieCandidatePools(
    const Database& db, size_t max_values_per_attribute) {
  const std::vector<AttributeRef> attributes = {
      {"GENRE", "genre"},    {"ACTOR", "name"}, {"DIRECTOR", "name"},
      {"THEATRE", "region"}, {"MOVIE", "year"},
  };
  std::vector<CandidatePool> pools;
  for (const AttributeRef& attr : attributes) {
    QP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(attr.table));
    auto col = table->schema().ColumnIndex(attr.column);
    if (!col.has_value()) {
      return Status::NotFound("missing column " + attr.ToString());
    }
    std::unordered_set<Value, ValueHash> distinct;
    CandidatePool pool{attr, {}};
    for (const Row& row : table->rows()) {
      if (distinct.size() >= max_values_per_attribute) break;
      if (row[*col].is_null()) continue;
      if (distinct.insert(row[*col]).second) pool.values.push_back(row[*col]);
    }
    if (!pool.values.empty()) pools.push_back(std::move(pool));
  }
  return pools;
}

}  // namespace qp
