#include "qp/graph/preference_path.h"

#include <cassert>

#include "qp/util/string_util.h"

namespace qp {

PreferencePath::PreferencePath(std::string anchor_alias,
                               std::string anchor_table)
    : anchor_alias_(std::move(anchor_alias)),
      anchor_table_(std::move(anchor_table)) {}

PreferencePath PreferencePath::ExtendedBy(const JoinEdge& edge) const {
  assert(!is_selection());
  assert(edge.from.table == EndTable());
  assert(!VisitsTable(edge.to.table));
  PreferencePath extended = *this;
  extended.joins_.push_back(edge);
  extended.doi_ *= edge.doi;
  return extended;
}

PreferencePath PreferencePath::ExtendedBy(const SelectionEdge& edge) const {
  assert(!is_selection());
  assert(edge.attribute.table == EndTable());
  PreferencePath extended = *this;
  extended.selection_ = edge;
  extended.doi_ *= edge.doi;
  return extended;
}

const std::string& PreferencePath::EndTable() const {
  return joins_.empty() ? anchor_table_ : joins_.back().to.table;
}

bool PreferencePath::VisitsTable(const std::string& table) const {
  if (anchor_table_ == table) return true;
  for (const JoinEdge& join : joins_) {
    if (join.to.table == table) return true;
  }
  return false;
}

bool PreferencePath::AllJoinsToOne() const {
  for (const JoinEdge& join : joins_) {
    if (join.cardinality != JoinCardinality::kToOne) return false;
  }
  return true;
}

std::string PreferencePath::ConditionString() const {
  std::vector<std::string> parts;
  for (const JoinEdge& join : joins_) {
    parts.push_back(join.from.ToString() + "=" + join.to.ToString());
  }
  if (selection_.has_value()) {
    if (selection_->is_near()) {
      parts.push_back("near(" + selection_->attribute.ToString() + ", " +
                      selection_->value.ToSqlLiteral() + ", " +
                      FormatDouble(selection_->near_width) + ")");
    } else {
      parts.push_back(selection_->attribute.ToString() + "=" +
                      selection_->value.ToSqlLiteral());
    }
  }
  return Join(parts, " and ");
}

std::string PreferencePath::ToString() const {
  return ConditionString() + " <" + FormatDouble(doi_) + ">";
}

bool PreferencePath::SameShape(const PreferencePath& other) const {
  if (anchor_alias_ != other.anchor_alias_ ||
      anchor_table_ != other.anchor_table_) {
    return false;
  }
  if (joins_.size() != other.joins_.size()) return false;
  for (size_t i = 0; i < joins_.size(); ++i) {
    if (!(joins_[i].from == other.joins_[i].from) ||
        !(joins_[i].to == other.joins_[i].to)) {
      return false;
    }
  }
  if (selection_.has_value() != other.selection_.has_value()) return false;
  if (selection_.has_value()) {
    if (!(selection_->attribute == other.selection_->attribute) ||
        selection_->value != other.selection_->value ||
        selection_->near_width != other.selection_->near_width) {
      return false;
    }
  }
  return true;
}

namespace {

/// DFS over positive join edges; `selections_of` picks which polarity of
/// selection edges terminates paths.
void Enumerate(const PersonalizationGraph& graph,
               const std::unordered_set<std::string>& forbidden,
               const PreferencePath& prefix, bool negative,
               std::vector<PreferencePath>* out) {
  const std::string& end = prefix.EndTable();
  const std::vector<SelectionEdge>& selections =
      negative ? graph.NegativeSelectionsOn(end) : graph.SelectionsOn(end);
  for (const SelectionEdge& edge : selections) {
    out->push_back(prefix.ExtendedBy(edge));
  }
  for (const JoinEdge& edge : graph.JoinsFrom(end)) {
    if (prefix.VisitsTable(edge.to.table)) continue;
    if (forbidden.contains(edge.to.table)) continue;
    Enumerate(graph, forbidden, prefix.ExtendedBy(edge), negative, out);
  }
}

}  // namespace

std::vector<PreferencePath> EnumerateTransitiveSelections(
    const PersonalizationGraph& graph, const std::string& anchor_alias,
    const std::string& anchor_table,
    const std::unordered_set<std::string>& forbidden_tables) {
  std::vector<PreferencePath> out;
  PreferencePath root(anchor_alias, anchor_table);
  Enumerate(graph, forbidden_tables, root, /*negative=*/false, &out);
  return out;
}

std::vector<PreferencePath> EnumerateNegativeTransitiveSelections(
    const PersonalizationGraph& graph, const std::string& anchor_alias,
    const std::string& anchor_table,
    const std::unordered_set<std::string>& forbidden_tables) {
  std::vector<PreferencePath> out;
  PreferencePath root(anchor_alias, anchor_table);
  Enumerate(graph, forbidden_tables, root, /*negative=*/true, &out);
  return out;
}

}  // namespace qp
