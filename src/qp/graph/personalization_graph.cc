#include "qp/graph/personalization_graph.h"

#include <algorithm>
#include <cmath>

#include "qp/util/string_util.h"

namespace qp {

const std::vector<JoinEdge> PersonalizationGraph::kNoJoins;
const std::vector<SelectionEdge> PersonalizationGraph::kNoSelections;

std::string SelectionEdge::ToString() const {
  if (is_near()) {
    return "near(" + attribute.ToString() + ", " + value.ToSqlLiteral() +
           ", " + FormatDouble(near_width) + ") (" + FormatDouble(doi) + ")";
  }
  return attribute.ToString() + "=" + value.ToSqlLiteral() + " (" +
         FormatDouble(doi) + ")";
}

std::string JoinEdge::ToString() const {
  return from.ToString() + "=" + to.ToString() + " (" + FormatDouble(doi) +
         ", " + JoinCardinalityName(cardinality) + ")";
}

Result<PersonalizationGraph> PersonalizationGraph::Build(
    const Schema* schema, const UserProfile& profile) {
  QP_RETURN_IF_ERROR(profile.Validate(*schema));
  PersonalizationGraph graph(schema);

  for (const AtomicPreference& pref : profile.preferences()) {
    if (pref.is_selection()) {
      SelectionEdge edge{pref.attribute(), pref.value(), pref.doi(),
                         pref.is_near() ? pref.width() : 0.0};
      if (pref.is_negative()) {
        graph.negative_selections_on_[pref.attribute().table].push_back(
            std::move(edge));
        ++graph.num_negative_selection_edges_;
        continue;
      }
      graph.selections_on_[pref.attribute().table].push_back(
          std::move(edge));
      ++graph.num_selection_edges_;
    } else {
      QP_ASSIGN_OR_RETURN(
          JoinCardinality cardinality,
          schema->JoinCardinalityFrom(pref.attribute(), pref.target()));
      graph.joins_from_[pref.attribute().table].push_back(
          JoinEdge{pref.attribute(), pref.target(), pref.doi(), cardinality});
      ++graph.num_join_edges_;
    }
  }

  // The selection algorithm expands candidates in decreasing degree of
  // interest; keep the adjacency lists presorted. Sorting is stable so
  // profile order breaks ties deterministically.
  for (auto& [table, edges] : graph.joins_from_) {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const JoinEdge& a, const JoinEdge& b) {
                       return a.doi > b.doi;
                     });
  }
  for (auto& [table, edges] : graph.selections_on_) {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const SelectionEdge& a, const SelectionEdge& b) {
                       return a.doi > b.doi;
                     });
  }
  for (auto& [table, edges] : graph.negative_selections_on_) {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const SelectionEdge& a, const SelectionEdge& b) {
                       return std::abs(a.doi) > std::abs(b.doi);
                     });
  }
  return graph;
}

const std::vector<JoinEdge>& PersonalizationGraph::JoinsFrom(
    const std::string& table) const {
  auto it = joins_from_.find(table);
  return it == joins_from_.end() ? kNoJoins : it->second;
}

const std::vector<SelectionEdge>& PersonalizationGraph::SelectionsOn(
    const std::string& table) const {
  auto it = selections_on_.find(table);
  return it == selections_on_.end() ? kNoSelections : it->second;
}

const std::vector<SelectionEdge>& PersonalizationGraph::NegativeSelectionsOn(
    const std::string& table) const {
  auto it = negative_selections_on_.find(table);
  return it == negative_selections_on_.end() ? kNoSelections : it->second;
}

std::string PersonalizationGraph::DebugString() const {
  std::string out;
  // Iterate over schema tables for deterministic ordering.
  for (const TableSchema& table : schema_->tables()) {
    for (const JoinEdge& edge : JoinsFrom(table.name())) {
      out += "join      " + edge.ToString() + "\n";
    }
    for (const SelectionEdge& edge : SelectionsOn(table.name())) {
      out += "selection " + edge.ToString() + "\n";
    }
    for (const SelectionEdge& edge : NegativeSelectionsOn(table.name())) {
      out += "dislike   " + edge.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace qp
