#ifndef QP_GRAPH_PREFERENCE_PATH_H_
#define QP_GRAPH_PREFERENCE_PATH_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "qp/graph/personalization_graph.h"

namespace qp {

/// A directed path in the personalization graph: zero or more composable
/// join edges optionally terminated by one selection edge. Paths anchored
/// at a query tuple variable are the paper's transitive preferences:
/// - joins only            -> transitive join,
/// - joins + selection     -> transitive selection (what preference
///                            selection outputs),
/// - single selection edge -> atomic selection.
/// The degree of interest is the product of the edge degrees (the paper's
/// transitive preference function) and is maintained incrementally.
class PreferencePath {
 public:
  /// An empty path attached to the query variable `anchor_alias`, which
  /// ranges over `anchor_table`. Degree of the empty path is 1.
  PreferencePath(std::string anchor_alias, std::string anchor_table);

  /// The path extended by one more join / terminated by a selection.
  /// Extending requires composability (edge leaves EndTable()) and, for
  /// joins, acyclicity — callers enforce both; asserts in debug builds.
  PreferencePath ExtendedBy(const JoinEdge& edge) const;
  PreferencePath ExtendedBy(const SelectionEdge& edge) const;

  const std::string& anchor_alias() const { return anchor_alias_; }
  const std::string& anchor_table() const { return anchor_table_; }
  const std::vector<JoinEdge>& joins() const { return joins_; }
  const std::optional<SelectionEdge>& selection() const { return selection_; }

  /// True once a selection edge terminates the path (no further
  /// composition is possible).
  bool is_selection() const { return selection_.has_value(); }

  /// True if the terminating selection is a dislike (negative degree);
  /// the path degree is then negative as well.
  bool is_negative() const { return doi_ < 0.0; }

  /// Product of edge degrees; 1 for the empty path. Negative exactly
  /// when the path ends in a negative selection edge.
  double doi() const { return doi_; }

  /// |doi()| — the magnitude used to order dislikes.
  double AbsDoi() const { return doi_ < 0 ? -doi_ : doi_; }

  /// Number of atomic conditions on the path.
  size_t Length() const { return joins_.size() + (is_selection() ? 1 : 0); }

  /// The relation at the end of the join chain (the anchor table when
  /// there are no joins) — where further edges may compose.
  const std::string& EndTable() const;

  /// True if the path's relation nodes (anchor and every join target)
  /// include `table`. Used for cycle pruning.
  bool VisitsTable(const std::string& table) const;

  /// True if all join edges are to-one in the path direction; vacuously
  /// true without joins. Drives syntactic conflict detection and the
  /// tuple-variable sharing rule.
  bool AllJoinsToOne() const;

  /// Condition rendering with table names (no tuple variables), matching
  /// the paper's notation: "MOVIE.mid=GENRE.mid and GENRE.genre='comedy'".
  std::string ConditionString() const;

  /// ConditionString plus the degree: "... <0.81>".
  std::string ToString() const;

  /// True if the two paths have the same anchor variable and edge
  /// sequence (degrees included).
  bool SameShape(const PreferencePath& other) const;

 private:
  std::string anchor_alias_;
  std::string anchor_table_;
  std::vector<JoinEdge> joins_;
  std::optional<SelectionEdge> selection_;
  double doi_ = 1.0;
};

/// Exhaustively enumerates every transitive selection anchored at
/// `anchor_alias` (over `anchor_table`) that expands outwards: acyclic and
/// never entering `forbidden_tables` (pass the query's tables, minus the
/// anchor handling — the anchor table itself is excluded automatically
/// for join targets). This is the brute-force reference used to test the
/// best-first selection algorithm and by the profile inspector example.
std::vector<PreferencePath> EnumerateTransitiveSelections(
    const PersonalizationGraph& graph, const std::string& anchor_alias,
    const std::string& anchor_table,
    const std::unordered_set<std::string>& forbidden_tables);

/// Same exhaustive enumeration for *negative* transitive selections:
/// positive join chains terminated by a dislike edge. Used to derive the
/// conditions personalization penalizes or vetoes.
std::vector<PreferencePath> EnumerateNegativeTransitiveSelections(
    const PersonalizationGraph& graph, const std::string& anchor_alias,
    const std::string& anchor_table,
    const std::unordered_set<std::string>& forbidden_tables);

}  // namespace qp

#endif  // QP_GRAPH_PREFERENCE_PATH_H_
