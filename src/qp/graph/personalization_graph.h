#ifndef QP_GRAPH_PERSONALIZATION_GRAPH_H_
#define QP_GRAPH_PERSONALIZATION_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "qp/pref/profile.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

/// A labelled selection edge of the personalization graph: from an
/// attribute node to a value node, carrying the user's degree of
/// interest. `near_width` > 0 marks a soft (proximity) edge: the value
/// node stands for the numeric neighbourhood of `value`.
struct SelectionEdge {
  AttributeRef attribute;
  Value value;
  double doi = 0.0;
  double near_width = 0.0;

  bool is_near() const { return near_width > 0.0; }

  /// "GENRE.genre='comedy' (0.9)" / "near(MOVIE.year, 1994, 5) (0.8)".
  std::string ToString() const;
};

/// A labelled *directed* join edge: traversal from `from`'s relation to
/// `to`'s relation. The same schema join appears as up to two edges (one
/// per direction), each with its own degree of interest, plus the schema
/// cardinality of the traversal direction.
struct JoinEdge {
  AttributeRef from;
  AttributeRef to;
  double doi = 0.0;
  JoinCardinality cardinality = JoinCardinality::kToMany;

  /// "PLAY.mid=MOVIE.mid (1, to-one)".
  std::string ToString() const;
};

/// The personalization graph of one user (paper Section 3.1): the schema
/// graph extended with the value nodes, selection edges and directed join
/// edges that carry the user's stored degrees of interest. Only edges the
/// profile mentions exist; adjacency lists are kept sorted by decreasing
/// degree of interest, which the selection algorithm relies on.
class PersonalizationGraph {
 public:
  /// Builds the graph for `profile` over `schema`. Validates the profile:
  /// every selection preference must name an existing attribute with a
  /// matching literal type, every join preference must match a declared
  /// schema join (whose directional cardinality is copied onto the edge).
  /// `schema` is retained and must outlive the graph; the profile is not
  /// retained (its edges are copied).
  static Result<PersonalizationGraph> Build(const Schema* schema,
                                            const UserProfile& profile);

  const Schema& schema() const { return *schema_; }

  /// Join edges leaving `table` (any of its attributes), sorted by doi desc.
  const std::vector<JoinEdge>& JoinsFrom(const std::string& table) const;

  /// Positive selection edges on attributes of `table`, sorted by doi
  /// desc. These feed the (positive) preference selection algorithm.
  const std::vector<SelectionEdge>& SelectionsOn(
      const std::string& table) const;

  /// Negative (dislike) selection edges on attributes of `table`, sorted
  /// by |doi| desc. Kept apart from the positive adjacency so the
  /// best-first traversal never mixes the two polarities.
  const std::vector<SelectionEdge>& NegativeSelectionsOn(
      const std::string& table) const;

  size_t num_join_edges() const { return num_join_edges_; }
  size_t num_selection_edges() const { return num_selection_edges_; }
  size_t num_negative_selection_edges() const {
    return num_negative_selection_edges_;
  }

  /// Human-readable dump (one edge per line), for the inspector example.
  std::string DebugString() const;

 private:
  explicit PersonalizationGraph(const Schema* schema) : schema_(schema) {}

  const Schema* schema_;
  std::unordered_map<std::string, std::vector<JoinEdge>> joins_from_;
  std::unordered_map<std::string, std::vector<SelectionEdge>> selections_on_;
  std::unordered_map<std::string, std::vector<SelectionEdge>>
      negative_selections_on_;
  size_t num_join_edges_ = 0;
  size_t num_selection_edges_ = 0;
  size_t num_negative_selection_edges_ = 0;

  static const std::vector<JoinEdge> kNoJoins;
  static const std::vector<SelectionEdge> kNoSelections;
};

}  // namespace qp

#endif  // QP_GRAPH_PERSONALIZATION_GRAPH_H_
