#include "qp/exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "qp/exec/batch_table.h"
#include "qp/pref/doi.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace {

/// A partial assignment of rows to tuple variables; entry i is the row id
/// bound to variable slot i (meaningful only once the slot is bound).
using Binding = std::vector<RowId>;

struct BindingHash {
  size_t operator()(const Binding& b) const {
    size_t h = 0x12345ULL;
    for (RowId id : b) h = h * 1000003ULL ^ id;
    return h;
  }
};

/// One tuple variable being joined, with its pushed-down selections.
struct VarSlot {
  std::string alias;
  const Table* table = nullptr;
  /// (column index, required value) equality selections on this variable.
  std::vector<std::pair<size_t, Value>> selections;
  /// (column index, near condition) soft selections: a row matches while
  /// its satisfaction is > 0; the satisfaction itself scales degrees.
  std::vector<std::pair<size_t, AtomicCondition>> nears;
  bool impossible = false;  // Two selections on the same column disagree.
};

/// A resolved join atom: slots and column indices.
struct ResolvedJoin {
  size_t va, ca, vb, cb;
  bool applied = false;
};

/// Slots + joins for one conjunctive block.
struct BuiltConjunct {
  std::vector<VarSlot> slots;
  std::vector<ResolvedJoin> joins;
  std::unordered_map<std::string, size_t> slot_index;
};

bool RowPassesSlot(const VarSlot& slot, RowId id) {
  for (const auto& [col, value] : slot.selections) {
    if (slot.table->At(id, col) != value) return false;
  }
  for (const auto& [col, near] : slot.nears) {
    if (near.Satisfaction(slot.table->At(id, col)) <= 0.0) return false;
  }
  return true;
}

/// Estimated cardinality of a slot after its selections (index-probed
/// under hash joins).
size_t EstimateSlot(const VarSlot& slot, JoinStrategy strategy) {
  if (slot.selections.empty() || strategy == JoinStrategy::kNestedLoop) {
    return slot.table->num_rows();
  }
  size_t best = slot.table->num_rows();
  for (const auto& [col, value] : slot.selections) {
    best = std::min(best, slot.table->Lookup(col, value).size());
  }
  return best;
}

/// Resolves `vars` and `atoms` into slots with pushed-down selections and
/// resolved join atoms. Every atom must reference only aliases in `vars`.
Result<BuiltConjunct> BuildConjunct(const Database& db,
                                    const std::vector<TupleVariable>& vars,
                                    const std::vector<AtomicCondition>& atoms) {
  // Chaos site covering every disjunct drive (select, compound core and
  // residues). Error mode surfaces as a per-response error; delay mode
  // stalls the disjunct, which under a deadline becomes a truncated —
  // still exact-prefix — result.
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("exec.disjunct"));
  BuiltConjunct built;
  for (const TupleVariable& var : vars) {
    QP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(var.table));
    built.slot_index[var.alias] = built.slots.size();
    built.slots.push_back(VarSlot{var.alias, table, {}, {}, false});
  }
  for (const AtomicCondition& atom : atoms) {
    if (atom.is_selection()) {
      auto it = built.slot_index.find(atom.var());
      if (it == built.slot_index.end()) {
        return Status::Internal("unresolved alias: " + atom.var());
      }
      VarSlot& slot = built.slots[it->second];
      size_t col = *slot.table->schema().ColumnIndex(atom.column());
      for (const auto& [existing_col, existing_value] : slot.selections) {
        if (existing_col == col && existing_value != atom.value()) {
          slot.impossible = true;
        }
      }
      if (!slot.impossible) slot.selections.emplace_back(col, atom.value());
    } else if (atom.is_near()) {
      auto it = built.slot_index.find(atom.var());
      if (it == built.slot_index.end()) {
        return Status::Internal("unresolved alias: " + atom.var());
      }
      VarSlot& slot = built.slots[it->second];
      size_t col = *slot.table->schema().ColumnIndex(atom.column());
      slot.nears.emplace_back(col, atom);
    } else {
      auto left = built.slot_index.find(atom.left_var());
      auto right = built.slot_index.find(atom.right_var());
      if (left == built.slot_index.end() ||
          right == built.slot_index.end()) {
        return Status::Internal("unresolved join alias in " + atom.ToSql());
      }
      size_t va = left->second;
      size_t vb = right->second;
      size_t ca =
          *built.slots[va].table->schema().ColumnIndex(atom.left_column());
      size_t cb =
          *built.slots[vb].table->schema().ColumnIndex(atom.right_column());
      built.joins.push_back(ResolvedJoin{va, ca, vb, cb, false});
    }
  }
  return built;
}

/// Executes one conjunctive SPJ block over the given variable slots,
/// optionally continuing from pre-bound seed bindings (the shared-core
/// optimization for MQ compounds).
class ConjunctRunner {
 public:
  ConjunctRunner(JoinStrategy strategy, ExecutorStats* stats,
                 const CancelToken* cancel = nullptr)
      : strategy_(strategy), stats_(stats), cancel_(cancel) {}

  /// True when the run was cut short by the cancel token. The bindings of
  /// the interrupted join step are discarded (they may have unbound
  /// slots), so a stopped run returns only fully-joined bindings — for a
  /// fresh Run that means none; callers treat the conjunct's output as
  /// incomplete and flag the result truncated.
  bool stopped() const { return stopped_; }

  /// Fresh run: nothing bound yet.
  std::vector<Binding> Run(std::vector<VarSlot> slots,
                           std::vector<ResolvedJoin> joins) {
    slots_ = std::move(slots);
    joins_ = std::move(joins);
    bound_.assign(slots_.size(), false);

    for (const VarSlot& slot : slots_) {
      if (slot.impossible || slot.table->num_rows() == 0) return {};
    }
    size_t seed = CheapestUnbound();
    std::vector<Binding> bindings = Materialize(seed);
    if (stopped_) return {};
    bound_[seed] = true;
    return Loop(std::move(bindings));
  }

  /// Seeded run: `initial` are bindings over the slots marked in `bound`
  /// (core variables already joined). Selections on bound slots and joins
  /// among bound slots are applied as filters first; the remaining slots
  /// are then joined in as usual.
  std::vector<Binding> RunSeeded(std::vector<VarSlot> slots,
                                 std::vector<ResolvedJoin> joins,
                                 std::vector<Binding> initial,
                                 std::vector<bool> bound) {
    slots_ = std::move(slots);
    joins_ = std::move(joins);
    bound_ = std::move(bound);

    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].impossible) return {};
      if (!bound_[i] && slots_[i].table->num_rows() == 0) return {};
    }
    // Part-specific selections on already-bound (core) variables.
    std::vector<Binding> bindings;
    bindings.reserve(initial.size());
    for (Binding& b : initial) {
      if (PollCancelStrided()) break;
      bool keep = true;
      for (size_t i = 0; i < slots_.size() && keep; ++i) {
        if (!bound_[i]) continue;
        if (slots_[i].selections.empty() && slots_[i].nears.empty()) continue;
        keep = RowPassesSlot(slots_[i], b[i]);
      }
      if (keep) bindings.push_back(std::move(b));
    }
    if (stopped_) return {};
    ApplyNewlyBoundJoins(&bindings);
    return Loop(std::move(bindings));
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);
  /// Rows between cancel polls in the inner row loops. Small enough that
  /// a tripped deadline stops within microseconds, large enough that the
  /// atomic loads never show up in profiles.
  static constexpr uint64_t kPollStride = 128;

  /// Direct cancel poll, used at coarse boundaries (once per join step).
  /// Sticky: once tripped the runner stays stopped.
  bool PollCancel() {
    if (stopped_) return true;
    if (cancel_ != nullptr && cancel_->ShouldStop()) stopped_ = true;
    return stopped_;
  }

  /// Row-loop poll: consults the token every kPollStride calls.
  bool PollCancelStrided() {
    if (stopped_) return true;
    if (cancel_ == nullptr) return false;
    if ((++poll_counter_ % kPollStride) != 0) return false;
    return PollCancel();
  }

  std::vector<Binding> Loop(std::vector<Binding> bindings) {
    while (true) {
      // Stopping between join steps discards the in-flight bindings:
      // they may have unbound slots and must not surface as rows.
      if (PollCancel()) return {};
      if (bindings.empty()) return {};
      size_t next = PickNextJoined();
      if (next == kNone) {
        next = CheapestUnbound();
        if (next == kNone) break;  // All bound.
        bindings = CrossProduct(std::move(bindings), next);
      } else {
        bindings = JoinStep(std::move(bindings), next);
      }
      if (stopped_) return {};
      bound_[next] = true;
      ApplyNewlyBoundJoins(&bindings);
    }
    return bindings;
  }

  size_t Estimate(size_t slot_index) const {
    return EstimateSlot(slots_[slot_index], strategy_);
  }

  size_t CheapestUnbound() const {
    size_t best = kNone;
    size_t best_cost = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (bound_[i]) continue;
      size_t cost = Estimate(i);
      if (best == kNone || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    return best;
  }

  /// The unbound slot reachable through a join atom from a bound slot
  /// with the smallest estimate; kNone if the join graph is exhausted.
  size_t PickNextJoined() const {
    size_t best = kNone;
    size_t best_cost = 0;
    for (const ResolvedJoin& join : joins_) {
      size_t target = kNone;
      if (bound_[join.va] && !bound_[join.vb]) target = join.vb;
      if (bound_[join.vb] && !bound_[join.va]) target = join.va;
      if (target == kNone) continue;
      size_t cost = Estimate(target);
      if (best == kNone || cost < best_cost) {
        best = target;
        best_cost = cost;
      }
    }
    return best;
  }

  /// All rows of slot `i` passing its selections, as 1-variable bindings
  /// (padded to full width).
  std::vector<Binding> Materialize(size_t i) {
    const VarSlot& slot = slots_[i];
    std::vector<Binding> out;
    auto emit = [&](RowId id) {
      Binding b(slots_.size(), 0);
      b[i] = id;
      out.push_back(std::move(b));
    };
    if (!slot.selections.empty() && strategy_ == JoinStrategy::kHashJoin) {
      // Probe the most selective index, re-check the rest.
      size_t best_col = 0;
      size_t best_size = static_cast<size_t>(-1);
      for (size_t s = 0; s < slot.selections.size(); ++s) {
        size_t size = slot.table
                          ->Lookup(slot.selections[s].first,
                                   slot.selections[s].second)
                          .size();
        if (size < best_size) {
          best_size = size;
          best_col = s;
        }
      }
      for (RowId id : slot.table->Lookup(slot.selections[best_col].first,
                                         slot.selections[best_col].second)) {
        if (PollCancelStrided()) break;
        if (RowPassesSlot(slot, id)) emit(id);
      }
    } else {
      for (RowId id = 0; id < slot.table->num_rows(); ++id) {
        if (PollCancelStrided()) break;
        if (RowPassesSlot(slot, id)) emit(id);
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  std::vector<Binding> CrossProduct(std::vector<Binding> bindings, size_t i) {
    std::vector<Binding> rows = Materialize(i);
    std::vector<Binding> out;
    out.reserve(bindings.size() * rows.size());
    for (const Binding& b : bindings) {
      if (PollCancelStrided()) break;
      for (const Binding& r : rows) {
        Binding merged = b;
        merged[i] = r[i];
        out.push_back(std::move(merged));
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  /// Extends bindings through a join atom that connects a bound slot to
  /// `target` (the first such atom probes; the rest are checked by
  /// ApplyNewlyBoundJoins).
  std::vector<Binding> JoinStep(std::vector<Binding> bindings, size_t target) {
    const ResolvedJoin* probe = nullptr;
    for (const ResolvedJoin& join : joins_) {
      bool forward = bound_[join.va] && join.vb == target;
      bool backward = bound_[join.vb] && join.va == target;
      if (forward || backward) {
        probe = &join;
        break;
      }
    }
    // probe != nullptr by construction of PickNextJoined.
    size_t source = probe->va == target ? probe->vb : probe->va;
    size_t source_col = probe->va == target ? probe->cb : probe->ca;
    size_t target_col = probe->va == target ? probe->ca : probe->cb;

    const VarSlot& slot = slots_[target];
    std::vector<Binding> out;
    for (const Binding& b : bindings) {
      if (PollCancelStrided()) break;
      const Value& key = slots_[source].table->At(b[source], source_col);
      if (strategy_ == JoinStrategy::kHashJoin) {
        for (RowId id : slot.table->Lookup(target_col, key)) {
          if (!RowPassesSlot(slot, id)) continue;
          Binding merged = b;
          merged[target] = id;
          out.push_back(std::move(merged));
        }
      } else {
        for (RowId id = 0; id < slot.table->num_rows(); ++id) {
          if (slot.table->At(id, target_col) != key) continue;
          if (!RowPassesSlot(slot, id)) continue;
          Binding merged = b;
          merged[target] = id;
          out.push_back(std::move(merged));
        }
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  /// Filters bindings by join atoms whose two sides just became bound.
  void ApplyNewlyBoundJoins(std::vector<Binding>* bindings) {
    for (ResolvedJoin& join : joins_) {
      if (join.applied || !bound_[join.va] || !bound_[join.vb]) continue;
      join.applied = true;
      std::vector<Binding> kept;
      kept.reserve(bindings->size());
      for (Binding& b : *bindings) {
        if (slots_[join.va].table->At(b[join.va], join.ca) ==
            slots_[join.vb].table->At(b[join.vb], join.cb)) {
          kept.push_back(std::move(b));
        }
      }
      *bindings = std::move(kept);
    }
  }

  JoinStrategy strategy_;
  ExecutorStats* stats_;
  const CancelToken* cancel_;
  bool stopped_ = false;
  uint64_t poll_counter_ = 0;
  std::vector<VarSlot> slots_;
  std::vector<ResolvedJoin> joins_;
  std::vector<bool> bound_;
};

/// Columnar twin of ConjunctRunner: the working set is a BatchTable with
/// one contiguous RowId column per slot instead of a vector of per-row
/// Binding allocations. Join steps emit (source row, matched id) index
/// pairs and gather the surviving columns in one pass; slots whose column
/// no later join or projection needs are dropped after each step so wide
/// conjuncts narrow as they go. Stats counters are bumped at the exact
/// sites ConjunctRunner bumps them (Materialize, cross product, probe
/// output), so both engines report identical ExecutorStats.
class BatchRunner {
 public:
  BatchRunner(JoinStrategy strategy, ExecutorStats* stats,
              const CancelToken* cancel = nullptr)
      : strategy_(strategy), stats_(stats), cancel_(cancel) {}

  /// Same contract as ConjunctRunner::stopped(): a stopped run discards
  /// the in-flight batch and returns an empty one.
  bool stopped() const { return stopped_; }

  /// Fresh run. `needed[i]` marks slots whose column must survive to the
  /// end (projections, near conditions, dedup keys); the rest may be
  /// dropped once every join touching them has been applied.
  BatchTable Run(std::vector<VarSlot> slots, std::vector<ResolvedJoin> joins,
                 std::vector<bool> needed) {
    const size_t width = slots.size();
    slots_ = std::move(slots);
    joins_ = std::move(joins);
    needed_ = std::move(needed);
    bound_.assign(width, false);
    batch_ = BatchTable(width);

    for (const VarSlot& slot : slots_) {
      if (slot.impossible || slot.table->num_rows() == 0) {
        return BatchTable(width);
      }
    }
    size_t seed = CheapestUnbound();
    std::vector<RowId> ids = MaterializeIds(seed);
    if (stopped_) return BatchTable(width);
    batch_.SetColumn(seed, BatchColumn::RowIds(std::move(ids)));
    bound_[seed] = true;
    return Loop();
  }

  /// Seeded run over an initial batch whose `bound` slots carry core
  /// bindings (the shared-core optimization).
  BatchTable RunSeeded(std::vector<VarSlot> slots,
                       std::vector<ResolvedJoin> joins, BatchTable initial,
                       std::vector<bool> bound, std::vector<bool> needed) {
    const size_t width = slots.size();
    slots_ = std::move(slots);
    joins_ = std::move(joins);
    needed_ = std::move(needed);
    bound_ = std::move(bound);
    batch_ = std::move(initial);

    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].impossible) return BatchTable(width);
      if (!bound_[i] && slots_[i].table->num_rows() == 0) {
        return BatchTable(width);
      }
    }
    // Part-specific selections on already-bound (core) variables.
    std::vector<uint8_t> keep(batch_.num_rows(), 1);
    for (size_t r = 0; r < batch_.num_rows(); ++r) {
      if (PollCancelStrided()) break;
      bool ok = true;
      for (size_t i = 0; i < slots_.size() && ok; ++i) {
        if (!bound_[i]) continue;
        if (slots_[i].selections.empty() && slots_[i].nears.empty()) continue;
        ok = RowPassesSlot(slots_[i], batch_.column(i).row_id_at(r));
      }
      keep[r] = ok ? 1 : 0;
    }
    if (stopped_) return BatchTable(width);
    batch_.FilterRows(keep);
    ApplyNewlyBoundJoins();
    return Loop();
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);
  static constexpr uint64_t kPollStride = 128;

  bool PollCancel() {
    if (stopped_) return true;
    if (cancel_ != nullptr && cancel_->ShouldStop()) stopped_ = true;
    return stopped_;
  }

  bool PollCancelStrided() {
    if (stopped_) return true;
    if (cancel_ == nullptr) return false;
    if ((++poll_counter_ % kPollStride) != 0) return false;
    return PollCancel();
  }

  BatchTable Loop() {
    const size_t width = slots_.size();
    while (true) {
      // Stopping between join steps discards the in-flight batch: it may
      // have unbound slots and must not surface as rows.
      if (PollCancel()) return BatchTable(width);
      if (batch_.num_rows() == 0) return BatchTable(width);
      size_t next = PickNextJoined();
      if (next == kNone) {
        next = CheapestUnbound();
        if (next == kNone) break;  // All bound.
        CrossProductStep(next);
      } else {
        JoinStep(next);
      }
      if (stopped_) return BatchTable(width);
      bound_[next] = true;
      ApplyNewlyBoundJoins();
      DropDeadColumns();
    }
    return std::move(batch_);
  }

  size_t Estimate(size_t slot_index) const {
    return EstimateSlot(slots_[slot_index], strategy_);
  }

  size_t CheapestUnbound() const {
    size_t best = kNone;
    size_t best_cost = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (bound_[i]) continue;
      size_t cost = Estimate(i);
      if (best == kNone || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    return best;
  }

  size_t PickNextJoined() const {
    size_t best = kNone;
    size_t best_cost = 0;
    for (const ResolvedJoin& join : joins_) {
      size_t target = kNone;
      if (bound_[join.va] && !bound_[join.vb]) target = join.vb;
      if (bound_[join.vb] && !bound_[join.va]) target = join.va;
      if (target == kNone) continue;
      size_t cost = Estimate(target);
      if (best == kNone || cost < best_cost) {
        best = target;
        best_cost = cost;
      }
    }
    return best;
  }

  /// Row ids of slot `i` passing its selections — the column-oriented
  /// Materialize (no per-row Binding allocations).
  std::vector<RowId> MaterializeIds(size_t i) {
    const VarSlot& slot = slots_[i];
    std::vector<RowId> out;
    if (!slot.selections.empty() && strategy_ == JoinStrategy::kHashJoin) {
      size_t best_col = 0;
      size_t best_size = static_cast<size_t>(-1);
      for (size_t s = 0; s < slot.selections.size(); ++s) {
        size_t size = slot.table
                          ->Lookup(slot.selections[s].first,
                                   slot.selections[s].second)
                          .size();
        if (size < best_size) {
          best_size = size;
          best_col = s;
        }
      }
      for (RowId id : slot.table->Lookup(slot.selections[best_col].first,
                                         slot.selections[best_col].second)) {
        if (PollCancelStrided()) break;
        if (RowPassesSlot(slot, id)) out.push_back(id);
      }
    } else {
      for (RowId id = 0; id < slot.table->num_rows(); ++id) {
        if (PollCancelStrided()) break;
        if (RowPassesSlot(slot, id)) out.push_back(id);
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  void CrossProductStep(size_t i) {
    std::vector<RowId> ids = MaterializeIds(i);
    const size_t n = batch_.num_rows();
    const size_t m = ids.size();
    std::vector<uint32_t> base;
    std::vector<RowId> tiled;
    base.reserve(n * m);
    tiled.reserve(n * m);
    for (size_t b = 0; b < n; ++b) {
      if (PollCancelStrided()) break;
      for (size_t r = 0; r < m; ++r) {
        base.push_back(static_cast<uint32_t>(b));
        tiled.push_back(ids[r]);
      }
    }
    batch_ = batch_.GatherRows(base);
    batch_.SetColumn(i, BatchColumn::RowIds(std::move(tiled)));
    if (stats_ != nullptr) stats_->bindings += batch_.num_rows();
  }

  /// Probes `target` through the first join atom connecting it to a bound
  /// slot (the rest are checked by ApplyNewlyBoundJoins), gathering the
  /// surviving rows column-wise.
  void JoinStep(size_t target) {
    const ResolvedJoin* probe = nullptr;
    for (const ResolvedJoin& join : joins_) {
      bool forward = bound_[join.va] && join.vb == target;
      bool backward = bound_[join.vb] && join.va == target;
      if (forward || backward) {
        probe = &join;
        break;
      }
    }
    // probe != nullptr by construction of PickNextJoined.
    size_t source = probe->va == target ? probe->vb : probe->va;
    size_t source_col = probe->va == target ? probe->cb : probe->ca;
    size_t target_col = probe->va == target ? probe->ca : probe->cb;

    const VarSlot& slot = slots_[target];
    const Table* source_table = slots_[source].table;
    const BatchColumn& src = batch_.column(source);
    const size_t n = batch_.num_rows();
    std::vector<uint32_t> base;
    std::vector<RowId> matched;
    for (size_t b = 0; b < n; ++b) {
      if (PollCancelStrided()) break;
      const Value& key = source_table->At(src.row_id_at(b), source_col);
      if (strategy_ == JoinStrategy::kHashJoin) {
        for (RowId id : slot.table->Lookup(target_col, key)) {
          if (!RowPassesSlot(slot, id)) continue;
          base.push_back(static_cast<uint32_t>(b));
          matched.push_back(id);
        }
      } else {
        for (RowId id = 0; id < slot.table->num_rows(); ++id) {
          if (slot.table->At(id, target_col) != key) continue;
          if (!RowPassesSlot(slot, id)) continue;
          base.push_back(static_cast<uint32_t>(b));
          matched.push_back(id);
        }
      }
    }
    batch_ = batch_.GatherRows(base);
    batch_.SetColumn(target, BatchColumn::RowIds(std::move(matched)));
    if (stats_ != nullptr) stats_->bindings += batch_.num_rows();
  }

  /// Filters the batch by join atoms whose two sides just became bound.
  void ApplyNewlyBoundJoins() {
    for (ResolvedJoin& join : joins_) {
      if (join.applied || !bound_[join.va] || !bound_[join.vb]) continue;
      join.applied = true;
      const size_t n = batch_.num_rows();
      std::vector<uint8_t> keep(n);
      const BatchColumn& a = batch_.column(join.va);
      const BatchColumn& b = batch_.column(join.vb);
      for (size_t r = 0; r < n; ++r) {
        keep[r] = slots_[join.va].table->At(a.row_id_at(r), join.ca) ==
                          slots_[join.vb].table->At(b.row_id_at(r), join.cb)
                      ? 1
                      : 0;
      }
      batch_.FilterRows(keep);
    }
  }

  /// Drops bound columns that no projection/near needs and no unapplied
  /// join references (z3's delete_columns idiom) — later gathers and
  /// filters then move strictly narrower batches.
  void DropDeadColumns() {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!bound_[i] || !batch_.has_column(i) || needed_[i]) continue;
      bool referenced = false;
      for (const ResolvedJoin& join : joins_) {
        if (join.applied) continue;
        if (join.va == i || join.vb == i) {
          referenced = true;
          break;
        }
      }
      if (!referenced) batch_.DropColumn(i);
    }
  }

  JoinStrategy strategy_;
  ExecutorStats* stats_;
  const CancelToken* cancel_;
  bool stopped_ = false;
  uint64_t poll_counter_ = 0;
  std::vector<VarSlot> slots_;
  std::vector<ResolvedJoin> joins_;
  std::vector<bool> bound_;
  std::vector<bool> needed_;
  BatchTable batch_;
};

/// Variable aliases referenced by a conjunct plus the projections.
std::unordered_set<std::string> UsedAliases(
    const std::vector<AtomicCondition>& atoms,
    const std::vector<ProjectionItem>& projections) {
  std::unordered_set<std::string> used;
  for (const auto& atom : atoms) {
    for (auto& var : atom.ReferencedVars()) used.insert(std::move(var));
  }
  for (const auto& item : projections) used.insert(item.var);
  return used;
}

/// Product of the satisfactions of every near condition pushed into
/// `slots`, evaluated on one binding. 1 when there are none.
double BindingSatisfaction(const std::vector<VarSlot>& slots,
                           const Binding& binding) {
  double sat = 1.0;
  for (size_t i = 0; i < slots.size(); ++i) {
    for (const auto& [col, near] : slots[i].nears) {
      sat *= near.Satisfaction(slots[i].table->At(binding[i], col));
    }
  }
  return sat;
}

bool HasNearAtom(const std::vector<AtomicCondition>& atoms) {
  for (const AtomicCondition& atom : atoms) {
    if (atom.is_near()) return true;
  }
  return false;
}

/// Projects one binding according to `projections`.
Row ProjectBinding(const std::vector<VarSlot>& slots,
                   const std::vector<ProjectionItem>& projections,
                   const Binding& binding) {
  Row row;
  row.reserve(projections.size());
  for (const auto& item : projections) {
    size_t slot = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alias == item.var) {
        slot = i;
        break;
      }
    }
    size_t col = *slots[slot].table->schema().ColumnIndex(item.column);
    row.push_back(slots[slot].table->At(binding[slot], col));
  }
  return row;
}

/// Which slots' columns must survive a batch run: projected slots and
/// slots carrying near conditions (needed for BatchSatisfactions). Pass
/// `all` for paths that dedup at the binding level across disjuncts.
std::vector<bool> NeededSlots(const std::vector<VarSlot>& slots,
                              const std::vector<ProjectionItem>& projections,
                              bool all) {
  std::vector<bool> needed(slots.size(), all);
  if (all) return needed;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].nears.empty()) needed[i] = true;
    for (const auto& item : projections) {
      if (slots[i].alias == item.var) needed[i] = true;
    }
  }
  return needed;
}

/// Late materialization: projects a whole batch in one column-at-a-time
/// pass (each projected payload column is gathered from its base table
/// once), then assembles the output rows.
std::vector<Row> ProjectBatch(const std::vector<VarSlot>& slots,
                              const std::vector<ProjectionItem>& projections,
                              const BatchTable& batch) {
  std::vector<Row> rows(batch.num_rows());
  if (batch.num_rows() == 0) return rows;
  for (Row& row : rows) row.reserve(projections.size());
  for (const auto& item : projections) {
    size_t slot = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alias == item.var) {
        slot = i;
        break;
      }
    }
    size_t col = *slots[slot].table->schema().ColumnIndex(item.column);
    BatchColumn payload = BatchColumn::FromTable(
        *slots[slot].table, col, batch.column(slot).row_ids());
    for (size_t r = 0; r < rows.size(); ++r) {
      rows[r].push_back(payload.ValueAt(r));
    }
  }
  return rows;
}

/// Batch twin of BindingSatisfaction: per-row product of every near
/// condition's satisfaction, multiplying factors in the same (slot, near)
/// order so the doubles are bit-identical to the tuple engine's.
std::vector<double> BatchSatisfactions(const std::vector<VarSlot>& slots,
                                       const BatchTable& batch) {
  std::vector<double> sat(batch.num_rows(), 1.0);
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].nears.empty()) continue;
    const std::vector<RowId>& ids = batch.column(i).row_ids();
    for (const auto& [col, near] : slots[i].nears) {
      for (size_t r = 0; r < ids.size(); ++r) {
        sat[r] *= near.Satisfaction(slots[i].table->At(ids[r], col));
      }
    }
  }
  return sat;
}

/// Analysis result of the shared-core optimization: the conjunctive block
/// common to every part of an MQ compound, plus each part's residue.
struct SharedCorePlan {
  std::vector<TupleVariable> core_vars;
  std::vector<AtomicCondition> core_atoms;
  struct PartResidue {
    std::vector<TupleVariable> extra_vars;
    std::vector<AtomicCondition> extra_atoms;
    std::vector<AtomicCondition> all_atoms;  // Full conjunct of the part.
  };
  std::vector<PartResidue> parts;
};

bool Contains(const std::vector<TupleVariable>& vars,
              const TupleVariable& var) {
  for (const TupleVariable& v : vars) {
    if (v == var) return true;
  }
  return false;
}

bool ContainsAtom(const std::vector<AtomicCondition>& atoms,
                  const AtomicCondition& atom) {
  for (const AtomicCondition& a : atoms) {
    if (a == atom) return true;
  }
  return false;
}

/// Returns the plan, or nullopt when the optimization does not apply
/// (OR-qualifications, non-distinct parts, or no common block). Parts
/// built by PreferenceIntegrator always qualify: they share the original
/// query verbatim and add one conjunctive preference chain each.
std::optional<SharedCorePlan> PlanSharedCore(const CompoundQuery& query) {
  if (query.parts().size() < 2) return std::nullopt;

  std::vector<std::vector<AtomicCondition>> part_atoms;
  for (const CompoundPart& part : query.parts()) {
    if (!part.query.distinct()) return std::nullopt;
    auto dnf = ToDnf(part.query.where());
    if (dnf.size() != 1) return std::nullopt;
    part_atoms.push_back(std::move(dnf[0]));
  }

  SharedCorePlan plan;
  // Core variables: present (same alias, same table) in every part.
  const auto& first = query.parts()[0].query;
  for (const TupleVariable& var : first.from()) {
    bool everywhere = true;
    for (size_t p = 1; p < query.parts().size() && everywhere; ++p) {
      const TupleVariable* found =
          query.parts()[p].query.FindVariable(var.alias);
      everywhere = found != nullptr && found->table == var.table;
    }
    if (everywhere) plan.core_vars.push_back(var);
  }
  if (plan.core_vars.empty()) return std::nullopt;

  // Core atoms: in every part and confined to core variables.
  for (const AtomicCondition& atom : part_atoms[0]) {
    bool core = true;
    for (const std::string& alias : atom.ReferencedVars()) {
      if (std::none_of(plan.core_vars.begin(), plan.core_vars.end(),
                       [&](const TupleVariable& v) {
                         return v.alias == alias;
                       })) {
        core = false;
        break;
      }
    }
    if (!core) continue;
    for (size_t p = 1; p < part_atoms.size() && core; ++p) {
      core = ContainsAtom(part_atoms[p], atom);
    }
    if (core && !ContainsAtom(plan.core_atoms, atom)) {
      plan.core_atoms.push_back(atom);
    }
  }

  // Residues.
  for (size_t p = 0; p < query.parts().size(); ++p) {
    SharedCorePlan::PartResidue residue;
    for (const TupleVariable& var : query.parts()[p].query.from()) {
      if (!Contains(plan.core_vars, var)) residue.extra_vars.push_back(var);
    }
    for (const AtomicCondition& atom : part_atoms[p]) {
      if (!ContainsAtom(plan.core_atoms, atom)) {
        residue.extra_atoms.push_back(atom);
      }
    }
    residue.all_atoms = part_atoms[p];
    plan.parts.push_back(std::move(residue));
  }
  return plan;
}

/// Per-row accumulation state for compound grouping/ranking, shared by
/// both engines.
struct CompoundGroup {
  size_t count = 0;                // Positive parts only (count(*)).
  ConjunctiveAccumulator degree;   // Positive parts' degrees.
  ConjunctiveAccumulator dislike;  // |degree| of negative parts.
};
using CompoundGroupMap =
    std::unordered_map<Row, CompoundGroup, RowHash, RowEq>;

void AccumulateGroup(CompoundGroupMap* groups, const Row& row,
                     double part_degree) {
  CompoundGroup& group = (*groups)[row];
  if (part_degree < 0.0) {
    group.dislike.Add(-part_degree);
  } else {
    ++group.count;
    group.degree.Add(part_degree);
  }
}

/// Grouping, HAVING, dislike vetoes and ranking over the accumulated
/// groups — the engine-independent tail of compound execution.
ResultSet BuildCompoundResult(
    const CompoundQuery& query, const CompoundGroupMap& groups,
    const std::unordered_set<Row, RowHash, RowEq>& vetoed, bool truncated) {
  std::vector<std::string> columns;
  if (!query.parts().empty()) {
    for (const auto& item : query.parts()[0].query.projections()) {
      columns.push_back(item.OutputName());
    }
  }
  ResultSet out(std::move(columns));
  for (const auto& [row, group] : groups) {
    if (vetoed.contains(row)) continue;
    // A row produced only by penalty parts satisfies no positive
    // preference; it is not part of the personalized answer.
    if (group.count == 0 && !query.parts().empty()) continue;
    // Signed combined degree: likes minus dislikes (SignedCombinedDoi).
    double combined = group.degree.Degree() - group.dislike.Degree();
    switch (query.having().kind) {
      case HavingClause::Kind::kNone:
        break;
      case HavingClause::Kind::kCountAtLeast:
        if (group.count < query.having().min_count) continue;
        break;
      case HavingClause::Kind::kDegreeAbove:
        if (combined <= query.having().min_degree) continue;
        break;
    }
    out.AddRankedRow(row, group.count, combined);
  }
  out.set_truncated(truncated);
  out.Canonicalize();
  return out;
}

}  // namespace

void Executor::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_disjuncts_ = nullptr;
    metric_bindings_ = nullptr;
    metric_raw_rows_ = nullptr;
    metric_core_reuses_ = nullptr;
    return;
  }
  metric_disjuncts_ = registry->counter("qp_exec_disjuncts_total");
  metric_bindings_ = registry->counter("qp_exec_bindings_total");
  metric_raw_rows_ = registry->counter("qp_exec_raw_rows_total");
  metric_core_reuses_ = registry->counter("qp_exec_core_reuses_total");
}

void Executor::FinishOuterExecute(obs::ScopedSpan* span,
                                  const ExecutorStats& entry,
                                  const ExecutorStats& exit,
                                  const Result<ResultSet>& result) const {
  const size_t disjuncts = exit.disjuncts - entry.disjuncts;
  const size_t bindings = exit.bindings - entry.bindings;
  const size_t raw_rows = exit.raw_rows - entry.raw_rows;
  const size_t core_reuses = exit.core_reuses - entry.core_reuses;
  span->Counter("disjuncts", disjuncts);
  span->Counter("bindings", bindings);
  span->Counter("raw_rows", raw_rows);
  span->Counter("core_reuses", core_reuses);
  span->Counter("rows", result.ok() ? result.value().num_rows() : 0);
  span->Counter("truncated",
                result.ok() && result.value().truncated() ? 1 : 0);
  span->End();
  if (metric_disjuncts_ != nullptr) metric_disjuncts_->Add(disjuncts);
  if (metric_bindings_ != nullptr) metric_bindings_->Add(bindings);
  if (metric_raw_rows_ != nullptr) metric_raw_rows_->Add(raw_rows);
  if (metric_core_reuses_ != nullptr) metric_core_reuses_->Add(core_reuses);
}

Result<ResultSet> Executor::Execute(const SelectQuery& query,
                                    ExecutorStats* stats) const {
  ExecutorStats local;
  if (stats == nullptr) stats = &local;
  // Recursive frames (compound parts / exclusions) skip straight to the
  // body: the outermost frame already owns the span and metric flush, and
  // the shared stats pointer is only ever bumped at the working site.
  if (exec_depth_ > 0) return ExecuteSelect(query, stats);

  obs::ScopedSpan span(trace_, "execution");
  const ExecutorStats entry = *stats;
  ++exec_depth_;
  Result<ResultSet> result = ExecuteSelect(query, stats);
  --exec_depth_;
  FinishOuterExecute(&span, entry, *stats, result);
  return result;
}

Result<ResultSet> Executor::Execute(const CompoundQuery& query,
                                    ExecutorStats* stats) const {
  ExecutorStats local;
  if (stats == nullptr) stats = &local;
  if (exec_depth_ > 0) return ExecuteCompound(query, stats);

  obs::ScopedSpan span(trace_, "execution");
  const ExecutorStats entry = *stats;
  ++exec_depth_;
  Result<ResultSet> result = ExecuteCompound(query, stats);
  --exec_depth_;
  FinishOuterExecute(&span, entry, *stats, result);
  return result;
}

Result<ResultSet> Executor::ExecuteSelect(const SelectQuery& query,
                                          ExecutorStats* stats) const {
  return exec_ == ExecStrategy::kVectorized ? ExecuteSelectVec(query, stats)
                                            : ExecuteSelectTuple(query, stats);
}

Result<ResultSet> Executor::ExecuteCompound(const CompoundQuery& query,
                                            ExecutorStats* stats) const {
  return exec_ == ExecStrategy::kVectorized
             ? ExecuteCompoundVec(query, stats)
             : ExecuteCompoundTuple(query, stats);
}

Status Executor::CollectExclusions(
    const CompoundQuery& query, ExecutorStats* stats,
    std::unordered_set<Row, RowHash, RowEq>* vetoed, bool* truncated) const {
  // EXCEPT blocks: any row an exclusion query returns is vetoed. Once
  // cancelled, remaining exclusions are skipped — dislike vetoes are then
  // under-applied, which the truncated flag reports.
  for (const SelectQuery& exclusion : query.exclusions()) {
    if (*truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
      *truncated = true;
      break;
    }
    QP_ASSIGN_OR_RETURN(ResultSet excluded, Execute(exclusion, stats));
    if (excluded.truncated()) *truncated = true;
    for (const Row& row : excluded.rows()) {
      vetoed->insert(row);
    }
  }
  return Status::Ok();
}

Result<ResultSet> Executor::ExecuteSelectTuple(const SelectQuery& query,
                                               ExecutorStats* stats) const {
  QP_RETURN_IF_ERROR(query.Validate(db_->schema()));

  std::vector<std::string> columns;
  for (const auto& item : query.projections()) {
    columns.push_back(item.OutputName());
  }
  ResultSet out(columns);

  // SQL semantics: any empty FROM table empties the whole product.
  for (const TupleVariable& var : query.from()) {
    QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(var.table));
    if (table->num_rows() == 0) return out;
  }

  std::vector<std::vector<AtomicCondition>> dnf = ToDnf(query.where());

  // Cooperative cancellation: a stopped runner discards the conjunct's
  // in-flight bindings (only fully-joined rows ever surface), and the
  // whole result is flagged truncated.
  bool truncated = false;
  auto run_conjunct = [&](const std::vector<AtomicCondition>& atoms,
                          const std::unordered_set<std::string>* subset)
      -> Result<std::pair<std::vector<VarSlot>, std::vector<Binding>>> {
    std::vector<TupleVariable> vars;
    for (const TupleVariable& var : query.from()) {
      if (subset != nullptr && !subset->contains(var.alias)) continue;
      vars.push_back(var);
    }
    QP_ASSIGN_OR_RETURN(BuiltConjunct built,
                        BuildConjunct(*db_, vars, atoms));
    if (stats != nullptr) ++stats->disjuncts;
    obs::ScopedSpan disjunct_span(trace_, "disjunct");
    ConjunctRunner runner(strategy_, stats, cancel_);
    std::vector<Binding> bindings =
        runner.Run(built.slots, std::move(built.joins));
    if (runner.stopped()) truncated = true;
    disjunct_span.Counter("rows", bindings.size());
    disjunct_span.Counter("stopped", runner.stopped() ? 1 : 0);
    return std::make_pair(std::move(built.slots), std::move(bindings));
  };

  // Soft (near) conditions produce a per-row satisfaction column; a row
  // reached through several bindings or disjuncts keeps its best match.
  bool has_near = false;
  {
    std::vector<AtomicCondition> atoms;
    if (query.where() != nullptr) query.where()->CollectAtoms(&atoms);
    has_near = HasNearAtom(atoms);
  }
  std::vector<double> satisfactions;

  if (query.distinct()) {
    std::unordered_map<Row, double, RowHash, RowEq> best;
    std::unordered_set<Row, RowHash, RowEq> seen;
    for (const auto& disjunct : dnf) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining disjuncts skipped.
        break;
      }
      std::unordered_set<std::string> used =
          UsedAliases(disjunct, query.projections());
      QP_ASSIGN_OR_RETURN(auto result, run_conjunct(disjunct, &used));
      const auto& [slots, bindings] = result;
      if (stats != nullptr) stats->raw_rows += bindings.size();
      for (const Binding& b : bindings) {
        Row row = ProjectBinding(slots, query.projections(), b);
        if (has_near) {
          double sat = BindingSatisfaction(slots, b);
          auto [it, inserted] = best.emplace(std::move(row), sat);
          if (!inserted && sat > it->second) it->second = sat;
        } else if (seen.insert(row).second) {
          out.AddRow(std::move(row));
        }
      }
    }
    if (has_near) {
      for (auto& [row, sat] : best) {
        out.AddRow(row);
        satisfactions.push_back(sat);
      }
    }
  } else if (dnf.size() == 1) {
    QP_ASSIGN_OR_RETURN(auto result, run_conjunct(dnf[0], nullptr));
    const auto& [slots, bindings] = result;
    if (stats != nullptr) stats->raw_rows += bindings.size();
    for (const Binding& b : bindings) {
      out.AddRow(ProjectBinding(slots, query.projections(), b));
      if (has_near) satisfactions.push_back(BindingSatisfaction(slots, b));
    }
  } else {
    // OR over the full variable product without DISTINCT: deduplicate at
    // the binding level so each satisfying assignment counts once.
    std::unordered_map<Binding, double, BindingHash> seen;
    std::vector<VarSlot> full_slots;
    for (const auto& disjunct : dnf) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining disjuncts skipped.
        break;
      }
      QP_ASSIGN_OR_RETURN(auto result, run_conjunct(disjunct, nullptr));
      auto& [slots, bindings] = result;
      if (stats != nullptr) stats->raw_rows += bindings.size();
      for (Binding& b : bindings) {
        double sat = has_near ? BindingSatisfaction(slots, b) : 1.0;
        auto [it, inserted] = seen.emplace(std::move(b), sat);
        if (!inserted && sat > it->second) it->second = sat;
      }
      full_slots = std::move(slots);
    }
    for (const auto& [b, sat] : seen) {
      out.AddRow(ProjectBinding(full_slots, query.projections(), b));
      if (has_near) satisfactions.push_back(sat);
    }
  }

  if (has_near) out.set_satisfactions(std::move(satisfactions));
  out.set_truncated(truncated);
  out.Canonicalize();
  return out;
}

Result<ResultSet> Executor::ExecuteCompoundTuple(const CompoundQuery& query,
                                                 ExecutorStats* stats) const {
  QP_RETURN_IF_ERROR(query.Validate(db_->schema()));

  CompoundGroupMap groups;
  auto accumulate = [&](const Row& row, double part_degree) {
    AccumulateGroup(&groups, row, part_degree);
  };

  // A compound is truncated when any constituent execution was cut short
  // or whole parts/exclusions were skipped: counts and degrees are then
  // under-accumulated and dislike vetoes may be under-applied, but every
  // emitted row is still a genuine answer of some part.
  bool truncated = false;

  std::optional<SharedCorePlan> plan;
  if (shared_core_) plan = PlanSharedCore(query);

  if (plan.has_value()) {
    // Execute the common block once (lazily — only if some part actually
    // reuses it), then each part's residue on top of the materialized
    // core bindings.
    bool core_table_empty = false;
    for (const TupleVariable& var : plan->core_vars) {
      QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(var.table));
      if (table->num_rows() == 0) core_table_empty = true;
    }
    QP_ASSIGN_OR_RETURN(
        BuiltConjunct core,
        BuildConjunct(*db_, plan->core_vars, plan->core_atoms));
    size_t core_entry_estimate = SIZE_MAX;
    for (const VarSlot& slot : core.slots) {
      core_entry_estimate =
          std::min(core_entry_estimate, EstimateSlot(slot, strategy_));
    }
    bool core_materialized = false;
    std::vector<Binding> core_bindings;
    auto materialize_core = [&]() {
      if (core_materialized) return;
      core_materialized = true;
      if (core_table_empty) return;
      if (stats != nullptr) ++stats->disjuncts;
      ConjunctRunner runner(strategy_, stats, cancel_);
      core_bindings = runner.Run(core.slots, std::move(core.joins));
      if (runner.stopped()) truncated = true;
    };

    for (size_t p = 0; p < query.parts().size(); ++p) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining parts skipped.
        break;
      }
      obs::ScopedSpan part_span(trace_, "part");
      const CompoundPart& part = query.parts()[p];
      const SharedCorePlan::PartResidue& residue = plan->parts[p];
      // Slots: core variables first (matching core binding order), then
      // the part's extra variables.
      std::vector<TupleVariable> vars = plan->core_vars;
      vars.insert(vars.end(), residue.extra_vars.begin(),
                  residue.extra_vars.end());
      // Core near conditions participate in every part's satisfaction, so
      // they are re-attached to the part's slot set (they re-filter core
      // bindings, which is a no-op, and feed BindingSatisfaction).
      std::vector<AtomicCondition> part_atoms = residue.extra_atoms;
      for (const AtomicCondition& atom : plan->core_atoms) {
        if (atom.is_near()) part_atoms.push_back(atom);
      }
      QP_ASSIGN_OR_RETURN(BuiltConjunct built,
                          BuildConjunct(*db_, vars, part_atoms));

      // Cost-based residue strategy, cheapest entry point first:
      //  - drive: extend each materialized core binding through the
      //    preference chain (pays ~|core|);
      //  - merge: run the chain from its own most selective end and
      //    hash-join back onto the core (pays ~|core| + chain entry);
      //  - naive: when the part's own cheapest slot (with the *core's*
      //    selections included) undercuts both, re-running the part from
      //    scratch beats any reuse of a bloated core — typical for
      //    unselective base queries with selective preferences.
      size_t residue_entry = SIZE_MAX;
      for (size_t i = plan->core_vars.size(); i < built.slots.size(); ++i) {
        residue_entry =
            std::min(residue_entry, EstimateSlot(built.slots[i], strategy_));
      }
      size_t naive_entry = SIZE_MAX;
      {
        QP_ASSIGN_OR_RETURN(BuiltConjunct full,
                            BuildConjunct(*db_, vars, residue.all_atoms));
        for (const VarSlot& slot : full.slots) {
          naive_entry = std::min(naive_entry, EstimateSlot(slot, strategy_));
        }
      }
      // Any core-reusing strategy costs at least ~|core|; if the part's
      // own cheapest entry point (usually its preference selection) is
      // far more selective than the core's, fresh execution wins. The 4x
      // pad absorbs the part's join fan-out.
      if (naive_entry * 4 < core_entry_estimate) {
        QP_ASSIGN_OR_RETURN(ResultSet partial, Execute(part.query, stats));
        if (partial.truncated()) truncated = true;
        for (size_t i = 0; i < partial.num_rows(); ++i) {
          accumulate(partial.row(i), part.degree * partial.satisfaction(i));
        }
        part_span.Counter("naive", 1);
        part_span.Counter("rows", partial.num_rows());
        continue;
      }
      materialize_core();
      const bool drive_from_core =
          residue.extra_vars.empty() || core_bindings.size() <= residue_entry;
      if (stats != nullptr) ++stats->core_reuses;

      std::vector<Binding> bindings;
      if (drive_from_core) {
        std::vector<bool> bound(vars.size(), false);
        for (size_t i = 0; i < plan->core_vars.size(); ++i) bound[i] = true;
        std::vector<Binding> seeded;
        seeded.reserve(core_bindings.size());
        for (const Binding& b : core_bindings) {
          Binding padded(vars.size(), 0);
          std::copy(b.begin(), b.end(), padded.begin());
          seeded.push_back(std::move(padded));
        }
        // The residue is one conjunctive block: count it like the naive
        // path (which recurses into Execute) does, so per-part disjunct
        // attribution is strategy-independent.
        if (stats != nullptr) ++stats->disjuncts;
        ConjunctRunner runner(strategy_, stats, cancel_);
        bindings = runner.RunSeeded(built.slots, std::move(built.joins),
                                    std::move(seeded), std::move(bound));
        if (runner.stopped()) truncated = true;
      } else {
        // Anchor core variables: the ones the residue's atoms touch.
        std::vector<size_t> anchors;  // Indices into the core/var order.
        {
          std::unordered_set<std::string> referenced;
          for (const AtomicCondition& atom : residue.extra_atoms) {
            for (const std::string& alias : atom.ReferencedVars()) {
              referenced.insert(alias);
            }
          }
          for (size_t i = 0; i < plan->core_vars.size(); ++i) {
            if (referenced.contains(plan->core_vars[i].alias)) {
              anchors.push_back(i);
            }
          }
        }
        // Run the residue independently over anchors + extras.
        std::vector<TupleVariable> residue_vars;
        for (size_t i : anchors) residue_vars.push_back(plan->core_vars[i]);
        residue_vars.insert(residue_vars.end(), residue.extra_vars.begin(),
                            residue.extra_vars.end());
        QP_ASSIGN_OR_RETURN(
            BuiltConjunct residue_built,
            BuildConjunct(*db_, residue_vars, residue.extra_atoms));
        // One conjunctive block, same attribution as the other strategies.
        if (stats != nullptr) ++stats->disjuncts;
        ConjunctRunner runner(strategy_, stats, cancel_);
        std::vector<Binding> residue_bindings = runner.Run(
            residue_built.slots, std::move(residue_built.joins));
        if (runner.stopped()) truncated = true;

        // Hash the residue results by their anchor row ids and merge with
        // the core bindings.
        std::unordered_map<Binding, std::vector<const Binding*>, BindingHash>
            by_anchor;
        for (const Binding& rb : residue_bindings) {
          Binding key;
          key.reserve(anchors.size());
          for (size_t i = 0; i < anchors.size(); ++i) key.push_back(rb[i]);
          by_anchor[key].push_back(&rb);
        }
        for (const Binding& cb : core_bindings) {
          Binding key;
          key.reserve(anchors.size());
          for (size_t i : anchors) key.push_back(cb[i]);
          auto it = by_anchor.find(key);
          if (it == by_anchor.end()) continue;
          for (const Binding* rb : it->second) {
            Binding merged(vars.size(), 0);
            std::copy(cb.begin(), cb.end(), merged.begin());
            for (size_t e = 0; e < residue.extra_vars.size(); ++e) {
              merged[plan->core_vars.size() + e] = (*rb)[anchors.size() + e];
            }
            bindings.push_back(std::move(merged));
          }
        }
        if (stats != nullptr) stats->bindings += bindings.size();
      }

      if (stats != nullptr) stats->raw_rows += bindings.size();
      // Parts are DISTINCT; a row keeps its best soft-condition match.
      std::unordered_map<Row, double, RowHash, RowEq> best;
      for (const Binding& b : bindings) {
        Row row =
            ProjectBinding(built.slots, part.query.projections(), b);
        double sat = BindingSatisfaction(built.slots, b);
        auto [it, inserted] = best.emplace(std::move(row), sat);
        if (!inserted && sat > it->second) it->second = sat;
      }
      for (const auto& [row, sat] : best) {
        accumulate(row, part.degree * sat);
      }
      part_span.Counter(drive_from_core ? "drive" : "merge", 1);
      part_span.Counter("rows", best.size());
    }
  } else {
    for (const CompoundPart& part : query.parts()) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining parts skipped.
        break;
      }
      obs::ScopedSpan part_span(trace_, "part");
      QP_ASSIGN_OR_RETURN(ResultSet partial, Execute(part.query, stats));
      if (partial.truncated()) truncated = true;
      for (size_t i = 0; i < partial.num_rows(); ++i) {
        // Soft conditions scale the part's contribution by how closely
        // the row matches.
        accumulate(partial.row(i), part.degree * partial.satisfaction(i));
      }
      part_span.Counter("naive", 1);
      part_span.Counter("rows", partial.num_rows());
    }
  }

  std::unordered_set<Row, RowHash, RowEq> vetoed;
  QP_RETURN_IF_ERROR(CollectExclusions(query, stats, &vetoed, &truncated));
  return BuildCompoundResult(query, groups, vetoed, truncated);
}

Result<ResultSet> Executor::ExecuteSelectVec(const SelectQuery& query,
                                             ExecutorStats* stats) const {
  QP_RETURN_IF_ERROR(query.Validate(db_->schema()));

  std::vector<std::string> columns;
  for (const auto& item : query.projections()) {
    columns.push_back(item.OutputName());
  }
  ResultSet out(columns);

  // SQL semantics: any empty FROM table empties the whole product.
  for (const TupleVariable& var : query.from()) {
    QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(var.table));
    if (table->num_rows() == 0) return out;
  }

  std::vector<std::vector<AtomicCondition>> dnf = ToDnf(query.where());

  // Cooperative cancellation: a stopped runner discards the conjunct's
  // in-flight batch (only fully-joined rows ever surface), and the whole
  // result is flagged truncated.
  bool truncated = false;
  auto run_conjunct = [&](const std::vector<AtomicCondition>& atoms,
                          const std::unordered_set<std::string>* subset,
                          bool need_all)
      -> Result<std::pair<std::vector<VarSlot>, BatchTable>> {
    std::vector<TupleVariable> vars;
    for (const TupleVariable& var : query.from()) {
      if (subset != nullptr && !subset->contains(var.alias)) continue;
      vars.push_back(var);
    }
    QP_ASSIGN_OR_RETURN(BuiltConjunct built,
                        BuildConjunct(*db_, vars, atoms));
    if (stats != nullptr) ++stats->disjuncts;
    obs::ScopedSpan disjunct_span(trace_, "disjunct");
    BatchRunner runner(strategy_, stats, cancel_);
    BatchTable batch =
        runner.Run(built.slots, std::move(built.joins),
                   NeededSlots(built.slots, query.projections(), need_all));
    if (runner.stopped()) truncated = true;
    disjunct_span.Counter("rows", batch.num_rows());
    disjunct_span.Counter("stopped", runner.stopped() ? 1 : 0);
    return std::make_pair(std::move(built.slots), std::move(batch));
  };

  bool has_near = false;
  {
    std::vector<AtomicCondition> atoms;
    if (query.where() != nullptr) query.where()->CollectAtoms(&atoms);
    has_near = HasNearAtom(atoms);
  }
  std::vector<double> satisfactions;

  if (query.distinct()) {
    // Row-level dedup; a row reached through several bindings or
    // disjuncts keeps its best soft-condition match.
    std::unordered_map<Row, double, RowHash, RowEq> best;
    std::unordered_set<Row, RowHash, RowEq> seen;
    for (const auto& disjunct : dnf) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining disjuncts skipped.
        break;
      }
      std::unordered_set<std::string> used =
          UsedAliases(disjunct, query.projections());
      QP_ASSIGN_OR_RETURN(auto result, run_conjunct(disjunct, &used, false));
      const auto& [slots, batch] = result;
      if (stats != nullptr) stats->raw_rows += batch.num_rows();
      std::vector<Row> rows = ProjectBatch(slots, query.projections(), batch);
      std::vector<double> sats;
      if (has_near) sats = BatchSatisfactions(slots, batch);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (has_near) {
          auto [it, inserted] = best.emplace(std::move(rows[i]), sats[i]);
          if (!inserted && sats[i] > it->second) it->second = sats[i];
        } else if (seen.insert(rows[i]).second) {
          out.AddRow(std::move(rows[i]));
        }
      }
    }
    if (has_near) {
      for (auto& [row, sat] : best) {
        out.AddRow(row);
        satisfactions.push_back(sat);
      }
    }
  } else if (dnf.size() == 1) {
    QP_ASSIGN_OR_RETURN(auto result, run_conjunct(dnf[0], nullptr, false));
    const auto& [slots, batch] = result;
    if (stats != nullptr) stats->raw_rows += batch.num_rows();
    std::vector<Row> rows = ProjectBatch(slots, query.projections(), batch);
    if (has_near) satisfactions = BatchSatisfactions(slots, batch);
    for (Row& row : rows) out.AddRow(std::move(row));
  } else {
    // OR over the full variable product without DISTINCT: deduplicate at
    // the binding level, accumulating distinct bindings into a columnar
    // `seen` batch keyed on every slot (hash buckets resolve collisions
    // by cell comparison).
    BatchTable distinct_bindings;
    std::vector<double> best_sat;
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    std::vector<size_t> all_slots;
    std::vector<VarSlot> full_slots;
    for (const auto& disjunct : dnf) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining disjuncts skipped.
        break;
      }
      QP_ASSIGN_OR_RETURN(auto result, run_conjunct(disjunct, nullptr, true));
      auto& [slots, batch] = result;
      if (stats != nullptr) stats->raw_rows += batch.num_rows();
      if (all_slots.empty()) {
        distinct_bindings = BatchTable(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          all_slots.push_back(s);
          distinct_bindings.SetColumn(s, BatchColumn::RowIds({}));
        }
      }
      std::vector<double> sats;
      if (has_near) sats = BatchSatisfactions(slots, batch);
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        double sat = has_near ? sats[i] : 1.0;
        std::vector<uint32_t>& bucket = buckets[batch.RowHash(i, all_slots)];
        int64_t found = -1;
        for (uint32_t idx : bucket) {
          if (distinct_bindings.RowsEqual(idx, batch, i, all_slots,
                                          all_slots)) {
            found = static_cast<int64_t>(idx);
            break;
          }
        }
        if (found < 0) {
          bucket.push_back(static_cast<uint32_t>(distinct_bindings.num_rows()));
          distinct_bindings.AppendRowFrom(batch, i);
          best_sat.push_back(sat);
        } else if (sat > best_sat[found]) {
          best_sat[found] = sat;
        }
      }
      full_slots = std::move(slots);
    }
    std::vector<Row> rows =
        ProjectBatch(full_slots, query.projections(), distinct_bindings);
    for (size_t i = 0; i < rows.size(); ++i) {
      out.AddRow(std::move(rows[i]));
      if (has_near) satisfactions.push_back(best_sat[i]);
    }
  }

  if (has_near) out.set_satisfactions(std::move(satisfactions));
  out.set_truncated(truncated);
  out.Canonicalize();
  return out;
}

Result<ResultSet> Executor::ExecuteCompoundVec(const CompoundQuery& query,
                                               ExecutorStats* stats) const {
  QP_RETURN_IF_ERROR(query.Validate(db_->schema()));

  CompoundGroupMap groups;
  auto accumulate = [&](const Row& row, double part_degree) {
    AccumulateGroup(&groups, row, part_degree);
  };

  bool truncated = false;

  std::optional<SharedCorePlan> plan;
  if (shared_core_) plan = PlanSharedCore(query);

  if (plan.has_value()) {
    // Execute the common block once (lazily — only if some part actually
    // reuses it), keeping the core as a columnar batch; each part's
    // residue then drives from or merges onto those columns.
    bool core_table_empty = false;
    for (const TupleVariable& var : plan->core_vars) {
      QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(var.table));
      if (table->num_rows() == 0) core_table_empty = true;
    }
    QP_ASSIGN_OR_RETURN(
        BuiltConjunct core,
        BuildConjunct(*db_, plan->core_vars, plan->core_atoms));
    size_t core_entry_estimate = SIZE_MAX;
    for (const VarSlot& slot : core.slots) {
      core_entry_estimate =
          std::min(core_entry_estimate, EstimateSlot(slot, strategy_));
    }
    const size_t core_n = plan->core_vars.size();
    bool core_materialized = false;
    BatchTable core_batch(core_n);
    auto materialize_core = [&]() {
      if (core_materialized) return;
      core_materialized = true;
      if (core_table_empty) return;
      if (stats != nullptr) ++stats->disjuncts;
      BatchRunner runner(strategy_, stats, cancel_);
      // Every core column is needed: parts project them and residues
      // join through them.
      core_batch = runner.Run(core.slots, std::move(core.joins),
                              std::vector<bool>(core_n, true));
      if (runner.stopped()) truncated = true;
    };

    for (size_t p = 0; p < query.parts().size(); ++p) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining parts skipped.
        break;
      }
      obs::ScopedSpan part_span(trace_, "part");
      const CompoundPart& part = query.parts()[p];
      const SharedCorePlan::PartResidue& residue = plan->parts[p];
      // Slots: core variables first (matching core column order), then
      // the part's extra variables.
      std::vector<TupleVariable> vars = plan->core_vars;
      vars.insert(vars.end(), residue.extra_vars.begin(),
                  residue.extra_vars.end());
      // Core near conditions participate in every part's satisfaction, so
      // they are re-attached to the part's slot set.
      std::vector<AtomicCondition> part_atoms = residue.extra_atoms;
      for (const AtomicCondition& atom : plan->core_atoms) {
        if (atom.is_near()) part_atoms.push_back(atom);
      }
      QP_ASSIGN_OR_RETURN(BuiltConjunct built,
                          BuildConjunct(*db_, vars, part_atoms));

      // Cost model identical to the tuple engine (see
      // ExecuteCompoundTuple): naive vs drive vs merge.
      size_t residue_entry = SIZE_MAX;
      for (size_t i = core_n; i < built.slots.size(); ++i) {
        residue_entry =
            std::min(residue_entry, EstimateSlot(built.slots[i], strategy_));
      }
      size_t naive_entry = SIZE_MAX;
      {
        QP_ASSIGN_OR_RETURN(BuiltConjunct full,
                            BuildConjunct(*db_, vars, residue.all_atoms));
        for (const VarSlot& slot : full.slots) {
          naive_entry = std::min(naive_entry, EstimateSlot(slot, strategy_));
        }
      }
      if (naive_entry * 4 < core_entry_estimate) {
        QP_ASSIGN_OR_RETURN(ResultSet partial, Execute(part.query, stats));
        if (partial.truncated()) truncated = true;
        for (size_t i = 0; i < partial.num_rows(); ++i) {
          accumulate(partial.row(i), part.degree * partial.satisfaction(i));
        }
        part_span.Counter("naive", 1);
        part_span.Counter("rows", partial.num_rows());
        continue;
      }
      materialize_core();
      const bool drive_from_core =
          residue.extra_vars.empty() ||
          core_batch.num_rows() <= residue_entry;
      if (stats != nullptr) ++stats->core_reuses;

      std::vector<bool> needed =
          NeededSlots(built.slots, part.query.projections(), false);
      BatchTable part_batch(vars.size());
      if (drive_from_core) {
        std::vector<bool> bound(vars.size(), false);
        BatchTable seeded(vars.size());
        for (size_t i = 0; i < core_n; ++i) {
          bound[i] = true;
          // Copies the core column; an unmaterialized (empty) core simply
          // installs empty columns.
          seeded.SetColumn(i, core_batch.column(i));
        }
        // The residue is one conjunctive block: count it like the naive
        // path (which recurses into Execute) does, so per-part disjunct
        // attribution is strategy-independent.
        if (stats != nullptr) ++stats->disjuncts;
        BatchRunner runner(strategy_, stats, cancel_);
        part_batch =
            runner.RunSeeded(built.slots, std::move(built.joins),
                             std::move(seeded), std::move(bound), needed);
        if (runner.stopped()) truncated = true;
      } else {
        // Anchor core variables: the ones the residue's atoms touch.
        std::vector<size_t> anchors;  // Indices into the core/var order.
        {
          std::unordered_set<std::string> referenced;
          for (const AtomicCondition& atom : residue.extra_atoms) {
            for (const std::string& alias : atom.ReferencedVars()) {
              referenced.insert(alias);
            }
          }
          for (size_t i = 0; i < core_n; ++i) {
            if (referenced.contains(plan->core_vars[i].alias)) {
              anchors.push_back(i);
            }
          }
        }
        // Run the residue independently over anchors + extras, keeping
        // every residue column (anchors are join keys, extras may be
        // projected or carry nears).
        std::vector<TupleVariable> residue_vars;
        for (size_t i : anchors) residue_vars.push_back(plan->core_vars[i]);
        residue_vars.insert(residue_vars.end(), residue.extra_vars.begin(),
                            residue.extra_vars.end());
        QP_ASSIGN_OR_RETURN(
            BuiltConjunct residue_built,
            BuildConjunct(*db_, residue_vars, residue.extra_atoms));
        // One conjunctive block, same attribution as the other strategies.
        if (stats != nullptr) ++stats->disjuncts;
        BatchRunner runner(strategy_, stats, cancel_);
        BatchTable residue_batch =
            runner.Run(residue_built.slots, std::move(residue_built.joins),
                       std::vector<bool>(residue_vars.size(), true));
        if (runner.stopped()) truncated = true;

        // Vectorized merge: hash-build over the residue's anchor columns,
        // probe with the core batch, then gather both sides column-wise
        // into the merged part batch.
        std::vector<size_t> residue_keys;
        for (size_t i = 0; i < anchors.size(); ++i) residue_keys.push_back(i);
        BatchHashTable by_anchor(&residue_batch, residue_keys);
        std::vector<uint32_t> core_idx;
        std::vector<uint32_t> residue_idx;
        std::vector<uint32_t> matches;
        for (size_t r = 0; r < core_batch.num_rows(); ++r) {
          matches.clear();
          by_anchor.Probe(core_batch, r, anchors, &matches);
          for (uint32_t m : matches) {
            core_idx.push_back(static_cast<uint32_t>(r));
            residue_idx.push_back(m);
          }
        }
        for (size_t i = 0; i < core_n; ++i) {
          part_batch.SetColumn(i, core_batch.column(i).Gather(core_idx));
        }
        for (size_t e = 0; e < residue.extra_vars.size(); ++e) {
          part_batch.SetColumn(
              core_n + e,
              residue_batch.column(anchors.size() + e).Gather(residue_idx));
        }
        if (part_batch.live_columns() == 0) {
          part_batch.SetNumRowsColumnless(core_idx.size());
        }
        if (stats != nullptr) stats->bindings += part_batch.num_rows();
      }

      if (stats != nullptr) stats->raw_rows += part_batch.num_rows();
      // Parts are DISTINCT; a row keeps its best soft-condition match.
      std::vector<Row> rows =
          ProjectBatch(built.slots, part.query.projections(), part_batch);
      std::vector<double> sats = BatchSatisfactions(built.slots, part_batch);
      std::unordered_map<Row, double, RowHash, RowEq> best;
      for (size_t i = 0; i < rows.size(); ++i) {
        auto [it, inserted] = best.emplace(std::move(rows[i]), sats[i]);
        if (!inserted && sats[i] > it->second) it->second = sats[i];
      }
      for (const auto& [row, sat] : best) {
        accumulate(row, part.degree * sat);
      }
      part_span.Counter(drive_from_core ? "drive" : "merge", 1);
      part_span.Counter("rows", best.size());
    }
  } else {
    for (const CompoundPart& part : query.parts()) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining parts skipped.
        break;
      }
      obs::ScopedSpan part_span(trace_, "part");
      QP_ASSIGN_OR_RETURN(ResultSet partial, Execute(part.query, stats));
      if (partial.truncated()) truncated = true;
      for (size_t i = 0; i < partial.num_rows(); ++i) {
        accumulate(partial.row(i), part.degree * partial.satisfaction(i));
      }
      part_span.Counter("naive", 1);
      part_span.Counter("rows", partial.num_rows());
    }
  }

  std::unordered_set<Row, RowHash, RowEq> vetoed;
  QP_RETURN_IF_ERROR(CollectExclusions(query, stats, &vetoed, &truncated));
  return BuildCompoundResult(query, groups, vetoed, truncated);
}

}  // namespace qp
