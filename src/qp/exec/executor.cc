#include "qp/exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "qp/pref/doi.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace {

/// A partial assignment of rows to tuple variables; entry i is the row id
/// bound to variable slot i (meaningful only once the slot is bound).
using Binding = std::vector<RowId>;

struct BindingHash {
  size_t operator()(const Binding& b) const {
    size_t h = 0x12345ULL;
    for (RowId id : b) h = h * 1000003ULL ^ id;
    return h;
  }
};

/// One tuple variable being joined, with its pushed-down selections.
struct VarSlot {
  std::string alias;
  const Table* table = nullptr;
  /// (column index, required value) equality selections on this variable.
  std::vector<std::pair<size_t, Value>> selections;
  /// (column index, near condition) soft selections: a row matches while
  /// its satisfaction is > 0; the satisfaction itself scales degrees.
  std::vector<std::pair<size_t, AtomicCondition>> nears;
  bool impossible = false;  // Two selections on the same column disagree.
};

/// A resolved join atom: slots and column indices.
struct ResolvedJoin {
  size_t va, ca, vb, cb;
  bool applied = false;
};

/// Slots + joins for one conjunctive block.
struct BuiltConjunct {
  std::vector<VarSlot> slots;
  std::vector<ResolvedJoin> joins;
  std::unordered_map<std::string, size_t> slot_index;
};

bool RowPassesSlot(const VarSlot& slot, RowId id) {
  for (const auto& [col, value] : slot.selections) {
    if (slot.table->At(id, col) != value) return false;
  }
  for (const auto& [col, near] : slot.nears) {
    if (near.Satisfaction(slot.table->At(id, col)) <= 0.0) return false;
  }
  return true;
}

/// Estimated cardinality of a slot after its selections (index-probed
/// under hash joins).
size_t EstimateSlot(const VarSlot& slot, JoinStrategy strategy) {
  if (slot.selections.empty() || strategy == JoinStrategy::kNestedLoop) {
    return slot.table->num_rows();
  }
  size_t best = slot.table->num_rows();
  for (const auto& [col, value] : slot.selections) {
    best = std::min(best, slot.table->Lookup(col, value).size());
  }
  return best;
}

/// Resolves `vars` and `atoms` into slots with pushed-down selections and
/// resolved join atoms. Every atom must reference only aliases in `vars`.
Result<BuiltConjunct> BuildConjunct(const Database& db,
                                    const std::vector<TupleVariable>& vars,
                                    const std::vector<AtomicCondition>& atoms) {
  // Chaos site covering every disjunct drive (select, compound core and
  // residues). Error mode surfaces as a per-response error; delay mode
  // stalls the disjunct, which under a deadline becomes a truncated —
  // still exact-prefix — result.
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("exec.disjunct"));
  BuiltConjunct built;
  for (const TupleVariable& var : vars) {
    QP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(var.table));
    built.slot_index[var.alias] = built.slots.size();
    built.slots.push_back(VarSlot{var.alias, table, {}, {}, false});
  }
  for (const AtomicCondition& atom : atoms) {
    if (atom.is_selection()) {
      auto it = built.slot_index.find(atom.var());
      if (it == built.slot_index.end()) {
        return Status::Internal("unresolved alias: " + atom.var());
      }
      VarSlot& slot = built.slots[it->second];
      size_t col = *slot.table->schema().ColumnIndex(atom.column());
      for (const auto& [existing_col, existing_value] : slot.selections) {
        if (existing_col == col && existing_value != atom.value()) {
          slot.impossible = true;
        }
      }
      if (!slot.impossible) slot.selections.emplace_back(col, atom.value());
    } else if (atom.is_near()) {
      auto it = built.slot_index.find(atom.var());
      if (it == built.slot_index.end()) {
        return Status::Internal("unresolved alias: " + atom.var());
      }
      VarSlot& slot = built.slots[it->second];
      size_t col = *slot.table->schema().ColumnIndex(atom.column());
      slot.nears.emplace_back(col, atom);
    } else {
      auto left = built.slot_index.find(atom.left_var());
      auto right = built.slot_index.find(atom.right_var());
      if (left == built.slot_index.end() ||
          right == built.slot_index.end()) {
        return Status::Internal("unresolved join alias in " + atom.ToSql());
      }
      size_t va = left->second;
      size_t vb = right->second;
      size_t ca =
          *built.slots[va].table->schema().ColumnIndex(atom.left_column());
      size_t cb =
          *built.slots[vb].table->schema().ColumnIndex(atom.right_column());
      built.joins.push_back(ResolvedJoin{va, ca, vb, cb, false});
    }
  }
  return built;
}

/// Executes one conjunctive SPJ block over the given variable slots,
/// optionally continuing from pre-bound seed bindings (the shared-core
/// optimization for MQ compounds).
class ConjunctRunner {
 public:
  ConjunctRunner(JoinStrategy strategy, ExecutorStats* stats,
                 const CancelToken* cancel = nullptr)
      : strategy_(strategy), stats_(stats), cancel_(cancel) {}

  /// True when the run was cut short by the cancel token. The bindings of
  /// the interrupted join step are discarded (they may have unbound
  /// slots), so a stopped run returns only fully-joined bindings — for a
  /// fresh Run that means none; callers treat the conjunct's output as
  /// incomplete and flag the result truncated.
  bool stopped() const { return stopped_; }

  /// Fresh run: nothing bound yet.
  std::vector<Binding> Run(std::vector<VarSlot> slots,
                           std::vector<ResolvedJoin> joins) {
    slots_ = std::move(slots);
    joins_ = std::move(joins);
    bound_.assign(slots_.size(), false);

    for (const VarSlot& slot : slots_) {
      if (slot.impossible || slot.table->num_rows() == 0) return {};
    }
    size_t seed = CheapestUnbound();
    std::vector<Binding> bindings = Materialize(seed);
    if (stopped_) return {};
    bound_[seed] = true;
    return Loop(std::move(bindings));
  }

  /// Seeded run: `initial` are bindings over the slots marked in `bound`
  /// (core variables already joined). Selections on bound slots and joins
  /// among bound slots are applied as filters first; the remaining slots
  /// are then joined in as usual.
  std::vector<Binding> RunSeeded(std::vector<VarSlot> slots,
                                 std::vector<ResolvedJoin> joins,
                                 std::vector<Binding> initial,
                                 std::vector<bool> bound) {
    slots_ = std::move(slots);
    joins_ = std::move(joins);
    bound_ = std::move(bound);

    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].impossible) return {};
      if (!bound_[i] && slots_[i].table->num_rows() == 0) return {};
    }
    // Part-specific selections on already-bound (core) variables.
    std::vector<Binding> bindings;
    bindings.reserve(initial.size());
    for (Binding& b : initial) {
      if (PollCancelStrided()) break;
      bool keep = true;
      for (size_t i = 0; i < slots_.size() && keep; ++i) {
        if (!bound_[i]) continue;
        if (slots_[i].selections.empty() && slots_[i].nears.empty()) continue;
        keep = RowPassesSlot(slots_[i], b[i]);
      }
      if (keep) bindings.push_back(std::move(b));
    }
    if (stopped_) return {};
    ApplyNewlyBoundJoins(&bindings);
    return Loop(std::move(bindings));
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);
  /// Rows between cancel polls in the inner row loops. Small enough that
  /// a tripped deadline stops within microseconds, large enough that the
  /// atomic loads never show up in profiles.
  static constexpr uint64_t kPollStride = 128;

  /// Direct cancel poll, used at coarse boundaries (once per join step).
  /// Sticky: once tripped the runner stays stopped.
  bool PollCancel() {
    if (stopped_) return true;
    if (cancel_ != nullptr && cancel_->ShouldStop()) stopped_ = true;
    return stopped_;
  }

  /// Row-loop poll: consults the token every kPollStride calls.
  bool PollCancelStrided() {
    if (stopped_) return true;
    if (cancel_ == nullptr) return false;
    if ((++poll_counter_ % kPollStride) != 0) return false;
    return PollCancel();
  }

  std::vector<Binding> Loop(std::vector<Binding> bindings) {
    while (true) {
      // Stopping between join steps discards the in-flight bindings:
      // they may have unbound slots and must not surface as rows.
      if (PollCancel()) return {};
      if (bindings.empty()) return {};
      size_t next = PickNextJoined();
      if (next == kNone) {
        next = CheapestUnbound();
        if (next == kNone) break;  // All bound.
        bindings = CrossProduct(std::move(bindings), next);
      } else {
        bindings = JoinStep(std::move(bindings), next);
      }
      if (stopped_) return {};
      bound_[next] = true;
      ApplyNewlyBoundJoins(&bindings);
    }
    return bindings;
  }

  size_t Estimate(size_t slot_index) const {
    return EstimateSlot(slots_[slot_index], strategy_);
  }

  size_t CheapestUnbound() const {
    size_t best = kNone;
    size_t best_cost = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (bound_[i]) continue;
      size_t cost = Estimate(i);
      if (best == kNone || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    return best;
  }

  /// The unbound slot reachable through a join atom from a bound slot
  /// with the smallest estimate; kNone if the join graph is exhausted.
  size_t PickNextJoined() const {
    size_t best = kNone;
    size_t best_cost = 0;
    for (const ResolvedJoin& join : joins_) {
      size_t target = kNone;
      if (bound_[join.va] && !bound_[join.vb]) target = join.vb;
      if (bound_[join.vb] && !bound_[join.va]) target = join.va;
      if (target == kNone) continue;
      size_t cost = Estimate(target);
      if (best == kNone || cost < best_cost) {
        best = target;
        best_cost = cost;
      }
    }
    return best;
  }

  /// All rows of slot `i` passing its selections, as 1-variable bindings
  /// (padded to full width).
  std::vector<Binding> Materialize(size_t i) {
    const VarSlot& slot = slots_[i];
    std::vector<Binding> out;
    auto emit = [&](RowId id) {
      Binding b(slots_.size(), 0);
      b[i] = id;
      out.push_back(std::move(b));
    };
    if (!slot.selections.empty() && strategy_ == JoinStrategy::kHashJoin) {
      // Probe the most selective index, re-check the rest.
      size_t best_col = 0;
      size_t best_size = static_cast<size_t>(-1);
      for (size_t s = 0; s < slot.selections.size(); ++s) {
        size_t size = slot.table
                          ->Lookup(slot.selections[s].first,
                                   slot.selections[s].second)
                          .size();
        if (size < best_size) {
          best_size = size;
          best_col = s;
        }
      }
      for (RowId id : slot.table->Lookup(slot.selections[best_col].first,
                                         slot.selections[best_col].second)) {
        if (PollCancelStrided()) break;
        if (RowPassesSlot(slot, id)) emit(id);
      }
    } else {
      for (RowId id = 0; id < slot.table->num_rows(); ++id) {
        if (PollCancelStrided()) break;
        if (RowPassesSlot(slot, id)) emit(id);
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  std::vector<Binding> CrossProduct(std::vector<Binding> bindings, size_t i) {
    std::vector<Binding> rows = Materialize(i);
    std::vector<Binding> out;
    out.reserve(bindings.size() * rows.size());
    for (const Binding& b : bindings) {
      if (PollCancelStrided()) break;
      for (const Binding& r : rows) {
        Binding merged = b;
        merged[i] = r[i];
        out.push_back(std::move(merged));
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  /// Extends bindings through a join atom that connects a bound slot to
  /// `target` (the first such atom probes; the rest are checked by
  /// ApplyNewlyBoundJoins).
  std::vector<Binding> JoinStep(std::vector<Binding> bindings, size_t target) {
    const ResolvedJoin* probe = nullptr;
    for (const ResolvedJoin& join : joins_) {
      bool forward = bound_[join.va] && join.vb == target;
      bool backward = bound_[join.vb] && join.va == target;
      if (forward || backward) {
        probe = &join;
        break;
      }
    }
    // probe != nullptr by construction of PickNextJoined.
    size_t source = probe->va == target ? probe->vb : probe->va;
    size_t source_col = probe->va == target ? probe->cb : probe->ca;
    size_t target_col = probe->va == target ? probe->ca : probe->cb;

    const VarSlot& slot = slots_[target];
    std::vector<Binding> out;
    for (const Binding& b : bindings) {
      if (PollCancelStrided()) break;
      const Value& key = slots_[source].table->At(b[source], source_col);
      if (strategy_ == JoinStrategy::kHashJoin) {
        for (RowId id : slot.table->Lookup(target_col, key)) {
          if (!RowPassesSlot(slot, id)) continue;
          Binding merged = b;
          merged[target] = id;
          out.push_back(std::move(merged));
        }
      } else {
        for (RowId id = 0; id < slot.table->num_rows(); ++id) {
          if (slot.table->At(id, target_col) != key) continue;
          if (!RowPassesSlot(slot, id)) continue;
          Binding merged = b;
          merged[target] = id;
          out.push_back(std::move(merged));
        }
      }
    }
    if (stats_ != nullptr) stats_->bindings += out.size();
    return out;
  }

  /// Filters bindings by join atoms whose two sides just became bound.
  void ApplyNewlyBoundJoins(std::vector<Binding>* bindings) {
    for (ResolvedJoin& join : joins_) {
      if (join.applied || !bound_[join.va] || !bound_[join.vb]) continue;
      join.applied = true;
      std::vector<Binding> kept;
      kept.reserve(bindings->size());
      for (Binding& b : *bindings) {
        if (slots_[join.va].table->At(b[join.va], join.ca) ==
            slots_[join.vb].table->At(b[join.vb], join.cb)) {
          kept.push_back(std::move(b));
        }
      }
      *bindings = std::move(kept);
    }
  }

  JoinStrategy strategy_;
  ExecutorStats* stats_;
  const CancelToken* cancel_;
  bool stopped_ = false;
  uint64_t poll_counter_ = 0;
  std::vector<VarSlot> slots_;
  std::vector<ResolvedJoin> joins_;
  std::vector<bool> bound_;
};

/// Variable aliases referenced by a conjunct plus the projections.
std::unordered_set<std::string> UsedAliases(
    const std::vector<AtomicCondition>& atoms,
    const std::vector<ProjectionItem>& projections) {
  std::unordered_set<std::string> used;
  for (const auto& atom : atoms) {
    for (auto& var : atom.ReferencedVars()) used.insert(std::move(var));
  }
  for (const auto& item : projections) used.insert(item.var);
  return used;
}

/// Product of the satisfactions of every near condition pushed into
/// `slots`, evaluated on one binding. 1 when there are none.
double BindingSatisfaction(const std::vector<VarSlot>& slots,
                           const Binding& binding) {
  double sat = 1.0;
  for (size_t i = 0; i < slots.size(); ++i) {
    for (const auto& [col, near] : slots[i].nears) {
      sat *= near.Satisfaction(slots[i].table->At(binding[i], col));
    }
  }
  return sat;
}

bool HasNearAtom(const std::vector<AtomicCondition>& atoms) {
  for (const AtomicCondition& atom : atoms) {
    if (atom.is_near()) return true;
  }
  return false;
}

/// Projects one binding according to `projections`.
Row ProjectBinding(const std::vector<VarSlot>& slots,
                   const std::vector<ProjectionItem>& projections,
                   const Binding& binding) {
  Row row;
  row.reserve(projections.size());
  for (const auto& item : projections) {
    size_t slot = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alias == item.var) {
        slot = i;
        break;
      }
    }
    size_t col = *slots[slot].table->schema().ColumnIndex(item.column);
    row.push_back(slots[slot].table->At(binding[slot], col));
  }
  return row;
}

/// Analysis result of the shared-core optimization: the conjunctive block
/// common to every part of an MQ compound, plus each part's residue.
struct SharedCorePlan {
  std::vector<TupleVariable> core_vars;
  std::vector<AtomicCondition> core_atoms;
  struct PartResidue {
    std::vector<TupleVariable> extra_vars;
    std::vector<AtomicCondition> extra_atoms;
    std::vector<AtomicCondition> all_atoms;  // Full conjunct of the part.
  };
  std::vector<PartResidue> parts;
};

bool Contains(const std::vector<TupleVariable>& vars,
              const TupleVariable& var) {
  for (const TupleVariable& v : vars) {
    if (v == var) return true;
  }
  return false;
}

bool ContainsAtom(const std::vector<AtomicCondition>& atoms,
                  const AtomicCondition& atom) {
  for (const AtomicCondition& a : atoms) {
    if (a == atom) return true;
  }
  return false;
}

/// Returns the plan, or nullopt when the optimization does not apply
/// (OR-qualifications, non-distinct parts, or no common block). Parts
/// built by PreferenceIntegrator always qualify: they share the original
/// query verbatim and add one conjunctive preference chain each.
std::optional<SharedCorePlan> PlanSharedCore(const CompoundQuery& query) {
  if (query.parts().size() < 2) return std::nullopt;

  std::vector<std::vector<AtomicCondition>> part_atoms;
  for (const CompoundPart& part : query.parts()) {
    if (!part.query.distinct()) return std::nullopt;
    auto dnf = ToDnf(part.query.where());
    if (dnf.size() != 1) return std::nullopt;
    part_atoms.push_back(std::move(dnf[0]));
  }

  SharedCorePlan plan;
  // Core variables: present (same alias, same table) in every part.
  const auto& first = query.parts()[0].query;
  for (const TupleVariable& var : first.from()) {
    bool everywhere = true;
    for (size_t p = 1; p < query.parts().size() && everywhere; ++p) {
      const TupleVariable* found =
          query.parts()[p].query.FindVariable(var.alias);
      everywhere = found != nullptr && found->table == var.table;
    }
    if (everywhere) plan.core_vars.push_back(var);
  }
  if (plan.core_vars.empty()) return std::nullopt;

  // Core atoms: in every part and confined to core variables.
  for (const AtomicCondition& atom : part_atoms[0]) {
    bool core = true;
    for (const std::string& alias : atom.ReferencedVars()) {
      if (std::none_of(plan.core_vars.begin(), plan.core_vars.end(),
                       [&](const TupleVariable& v) {
                         return v.alias == alias;
                       })) {
        core = false;
        break;
      }
    }
    if (!core) continue;
    for (size_t p = 1; p < part_atoms.size() && core; ++p) {
      core = ContainsAtom(part_atoms[p], atom);
    }
    if (core && !ContainsAtom(plan.core_atoms, atom)) {
      plan.core_atoms.push_back(atom);
    }
  }

  // Residues.
  for (size_t p = 0; p < query.parts().size(); ++p) {
    SharedCorePlan::PartResidue residue;
    for (const TupleVariable& var : query.parts()[p].query.from()) {
      if (!Contains(plan.core_vars, var)) residue.extra_vars.push_back(var);
    }
    for (const AtomicCondition& atom : part_atoms[p]) {
      if (!ContainsAtom(plan.core_atoms, atom)) {
        residue.extra_atoms.push_back(atom);
      }
    }
    residue.all_atoms = part_atoms[p];
    plan.parts.push_back(std::move(residue));
  }
  return plan;
}

}  // namespace

void Executor::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_disjuncts_ = nullptr;
    metric_bindings_ = nullptr;
    metric_raw_rows_ = nullptr;
    metric_core_reuses_ = nullptr;
    return;
  }
  metric_disjuncts_ = registry->counter("qp_exec_disjuncts_total");
  metric_bindings_ = registry->counter("qp_exec_bindings_total");
  metric_raw_rows_ = registry->counter("qp_exec_raw_rows_total");
  metric_core_reuses_ = registry->counter("qp_exec_core_reuses_total");
}

void Executor::FinishOuterExecute(obs::ScopedSpan* span,
                                  const ExecutorStats& entry,
                                  const ExecutorStats& exit,
                                  const Result<ResultSet>& result) const {
  const size_t disjuncts = exit.disjuncts - entry.disjuncts;
  const size_t bindings = exit.bindings - entry.bindings;
  const size_t raw_rows = exit.raw_rows - entry.raw_rows;
  const size_t core_reuses = exit.core_reuses - entry.core_reuses;
  span->Counter("disjuncts", disjuncts);
  span->Counter("bindings", bindings);
  span->Counter("raw_rows", raw_rows);
  span->Counter("core_reuses", core_reuses);
  span->Counter("rows", result.ok() ? result.value().num_rows() : 0);
  span->Counter("truncated",
                result.ok() && result.value().truncated() ? 1 : 0);
  span->End();
  if (metric_disjuncts_ != nullptr) metric_disjuncts_->Add(disjuncts);
  if (metric_bindings_ != nullptr) metric_bindings_->Add(bindings);
  if (metric_raw_rows_ != nullptr) metric_raw_rows_->Add(raw_rows);
  if (metric_core_reuses_ != nullptr) metric_core_reuses_->Add(core_reuses);
}

Result<ResultSet> Executor::Execute(const SelectQuery& query,
                                    ExecutorStats* stats) const {
  ExecutorStats local;
  if (stats == nullptr) stats = &local;
  // Recursive frames (compound parts / exclusions) skip straight to the
  // body: the outermost frame already owns the span and metric flush, and
  // the shared stats pointer is only ever bumped at the working site.
  if (exec_depth_ > 0) return ExecuteSelect(query, stats);

  obs::ScopedSpan span(trace_, "execution");
  const ExecutorStats entry = *stats;
  ++exec_depth_;
  Result<ResultSet> result = ExecuteSelect(query, stats);
  --exec_depth_;
  FinishOuterExecute(&span, entry, *stats, result);
  return result;
}

Result<ResultSet> Executor::Execute(const CompoundQuery& query,
                                    ExecutorStats* stats) const {
  ExecutorStats local;
  if (stats == nullptr) stats = &local;
  if (exec_depth_ > 0) return ExecuteCompound(query, stats);

  obs::ScopedSpan span(trace_, "execution");
  const ExecutorStats entry = *stats;
  ++exec_depth_;
  Result<ResultSet> result = ExecuteCompound(query, stats);
  --exec_depth_;
  FinishOuterExecute(&span, entry, *stats, result);
  return result;
}

Result<ResultSet> Executor::ExecuteSelect(const SelectQuery& query,
                                          ExecutorStats* stats) const {
  QP_RETURN_IF_ERROR(query.Validate(db_->schema()));

  std::vector<std::string> columns;
  for (const auto& item : query.projections()) {
    columns.push_back(item.OutputName());
  }
  ResultSet out(columns);

  // SQL semantics: any empty FROM table empties the whole product.
  for (const TupleVariable& var : query.from()) {
    QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(var.table));
    if (table->num_rows() == 0) return out;
  }

  std::vector<std::vector<AtomicCondition>> dnf = ToDnf(query.where());

  // Cooperative cancellation: a stopped runner discards the conjunct's
  // in-flight bindings (only fully-joined rows ever surface), and the
  // whole result is flagged truncated.
  bool truncated = false;
  auto run_conjunct = [&](const std::vector<AtomicCondition>& atoms,
                          const std::unordered_set<std::string>* subset)
      -> Result<std::pair<std::vector<VarSlot>, std::vector<Binding>>> {
    std::vector<TupleVariable> vars;
    for (const TupleVariable& var : query.from()) {
      if (subset != nullptr && !subset->contains(var.alias)) continue;
      vars.push_back(var);
    }
    QP_ASSIGN_OR_RETURN(BuiltConjunct built,
                        BuildConjunct(*db_, vars, atoms));
    if (stats != nullptr) ++stats->disjuncts;
    obs::ScopedSpan disjunct_span(trace_, "disjunct");
    ConjunctRunner runner(strategy_, stats, cancel_);
    std::vector<Binding> bindings =
        runner.Run(built.slots, std::move(built.joins));
    if (runner.stopped()) truncated = true;
    disjunct_span.Counter("rows", bindings.size());
    disjunct_span.Counter("stopped", runner.stopped() ? 1 : 0);
    return std::make_pair(std::move(built.slots), std::move(bindings));
  };

  // Soft (near) conditions produce a per-row satisfaction column; a row
  // reached through several bindings or disjuncts keeps its best match.
  bool has_near = false;
  {
    std::vector<AtomicCondition> atoms;
    if (query.where() != nullptr) query.where()->CollectAtoms(&atoms);
    has_near = HasNearAtom(atoms);
  }
  std::vector<double> satisfactions;

  if (query.distinct()) {
    std::unordered_map<Row, double, RowHash, RowEq> best;
    std::unordered_set<Row, RowHash, RowEq> seen;
    for (const auto& disjunct : dnf) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining disjuncts skipped.
        break;
      }
      std::unordered_set<std::string> used =
          UsedAliases(disjunct, query.projections());
      QP_ASSIGN_OR_RETURN(auto result, run_conjunct(disjunct, &used));
      const auto& [slots, bindings] = result;
      if (stats != nullptr) stats->raw_rows += bindings.size();
      for (const Binding& b : bindings) {
        Row row = ProjectBinding(slots, query.projections(), b);
        if (has_near) {
          double sat = BindingSatisfaction(slots, b);
          auto [it, inserted] = best.emplace(std::move(row), sat);
          if (!inserted && sat > it->second) it->second = sat;
        } else if (seen.insert(row).second) {
          out.AddRow(std::move(row));
        }
      }
    }
    if (has_near) {
      for (auto& [row, sat] : best) {
        out.AddRow(row);
        satisfactions.push_back(sat);
      }
    }
  } else if (dnf.size() == 1) {
    QP_ASSIGN_OR_RETURN(auto result, run_conjunct(dnf[0], nullptr));
    const auto& [slots, bindings] = result;
    if (stats != nullptr) stats->raw_rows += bindings.size();
    for (const Binding& b : bindings) {
      out.AddRow(ProjectBinding(slots, query.projections(), b));
      if (has_near) satisfactions.push_back(BindingSatisfaction(slots, b));
    }
  } else {
    // OR over the full variable product without DISTINCT: deduplicate at
    // the binding level so each satisfying assignment counts once.
    std::unordered_map<Binding, double, BindingHash> seen;
    std::vector<VarSlot> full_slots;
    for (const auto& disjunct : dnf) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining disjuncts skipped.
        break;
      }
      QP_ASSIGN_OR_RETURN(auto result, run_conjunct(disjunct, nullptr));
      auto& [slots, bindings] = result;
      if (stats != nullptr) stats->raw_rows += bindings.size();
      for (Binding& b : bindings) {
        double sat = has_near ? BindingSatisfaction(slots, b) : 1.0;
        auto [it, inserted] = seen.emplace(std::move(b), sat);
        if (!inserted && sat > it->second) it->second = sat;
      }
      full_slots = std::move(slots);
    }
    for (const auto& [b, sat] : seen) {
      out.AddRow(ProjectBinding(full_slots, query.projections(), b));
      if (has_near) satisfactions.push_back(sat);
    }
  }

  if (has_near) out.set_satisfactions(std::move(satisfactions));
  out.set_truncated(truncated);
  out.Canonicalize();
  return out;
}

Result<ResultSet> Executor::ExecuteCompound(const CompoundQuery& query,
                                            ExecutorStats* stats) const {
  QP_RETURN_IF_ERROR(query.Validate(db_->schema()));

  struct Group {
    size_t count = 0;                 // Positive parts only (count(*)).
    ConjunctiveAccumulator degree;    // Positive parts' degrees.
    ConjunctiveAccumulator dislike;   // |degree| of negative parts.
  };
  std::unordered_map<Row, Group, RowHash, RowEq> groups;

  auto accumulate = [&](const Row& row, double part_degree) {
    Group& group = groups[row];
    if (part_degree < 0.0) {
      group.dislike.Add(-part_degree);
    } else {
      ++group.count;
      group.degree.Add(part_degree);
    }
  };

  // A compound is truncated when any constituent execution was cut short
  // or whole parts/exclusions were skipped: counts and degrees are then
  // under-accumulated and dislike vetoes may be under-applied, but every
  // emitted row is still a genuine answer of some part.
  bool truncated = false;

  std::optional<SharedCorePlan> plan;
  if (shared_core_) plan = PlanSharedCore(query);

  if (plan.has_value()) {
    // Execute the common block once (lazily — only if some part actually
    // reuses it), then each part's residue on top of the materialized
    // core bindings.
    bool core_table_empty = false;
    for (const TupleVariable& var : plan->core_vars) {
      QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(var.table));
      if (table->num_rows() == 0) core_table_empty = true;
    }
    QP_ASSIGN_OR_RETURN(
        BuiltConjunct core,
        BuildConjunct(*db_, plan->core_vars, plan->core_atoms));
    size_t core_entry_estimate = SIZE_MAX;
    for (const VarSlot& slot : core.slots) {
      core_entry_estimate =
          std::min(core_entry_estimate, EstimateSlot(slot, strategy_));
    }
    bool core_materialized = false;
    std::vector<Binding> core_bindings;
    auto materialize_core = [&]() {
      if (core_materialized) return;
      core_materialized = true;
      if (core_table_empty) return;
      if (stats != nullptr) ++stats->disjuncts;
      ConjunctRunner runner(strategy_, stats, cancel_);
      core_bindings = runner.Run(core.slots, std::move(core.joins));
      if (runner.stopped()) truncated = true;
    };

    for (size_t p = 0; p < query.parts().size(); ++p) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining parts skipped.
        break;
      }
      obs::ScopedSpan part_span(trace_, "part");
      const CompoundPart& part = query.parts()[p];
      const SharedCorePlan::PartResidue& residue = plan->parts[p];
      // Slots: core variables first (matching core binding order), then
      // the part's extra variables.
      std::vector<TupleVariable> vars = plan->core_vars;
      vars.insert(vars.end(), residue.extra_vars.begin(),
                  residue.extra_vars.end());
      // Core near conditions participate in every part's satisfaction, so
      // they are re-attached to the part's slot set (they re-filter core
      // bindings, which is a no-op, and feed BindingSatisfaction).
      std::vector<AtomicCondition> part_atoms = residue.extra_atoms;
      for (const AtomicCondition& atom : plan->core_atoms) {
        if (atom.is_near()) part_atoms.push_back(atom);
      }
      QP_ASSIGN_OR_RETURN(BuiltConjunct built,
                          BuildConjunct(*db_, vars, part_atoms));

      // Cost-based residue strategy, cheapest entry point first:
      //  - drive: extend each materialized core binding through the
      //    preference chain (pays ~|core|);
      //  - merge: run the chain from its own most selective end and
      //    hash-join back onto the core (pays ~|core| + chain entry);
      //  - naive: when the part's own cheapest slot (with the *core's*
      //    selections included) undercuts both, re-running the part from
      //    scratch beats any reuse of a bloated core — typical for
      //    unselective base queries with selective preferences.
      size_t residue_entry = SIZE_MAX;
      for (size_t i = plan->core_vars.size(); i < built.slots.size(); ++i) {
        residue_entry =
            std::min(residue_entry, EstimateSlot(built.slots[i], strategy_));
      }
      size_t naive_entry = SIZE_MAX;
      {
        QP_ASSIGN_OR_RETURN(BuiltConjunct full,
                            BuildConjunct(*db_, vars, residue.all_atoms));
        for (const VarSlot& slot : full.slots) {
          naive_entry = std::min(naive_entry, EstimateSlot(slot, strategy_));
        }
      }
      // Any core-reusing strategy costs at least ~|core|; if the part's
      // own cheapest entry point (usually its preference selection) is
      // far more selective than the core's, fresh execution wins. The 4x
      // pad absorbs the part's join fan-out.
      if (naive_entry * 4 < core_entry_estimate) {
        QP_ASSIGN_OR_RETURN(ResultSet partial, Execute(part.query, stats));
        if (partial.truncated()) truncated = true;
        for (size_t i = 0; i < partial.num_rows(); ++i) {
          accumulate(partial.row(i), part.degree * partial.satisfaction(i));
        }
        part_span.Counter("naive", 1);
        part_span.Counter("rows", partial.num_rows());
        continue;
      }
      materialize_core();
      const bool drive_from_core =
          residue.extra_vars.empty() || core_bindings.size() <= residue_entry;
      if (stats != nullptr) ++stats->core_reuses;

      std::vector<Binding> bindings;
      if (drive_from_core) {
        std::vector<bool> bound(vars.size(), false);
        for (size_t i = 0; i < plan->core_vars.size(); ++i) bound[i] = true;
        std::vector<Binding> seeded;
        seeded.reserve(core_bindings.size());
        for (const Binding& b : core_bindings) {
          Binding padded(vars.size(), 0);
          std::copy(b.begin(), b.end(), padded.begin());
          seeded.push_back(std::move(padded));
        }
        // The residue is one conjunctive block: count it like the naive
        // path (which recurses into Execute) does, so per-part disjunct
        // attribution is strategy-independent.
        if (stats != nullptr) ++stats->disjuncts;
        ConjunctRunner runner(strategy_, stats, cancel_);
        bindings = runner.RunSeeded(built.slots, std::move(built.joins),
                                    std::move(seeded), std::move(bound));
        if (runner.stopped()) truncated = true;
      } else {
        // Anchor core variables: the ones the residue's atoms touch.
        std::vector<size_t> anchors;  // Indices into the core/var order.
        {
          std::unordered_set<std::string> referenced;
          for (const AtomicCondition& atom : residue.extra_atoms) {
            for (const std::string& alias : atom.ReferencedVars()) {
              referenced.insert(alias);
            }
          }
          for (size_t i = 0; i < plan->core_vars.size(); ++i) {
            if (referenced.contains(plan->core_vars[i].alias)) {
              anchors.push_back(i);
            }
          }
        }
        // Run the residue independently over anchors + extras.
        std::vector<TupleVariable> residue_vars;
        for (size_t i : anchors) residue_vars.push_back(plan->core_vars[i]);
        residue_vars.insert(residue_vars.end(), residue.extra_vars.begin(),
                            residue.extra_vars.end());
        QP_ASSIGN_OR_RETURN(
            BuiltConjunct residue_built,
            BuildConjunct(*db_, residue_vars, residue.extra_atoms));
        // One conjunctive block, same attribution as the other strategies.
        if (stats != nullptr) ++stats->disjuncts;
        ConjunctRunner runner(strategy_, stats, cancel_);
        std::vector<Binding> residue_bindings = runner.Run(
            residue_built.slots, std::move(residue_built.joins));
        if (runner.stopped()) truncated = true;

        // Hash the residue results by their anchor row ids and merge with
        // the core bindings.
        std::unordered_map<Binding, std::vector<const Binding*>, BindingHash>
            by_anchor;
        for (const Binding& rb : residue_bindings) {
          Binding key;
          key.reserve(anchors.size());
          for (size_t i = 0; i < anchors.size(); ++i) key.push_back(rb[i]);
          by_anchor[key].push_back(&rb);
        }
        for (const Binding& cb : core_bindings) {
          Binding key;
          key.reserve(anchors.size());
          for (size_t i : anchors) key.push_back(cb[i]);
          auto it = by_anchor.find(key);
          if (it == by_anchor.end()) continue;
          for (const Binding* rb : it->second) {
            Binding merged(vars.size(), 0);
            std::copy(cb.begin(), cb.end(), merged.begin());
            for (size_t e = 0; e < residue.extra_vars.size(); ++e) {
              merged[plan->core_vars.size() + e] = (*rb)[anchors.size() + e];
            }
            bindings.push_back(std::move(merged));
          }
        }
        if (stats != nullptr) stats->bindings += bindings.size();
      }

      if (stats != nullptr) stats->raw_rows += bindings.size();
      // Parts are DISTINCT; a row keeps its best soft-condition match.
      std::unordered_map<Row, double, RowHash, RowEq> best;
      for (const Binding& b : bindings) {
        Row row =
            ProjectBinding(built.slots, part.query.projections(), b);
        double sat = BindingSatisfaction(built.slots, b);
        auto [it, inserted] = best.emplace(std::move(row), sat);
        if (!inserted && sat > it->second) it->second = sat;
      }
      for (const auto& [row, sat] : best) {
        accumulate(row, part.degree * sat);
      }
      part_span.Counter(drive_from_core ? "drive" : "merge", 1);
      part_span.Counter("rows", best.size());
    }
  } else {
    for (const CompoundPart& part : query.parts()) {
      if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
        truncated = true;  // Remaining parts skipped.
        break;
      }
      obs::ScopedSpan part_span(trace_, "part");
      QP_ASSIGN_OR_RETURN(ResultSet partial, Execute(part.query, stats));
      if (partial.truncated()) truncated = true;
      for (size_t i = 0; i < partial.num_rows(); ++i) {
        // Soft conditions scale the part's contribution by how closely
        // the row matches.
        accumulate(partial.row(i), part.degree * partial.satisfaction(i));
      }
      part_span.Counter("naive", 1);
      part_span.Counter("rows", partial.num_rows());
    }
  }

  // EXCEPT blocks: any row an exclusion query returns is vetoed. Once
  // cancelled, remaining exclusions are skipped — dislike vetoes are then
  // under-applied, which the truncated flag reports.
  std::unordered_set<Row, RowHash, RowEq> vetoed;
  for (const SelectQuery& exclusion : query.exclusions()) {
    if (truncated || (cancel_ != nullptr && cancel_->ShouldStop())) {
      truncated = true;
      break;
    }
    QP_ASSIGN_OR_RETURN(ResultSet excluded, Execute(exclusion, stats));
    if (excluded.truncated()) truncated = true;
    for (const Row& row : excluded.rows()) {
      vetoed.insert(row);
    }
  }

  std::vector<std::string> columns;
  if (!query.parts().empty()) {
    for (const auto& item : query.parts()[0].query.projections()) {
      columns.push_back(item.OutputName());
    }
  }
  ResultSet out(std::move(columns));
  for (auto& [row, group] : groups) {
    if (vetoed.contains(row)) continue;
    // A row produced only by penalty parts satisfies no positive
    // preference; it is not part of the personalized answer.
    if (group.count == 0 && !query.parts().empty()) continue;
    // Signed combined degree: likes minus dislikes (SignedCombinedDoi).
    double combined = group.degree.Degree() - group.dislike.Degree();
    switch (query.having().kind) {
      case HavingClause::Kind::kNone:
        break;
      case HavingClause::Kind::kCountAtLeast:
        if (group.count < query.having().min_count) continue;
        break;
      case HavingClause::Kind::kDegreeAbove:
        if (combined <= query.having().min_degree) continue;
        break;
    }
    out.AddRankedRow(row, group.count, combined);
  }
  out.set_truncated(truncated);
  out.Canonicalize();
  return out;
}

}  // namespace qp
