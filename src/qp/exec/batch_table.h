#ifndef QP_EXEC_BATCH_TABLE_H_
#define QP_EXEC_BATCH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "qp/relational/table.h"

namespace qp {

/// One contiguous typed column of a BatchTable. Unlike a Table column
/// (rows of Value variants), a BatchColumn stores its cells in a single
/// typed vector — row ids for binding columns, int64/double/string for
/// late-materialized payload columns — plus an optional null mask, so the
/// executor's batch loops run over flat arrays instead of chasing
/// per-tuple allocations.
class BatchColumn {
 public:
  enum class Type { kRowId, kInt64, kDouble, kString };

  explicit BatchColumn(Type type = Type::kRowId) : type_(type) {}

  /// Column type backing a relational column of `type`. kNull-typed
  /// columns (possible only for all-NULL literals) are carried as int64
  /// with every cell null.
  static Type TypeFor(DataType type);

  /// Late materialization: gathers `table` column `col` at `ids` into a
  /// contiguous typed column (one pass, no Value copies for numerics).
  static BatchColumn FromTable(const Table& table, size_t col,
                               const std::vector<RowId>& ids);

  /// A binding column over the given row ids.
  static BatchColumn RowIds(std::vector<RowId> ids);

  Type type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }
  void Reserve(size_t n);

  /// Appends. AppendValue requires the value's type to match (or NULL).
  void AppendRowId(RowId id);
  void AppendValue(const Value& v);
  void AppendFrom(const BatchColumn& other, size_t i);

  /// Cell accessors.
  RowId row_id_at(size_t i) const { return row_ids_[i]; }
  /// Whole-column view of a kRowId column (the gather source for late
  /// materialization).
  const std::vector<RowId>& row_ids() const { return row_ids_; }
  int64_t int_at(size_t i) const { return ints_[i]; }
  double double_at(size_t i) const { return doubles_[i]; }
  const std::string& string_at(size_t i) const { return strings_[i]; }
  bool is_null(size_t i) const {
    return !nulls_.empty() && nulls_[i] != 0;
  }
  /// Cell as a Value (NULL-aware) — the boundary back to row-at-a-time
  /// consumers (ResultSet rows).
  Value ValueAt(size_t i) const;

  /// Cell hash / equality, the building blocks of batch hash joins,
  /// group-by and duplicate elimination.
  uint64_t HashAt(size_t i) const;
  bool CellEquals(size_t i, const BatchColumn& other, size_t j) const;

  /// New column with the cells at `indices` (repeats/reorders allowed).
  BatchColumn Gather(const std::vector<uint32_t>& indices) const;
  /// In-place compaction: keeps cell i iff keep[i] != 0.
  void Filter(const std::vector<uint8_t>& keep);

 private:
  Type type_;
  std::vector<RowId> row_ids_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  /// Empty when the column has no nulls; else aligned with the cells.
  std::vector<uint8_t> nulls_;
};

/// A batch of rows in columnar form: a fixed number of *slots* (stable
/// indices, matching the executor's tuple-variable slots), each either
/// holding a live BatchColumn or dropped. Dropping a slot's column after
/// the last join that touches it (z3's tuple_set::delete_columns idiom)
/// releases its storage and narrows every later gather/filter pass, which
/// is what keeps the SQ duplicate-explosion and MQ UNION ALL paths on
/// narrow batches.
class BatchTable {
 public:
  BatchTable() = default;
  /// `num_slots` slots, all initially absent; zero rows.
  explicit BatchTable(size_t num_slots) : columns_(num_slots) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_slots() const { return columns_.size(); }
  bool has_column(size_t slot) const { return columns_[slot].live; }
  size_t live_columns() const;

  const BatchColumn& column(size_t slot) const { return columns_[slot].col; }

  /// Installs `col` at `slot`. When the table has live columns the size
  /// must match num_rows(); when it has none the table adopts the
  /// column's size as its row count.
  void SetColumn(size_t slot, BatchColumn col);
  /// Releases the slot's storage. The slot index stays valid (absent).
  void DropColumn(size_t slot);

  /// Sets the row count of a table with no live columns (a conjunct whose
  /// every slot was dropped still has a row multiplicity).
  void SetNumRowsColumnless(size_t n);

  /// New table with the rows at `indices`, gathering only live columns.
  BatchTable GatherRows(const std::vector<uint32_t>& indices) const;
  /// In-place compaction keeping rows where keep[i] != 0.
  void FilterRows(const std::vector<uint8_t>& keep);
  /// Appends row `row` of `src` (slot-compatible tables only: every live
  /// slot here must be live in src).
  void AppendRowFrom(const BatchTable& src, size_t row);

  /// Hash / equality of one row restricted to `slots` (all live).
  uint64_t RowHash(size_t row, const std::vector<size_t>& slots) const;
  bool RowsEqual(size_t row, const BatchTable& other, size_t other_row,
                 const std::vector<size_t>& slots,
                 const std::vector<size_t>& other_slots) const;

 private:
  struct Slot {
    BatchColumn col;
    bool live = false;
  };
  std::vector<Slot> columns_;
  size_t num_rows_ = 0;
};

/// Vectorized hash join over batch key columns: build once over the key
/// slots of a build-side batch, then probe with rows of another batch.
/// Collisions are resolved by cell-level comparison at probe time, so
/// matches are exact.
class BatchHashTable {
 public:
  /// `build` is retained and must outlive the hash table.
  BatchHashTable(const BatchTable* build, std::vector<size_t> key_slots);

  /// Appends to `out` the build-side row indices whose key equals row
  /// `row` of `probe` (keyed by `probe_slots`, same arity as the build
  /// key).
  void Probe(const BatchTable& probe, size_t row,
             const std::vector<size_t>& probe_slots,
             std::vector<uint32_t>* out) const;

 private:
  const BatchTable* build_;
  std::vector<size_t> key_slots_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace qp

#endif  // QP_EXEC_BATCH_TABLE_H_
