#ifndef QP_EXEC_RESULT_H_
#define QP_EXEC_RESULT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "qp/relational/table.h"

namespace qp {

/// Hash / equality functors for whole rows (used for DISTINCT, GROUP BY
/// and result comparison in tests).
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// The materialized output of a query execution: named columns and rows.
/// Compound (MQ-style) executions additionally carry, per row, the number
/// of partial queries that produced it (`counts`, the paper's count(*))
/// and the combined degree of interest (`degrees`, the paper's
/// DEGREE_OF_CONJUNCTION).
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  void AddRankedRow(Row row, size_t count, double degree) {
    rows_.push_back(std::move(row));
    counts_.push_back(count);
    degrees_.push_back(degree);
  }

  /// Per-row satisfaction of the query's soft (near) conditions, in
  /// (0, 1]. Populated only when the executed query contains near
  /// conditions; satisfaction(i) returns 1 otherwise.
  bool has_satisfactions() const { return !satisfactions_.empty(); }
  double satisfaction(size_t i) const {
    return satisfactions_.empty() ? 1.0 : satisfactions_[i];
  }
  /// Attaches the satisfaction column (must align with rows).
  void set_satisfactions(std::vector<double> satisfactions) {
    satisfactions_ = std::move(satisfactions);
  }

  /// Per-row annotations; empty unless produced by a compound execution.
  bool has_ranking() const { return !degrees_.empty(); }
  const std::vector<double>& degrees() const { return degrees_; }
  const std::vector<size_t>& counts() const { return counts_; }

  /// True when execution was cut short by a cancel token / deadline: the
  /// rows present are genuine answers of the query, but some answers may
  /// be missing (and, for ranked compound results, dislike vetoes may be
  /// incompletely applied). Set by the executor, never cleared by
  /// Canonicalize/Truncate.
  bool truncated() const { return truncated_; }
  void set_truncated(bool truncated) { truncated_ = truncated; }

  /// True if some row equals `row`.
  bool Contains(const Row& row) const;

  /// Sorts rows (and any aligned annotations) into a canonical order:
  /// by degree descending when ranked, then satisfied-preference count
  /// descending, then lexicographically by value. Makes executions
  /// deterministic regardless of hash iteration order — serial and
  /// thread-pool (service-layer) runs emit identical row sequences.
  void Canonicalize();

  /// Keeps only the first `n` rows (with their annotations). Combined
  /// with Canonicalize's degree ordering this implements top-N delivery.
  void Truncate(size_t n);

  /// Tab-separated dump with a header line, for examples and debugging.
  std::string DebugString(size_t max_rows = 50) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  std::vector<size_t> counts_;
  std::vector<double> degrees_;
  std::vector<double> satisfactions_;
  bool truncated_ = false;
};

}  // namespace qp

#endif  // QP_EXEC_RESULT_H_
