#include "qp/exec/batch_table.h"

#include <cassert>
#include <utility>

namespace qp {
namespace {

/// 64-bit mix (splitmix64 finalizer) — decorrelates per-column hashes
/// before they are combined into a row hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BatchColumn::Type BatchColumn::TypeFor(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return Type::kInt64;
    case DataType::kDouble:
      return Type::kDouble;
    case DataType::kString:
      return Type::kString;
    case DataType::kNull:
      return Type::kInt64;
  }
  return Type::kInt64;
}

BatchColumn BatchColumn::FromTable(const Table& table, size_t col,
                                   const std::vector<RowId>& ids) {
  BatchColumn out(TypeFor(table.schema().column(col).type));
  out.Reserve(ids.size());
  for (RowId id : ids) out.AppendValue(table.At(id, col));
  return out;
}

BatchColumn BatchColumn::RowIds(std::vector<RowId> ids) {
  BatchColumn out(Type::kRowId);
  out.row_ids_ = std::move(ids);
  return out;
}

size_t BatchColumn::size() const {
  switch (type_) {
    case Type::kRowId:
      return row_ids_.size();
    case Type::kInt64:
      return ints_.size();
    case Type::kDouble:
      return doubles_.size();
    case Type::kString:
      return strings_.size();
  }
  return 0;
}

void BatchColumn::Reserve(size_t n) {
  switch (type_) {
    case Type::kRowId:
      row_ids_.reserve(n);
      break;
    case Type::kInt64:
      ints_.reserve(n);
      break;
    case Type::kDouble:
      doubles_.reserve(n);
      break;
    case Type::kString:
      strings_.reserve(n);
      break;
  }
}

void BatchColumn::AppendRowId(RowId id) {
  assert(type_ == Type::kRowId);
  row_ids_.push_back(id);
  if (!nulls_.empty()) nulls_.push_back(0);
}

void BatchColumn::AppendValue(const Value& v) {
  const size_t old_size = size();
  if (v.is_null()) {
    if (nulls_.empty()) nulls_.assign(old_size, 0);
    nulls_.push_back(1);
    switch (type_) {
      case Type::kRowId:
        row_ids_.push_back(0);
        break;
      case Type::kInt64:
        ints_.push_back(0);
        break;
      case Type::kDouble:
        doubles_.push_back(0.0);
        break;
      case Type::kString:
        strings_.emplace_back();
        break;
    }
    return;
  }
  switch (type_) {
    case Type::kRowId:
      assert(v.type() == DataType::kInt64);
      row_ids_.push_back(static_cast<RowId>(v.as_int()));
      break;
    case Type::kInt64:
      assert(v.type() == DataType::kInt64);
      ints_.push_back(v.as_int());
      break;
    case Type::kDouble:
      assert(v.type() == DataType::kDouble);
      doubles_.push_back(v.as_double());
      break;
    case Type::kString:
      assert(v.type() == DataType::kString);
      strings_.push_back(v.as_string());
      break;
  }
  if (!nulls_.empty()) nulls_.push_back(0);
}

void BatchColumn::AppendFrom(const BatchColumn& other, size_t i) {
  assert(type_ == other.type_);
  if (other.is_null(i)) {
    AppendValue(Value::Null());
    return;
  }
  switch (type_) {
    case Type::kRowId:
      AppendRowId(other.row_ids_[i]);
      break;
    case Type::kInt64:
      ints_.push_back(other.ints_[i]);
      if (!nulls_.empty()) nulls_.push_back(0);
      break;
    case Type::kDouble:
      doubles_.push_back(other.doubles_[i]);
      if (!nulls_.empty()) nulls_.push_back(0);
      break;
    case Type::kString:
      strings_.push_back(other.strings_[i]);
      if (!nulls_.empty()) nulls_.push_back(0);
      break;
  }
}

Value BatchColumn::ValueAt(size_t i) const {
  if (is_null(i)) return Value::Null();
  switch (type_) {
    case Type::kRowId:
      return Value::Int(static_cast<int64_t>(row_ids_[i]));
    case Type::kInt64:
      return Value::Int(ints_[i]);
    case Type::kDouble:
      return Value::Real(doubles_[i]);
    case Type::kString:
      return Value::Str(strings_[i]);
  }
  return Value::Null();
}

uint64_t BatchColumn::HashAt(size_t i) const {
  if (is_null(i)) return Mix(0x6e756c6cULL);  // "null"
  switch (type_) {
    case Type::kRowId:
      return Mix(row_ids_[i]);
    case Type::kInt64:
      return Mix(static_cast<uint64_t>(ints_[i]));
    case Type::kDouble: {
      // Match int/double coercion: an integral double hashes like the
      // int it equals would not — batch hashes are only ever compared
      // against cells of the same column type, so plain bit hashing is
      // sufficient here (equality still verifies cells).
      double d = doubles_[i];
      if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix(bits);
    }
    case Type::kString: {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (char c : strings_[i]) {
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
      }
      return Mix(h);
    }
  }
  return 0;
}

bool BatchColumn::CellEquals(size_t i, const BatchColumn& other,
                             size_t j) const {
  if (type_ != other.type_) return false;
  const bool a_null = is_null(i);
  const bool b_null = other.is_null(j);
  if (a_null || b_null) return a_null && b_null;
  switch (type_) {
    case Type::kRowId:
      return row_ids_[i] == other.row_ids_[j];
    case Type::kInt64:
      return ints_[i] == other.ints_[j];
    case Type::kDouble:
      return doubles_[i] == other.doubles_[j];
    case Type::kString:
      return strings_[i] == other.strings_[j];
  }
  return false;
}

BatchColumn BatchColumn::Gather(const std::vector<uint32_t>& indices) const {
  BatchColumn out(type_);
  out.Reserve(indices.size());
  switch (type_) {
    case Type::kRowId:
      for (uint32_t i : indices) out.row_ids_.push_back(row_ids_[i]);
      break;
    case Type::kInt64:
      for (uint32_t i : indices) out.ints_.push_back(ints_[i]);
      break;
    case Type::kDouble:
      for (uint32_t i : indices) out.doubles_.push_back(doubles_[i]);
      break;
    case Type::kString:
      for (uint32_t i : indices) out.strings_.push_back(strings_[i]);
      break;
  }
  if (!nulls_.empty()) {
    out.nulls_.reserve(indices.size());
    for (uint32_t i : indices) out.nulls_.push_back(nulls_[i]);
  }
  return out;
}

void BatchColumn::Filter(const std::vector<uint8_t>& keep) {
  size_t w = 0;
  const size_t n = size();
  assert(keep.size() >= n);
  switch (type_) {
    case Type::kRowId:
      for (size_t i = 0; i < n; ++i) {
        if (keep[i]) row_ids_[w++] = row_ids_[i];
      }
      row_ids_.resize(w);
      break;
    case Type::kInt64:
      for (size_t i = 0; i < n; ++i) {
        if (keep[i]) ints_[w++] = ints_[i];
      }
      ints_.resize(w);
      break;
    case Type::kDouble:
      for (size_t i = 0; i < n; ++i) {
        if (keep[i]) doubles_[w++] = doubles_[i];
      }
      doubles_.resize(w);
      break;
    case Type::kString:
      for (size_t i = 0; i < n; ++i) {
        if (keep[i]) strings_[w] = std::move(strings_[i]), ++w;
      }
      strings_.resize(w);
      break;
  }
  if (!nulls_.empty()) {
    size_t nw = 0;
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) nulls_[nw++] = nulls_[i];
    }
    nulls_.resize(nw);
  }
}

size_t BatchTable::live_columns() const {
  size_t n = 0;
  for (const Slot& slot : columns_) n += slot.live ? 1 : 0;
  return n;
}

void BatchTable::SetColumn(size_t slot, BatchColumn col) {
  assert(slot < columns_.size());
  if (live_columns() == 0) {
    num_rows_ = col.size();
  } else {
    assert(col.size() == num_rows_);
  }
  columns_[slot].col = std::move(col);
  columns_[slot].live = true;
}

void BatchTable::DropColumn(size_t slot) {
  assert(slot < columns_.size());
  columns_[slot].col = BatchColumn();
  columns_[slot].live = false;
}

void BatchTable::SetNumRowsColumnless(size_t n) {
  assert(live_columns() == 0);
  num_rows_ = n;
}

BatchTable BatchTable::GatherRows(const std::vector<uint32_t>& indices) const {
  BatchTable out(columns_.size());
  out.num_rows_ = indices.size();
  for (size_t s = 0; s < columns_.size(); ++s) {
    if (!columns_[s].live) continue;
    out.columns_[s].col = columns_[s].col.Gather(indices);
    out.columns_[s].live = true;
  }
  return out;
}

void BatchTable::FilterRows(const std::vector<uint8_t>& keep) {
  size_t kept = 0;
  for (size_t i = 0; i < num_rows_; ++i) kept += keep[i] ? 1 : 0;
  for (Slot& slot : columns_) {
    if (slot.live) slot.col.Filter(keep);
  }
  num_rows_ = kept;
}

void BatchTable::AppendRowFrom(const BatchTable& src, size_t row) {
  for (size_t s = 0; s < columns_.size(); ++s) {
    if (!columns_[s].live) continue;
    assert(s < src.columns_.size() && src.columns_[s].live);
    columns_[s].col.AppendFrom(src.columns_[s].col, row);
  }
  ++num_rows_;
}

uint64_t BatchTable::RowHash(size_t row,
                             const std::vector<size_t>& slots) const {
  uint64_t h = 0x12345ULL;
  for (size_t s : slots) {
    h = h * 1000003ULL ^ columns_[s].col.HashAt(row);
  }
  return h;
}

bool BatchTable::RowsEqual(size_t row, const BatchTable& other,
                           size_t other_row, const std::vector<size_t>& slots,
                           const std::vector<size_t>& other_slots) const {
  assert(slots.size() == other_slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!columns_[slots[i]].col.CellEquals(row, other.columns_[other_slots[i]].col,
                                           other_row)) {
      return false;
    }
  }
  return true;
}

BatchHashTable::BatchHashTable(const BatchTable* build,
                               std::vector<size_t> key_slots)
    : build_(build), key_slots_(std::move(key_slots)) {
  buckets_.reserve(build_->num_rows());
  for (size_t i = 0; i < build_->num_rows(); ++i) {
    buckets_[build_->RowHash(i, key_slots_)].push_back(
        static_cast<uint32_t>(i));
  }
}

void BatchHashTable::Probe(const BatchTable& probe, size_t row,
                           const std::vector<size_t>& probe_slots,
                           std::vector<uint32_t>* out) const {
  auto it = buckets_.find(probe.RowHash(row, probe_slots));
  if (it == buckets_.end()) return;
  for (uint32_t candidate : it->second) {
    if (build_->RowsEqual(candidate, probe, row, key_slots_, probe_slots)) {
      out->push_back(candidate);
    }
  }
}

}  // namespace qp
