#ifndef QP_EXEC_EXECUTOR_H_
#define QP_EXEC_EXECUTOR_H_

#include <unordered_set>

#include "qp/exec/result.h"
#include "qp/obs/metrics.h"
#include "qp/obs/trace.h"
#include "qp/query/query.h"
#include "qp/relational/database.h"
#include "qp/util/deadline.h"
#include "qp/util/status.h"

namespace qp {

/// Execution counters, for tests and the executor ablation benchmark.
/// Accumulated through an Execute call tree via a single caller-owned
/// instance: compound execution passes the same pointer into its part /
/// exclusion recursions, so every counter is bumped exactly once at the
/// site that does the work — never again at an enclosing level.
struct ExecutorStats {
  /// Number of conjunctive blocks executed (SQ queries pay C(K-M, L) of
  /// these). Under the shared-core MQ optimization this counts the core
  /// materialization plus one per part residue run, keeping per-part
  /// attribution consistent across the naive / drive / merge strategies.
  size_t disjuncts = 0;
  /// Variable bindings produced across all join steps, including
  /// intermediate ones — a proxy for work done.
  size_t bindings = 0;
  /// Rows emitted before duplicate elimination.
  size_t raw_rows = 0;
  /// Partial queries served from a shared materialized core instead of a
  /// from-scratch execution (the MQ shared-core optimization).
  size_t core_reuses = 0;
};

/// Join strategy knob, exposed for the ablation benchmark. Production
/// (default) behaviour is hash joins with greedy connected ordering.
enum class JoinStrategy {
  kHashJoin,
  /// Force nested-loop probing (no hash indexes); quadratic, used only to
  /// quantify what the hash indexes buy.
  kNestedLoop,
};

/// Execution engine knob. Both engines produce canonically identical
/// ResultSets and identical ExecutorStats (pinned by the differential
/// oracle and the stats-attribution regression suite); they differ only
/// in how intermediate bindings are represented.
enum class ExecStrategy {
  /// Tuple-at-a-time: each intermediate binding is a heap-allocated
  /// vector<RowId>. The original engine, kept as the differential oracle.
  kTuple,
  /// Columnar batches (BatchTable): one contiguous RowId column per tuple
  /// variable, gather/filter join steps, late materialization of payload
  /// columns, column drop after the last join that needs a slot.
  kVectorized,
};

/// Evaluates queries against an in-memory Database. The executor handles
/// the SQL subset the personalization framework emits:
///  - SelectQuery: arbitrary and/or trees of equality selections and
///    joins, with or without DISTINCT. Internally the qualification is
///    OR-expanded to DNF and each conjunct is executed with index-backed
///    hash joins (greedy connected join ordering), mirroring what a
///    commercial optimizer does to the paper's SQ queries.
///  - CompoundQuery: UNION ALL of parts, GROUP BY the projected columns,
///    HAVING count(*) >= L or DEGREE_OF_CONJUNCTION(doi) > d, ORDER BY
///    combined degree of interest descending (ranking), EXCEPT blocks,
///    and signed degrees for dislike penalties.
/// MQ compounds whose parts share a common conjunctive block (they always
/// do when built by PreferenceIntegrator: the original query is repeated
/// in every part) are executed with the *shared-core* optimization: the
/// common block is materialized once and each part only joins its own
/// preference chain on top — the "efficient execution of personalized
/// queries" the paper lists as future work. Disable with
/// set_shared_core(false) (used by the ablation benchmark).
/// Results are canonicalized (deterministically ordered).
class Executor {
 public:
  /// `db` is retained and must outlive the executor.
  explicit Executor(const Database* db) : db_(db) {}

  Result<ResultSet> Execute(const SelectQuery& query,
                            ExecutorStats* stats = nullptr) const;
  Result<ResultSet> Execute(const CompoundQuery& query,
                            ExecutorStats* stats = nullptr) const;

  void set_join_strategy(JoinStrategy strategy) { strategy_ = strategy; }
  void set_shared_core(bool enabled) { shared_core_ = enabled; }

  /// Selects the execution engine (default: vectorized batches). The
  /// tuple engine remains available as the differential-testing oracle
  /// and for ablation benchmarks.
  void set_exec_strategy(ExecStrategy strategy) { exec_ = strategy; }
  ExecStrategy exec_strategy() const { return exec_; }

  /// Cooperative cancellation: `cancel` (not owned; may be null) is
  /// polled periodically from the row loops. When it trips, execution
  /// stops producing and returns the rows fully materialized so far as a
  /// partial ResultSet flagged truncated() — every returned row is a
  /// genuine answer, but the set may be incomplete and (for compounds)
  /// dislike vetoes may be under-applied. The token must outlive the
  /// Execute call.
  void set_cancel_token(const CancelToken* cancel) { cancel_ = cancel; }

  /// Request tracing: the outermost Execute contributes an "execution"
  /// span (with disjunct/binding/row counters); each executed disjunct
  /// and each compound part nests a child span. Not owned; may be null;
  /// must outlive the Execute calls.
  void set_trace(obs::RequestTrace* trace) { trace_ = trace; }

  /// Mirrors ExecutorStats deltas into `registry` (qp_exec_* counters)
  /// after each outermost Execute. Counter pointers are cached here, so
  /// the per-query cost is four atomic adds. May be null to unbind.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  /// Strategy dispatchers.
  Result<ResultSet> ExecuteSelect(const SelectQuery& query,
                                  ExecutorStats* stats) const;
  Result<ResultSet> ExecuteCompound(const CompoundQuery& query,
                                    ExecutorStats* stats) const;
  /// Tuple-at-a-time engine.
  Result<ResultSet> ExecuteSelectTuple(const SelectQuery& query,
                                       ExecutorStats* stats) const;
  Result<ResultSet> ExecuteCompoundTuple(const CompoundQuery& query,
                                         ExecutorStats* stats) const;
  /// Columnar batch engine.
  Result<ResultSet> ExecuteSelectVec(const SelectQuery& query,
                                     ExecutorStats* stats) const;
  Result<ResultSet> ExecuteCompoundVec(const CompoundQuery& query,
                                       ExecutorStats* stats) const;
  /// EXCEPT blocks, shared by both compound engines: rows returned by any
  /// exclusion query land in `vetoed`.
  Status CollectExclusions(const CompoundQuery& query, ExecutorStats* stats,
                           std::unordered_set<Row, RowHash, RowEq>* vetoed,
                           bool* truncated) const;
  /// Closes the outermost "execution" span with the stats delta and rows
  /// produced, and mirrors the delta into the bound registry counters.
  void FinishOuterExecute(obs::ScopedSpan* span, const ExecutorStats& entry,
                          const ExecutorStats& exit,
                          const Result<ResultSet>& result) const;

  const Database* db_;
  JoinStrategy strategy_ = JoinStrategy::kHashJoin;
  ExecStrategy exec_ = ExecStrategy::kVectorized;
  bool shared_core_ = true;
  const CancelToken* cancel_ = nullptr;
  obs::RequestTrace* trace_ = nullptr;
  obs::Counter* metric_disjuncts_ = nullptr;
  obs::Counter* metric_bindings_ = nullptr;
  obs::Counter* metric_raw_rows_ = nullptr;
  obs::Counter* metric_core_reuses_ = nullptr;
  /// Execute recursion depth (compound -> part / exclusion -> select).
  /// Spans and metric flushes attach to the outermost frame only; stats
  /// themselves are incremented exactly once at the working site.
  mutable size_t exec_depth_ = 0;
};

}  // namespace qp

#endif  // QP_EXEC_EXECUTOR_H_
