#include "qp/exec/result.h"

#include <algorithm>
#include <numeric>

#include "qp/util/string_util.h"

namespace qp {

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x3456789ULL;
  for (const Value& v : row) {
    h = h * 1000003ULL ^ v.Hash();
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool ResultSet::Contains(const Row& row) const {
  RowEq eq;
  for (const Row& r : rows_) {
    if (eq(r, row)) return true;
  }
  return false;
}

namespace {

bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

}  // namespace

void ResultSet::Canonicalize() {
  std::vector<size_t> order(rows_.size());
  std::iota(order.begin(), order.end(), 0);
  // Total order over ranked output: degree desc, then satisfied-count
  // desc, then row values — so two rows tying on combined degree are not
  // left to hash-iteration (insertion) order, and parallel and serial
  // executions emit identical row sequences. stable_sort keeps equal-row
  // duplicates (bag semantics) aligned with their annotation columns.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (!degrees_.empty() && degrees_[a] != degrees_[b]) {
      return degrees_[a] > degrees_[b];
    }
    if (!counts_.empty() && counts_[a] != counts_[b]) {
      return counts_[a] > counts_[b];
    }
    return RowLess(rows_[a], rows_[b]);
  });
  std::vector<Row> rows;
  rows.reserve(rows_.size());
  std::vector<size_t> counts;
  std::vector<double> degrees;
  std::vector<double> satisfactions;
  for (size_t i : order) {
    rows.push_back(std::move(rows_[i]));
    if (!counts_.empty()) counts.push_back(counts_[i]);
    if (!degrees_.empty()) degrees.push_back(degrees_[i]);
    if (!satisfactions_.empty()) satisfactions.push_back(satisfactions_[i]);
  }
  rows_ = std::move(rows);
  counts_ = std::move(counts);
  degrees_ = std::move(degrees);
  satisfactions_ = std::move(satisfactions);
}

void ResultSet::Truncate(size_t n) {
  if (rows_.size() > n) rows_.resize(n);
  if (counts_.size() > n) counts_.resize(n);
  if (degrees_.size() > n) degrees_.resize(n);
  if (satisfactions_.size() > n) satisfactions_.resize(n);
}

std::string ResultSet::DebugString(size_t max_rows) const {
  std::string out = Join(columns_, "\t");
  if (has_ranking()) out += "\t#prefs\tdegree";
  out += "\n";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    std::vector<std::string> cells;
    for (const Value& v : rows_[i]) cells.push_back(v.ToString());
    out += Join(cells, "\t");
    if (has_ranking()) {
      out += "\t" + std::to_string(counts_[i]) + "\t" +
             FormatDouble(degrees_[i], 4);
    }
    out += "\n";
  }
  if (rows_.size() > max_rows) {
    out += "... (" + std::to_string(rows_.size() - max_rows) + " more)\n";
  }
  return out;
}

}  // namespace qp
