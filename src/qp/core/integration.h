#ifndef QP_CORE_INTEGRATION_H_
#define QP_CORE_INTEGRATION_H_

#include <optional>
#include <vector>

#include "qp/graph/preference_path.h"
#include "qp/query/query.h"
#include "qp/util/status.h"

namespace qp {

/// How negative (dislike) preferences are enforced.
enum class NegativeMode {
  /// Rows matching a dislike are removed from the answer (an EXCEPT
  /// block per dislike).
  kVeto,
  /// Rows matching a dislike stay but their estimated degree of interest
  /// becomes signed: the noisy-or of satisfied likes minus the noisy-or
  /// of satisfied dislike magnitudes (a negative-degree part per
  /// dislike). Rows matching only dislikes rank below everything else.
  kPenalty,
};

/// Parameters of preference integration (paper Sections 4 and 6).
struct IntegrationParams {
  /// M: the top `mandatory_count` selected preferences must be satisfied
  /// by every result.
  size_t mandatory_count = 0;
  /// L: results must satisfy at least this many of the remaining K - M
  /// preferences. 0 means "mandatory only". Ignored when `min_degree` is
  /// set (MQ only).
  size_t min_satisfied = 1;
  /// Alternative to L: minimum estimated degree of interest per result
  /// row, enforced via HAVING DEGREE_OF_CONJUNCTION(doi) > min_degree.
  /// Only expressible in the MQ form.
  std::optional<double> min_degree;
  /// Rank results by estimated degree of interest (MQ form).
  bool order_by_degree = true;
  /// Safety bound on the number of L-subsets SQ may enumerate
  /// (C(K-M, L) grows combinatorially).
  size_t max_combinations = 1000000;
  /// Enforcement of negative preferences (MQ only).
  NegativeMode negative_mode = NegativeMode::kPenalty;
};

/// Builds personalized queries from the K selected preferences.
///
/// Tuple-variable allocation follows Section 6: preferences sharing a
/// common prefix of to-one joins share the corresponding tuple variables
/// (forced — the joined tuple is functionally determined); from the first
/// to-many join onwards every preference gets fresh variables, so
/// independent preferences are not accidentally required to be met by the
/// same object (the "A. Hopkins as Batman" pitfall).
class PreferenceIntegrator {
 public:
  PreferenceIntegrator() = default;

  /// SQ (single query): the original query extended with one complex
  /// qualification — the conjunction of the mandatory conditions AND the
  /// disjunction of all conjunctions of L non-mutually-conflicting
  /// conditions from the remaining K - M. The result is DISTINCT.
  /// Fails (kFailedPrecondition) if mandatory preferences conflict
  /// pairwise or no valid L-subset exists; (kInvalidArgument) if
  /// M > K or L > K - M.
  Result<SelectQuery> BuildSingleQuery(
      const SelectQuery& original,
      const std::vector<PreferencePath>& preferences,
      const IntegrationParams& params) const;

  /// MQ (multiple queries): K - M partial queries — the original plus the
  /// mandatory conditions plus one optional preference each — combined by
  /// UNION ALL, GROUP BY the original projection, HAVING count(*) >= L
  /// (or DEGREE_OF_CONJUNCTION(doi) > min_degree), ORDER BY estimated
  /// degree. Each part carries its preference's degree of interest.
  /// With K - M == 0 the compound degenerates to one part (original +
  /// mandatory conditions).
  Result<CompoundQuery> BuildMultipleQueries(
      const SelectQuery& original,
      const std::vector<PreferencePath>& preferences,
      const IntegrationParams& params) const;

  /// MQ with dislikes: `negatives` are negative transitive selections
  /// (PreferencePath::is_negative()); per params.negative_mode each
  /// becomes an EXCEPT block (veto) or a negative-degree penalty part.
  /// The single-query form cannot express dislikes (its condition
  /// language has no negation), so BuildSingleQuery rejects them.
  Result<CompoundQuery> BuildMultipleQueries(
      const SelectQuery& original,
      const std::vector<PreferencePath>& preferences,
      const std::vector<PreferencePath>& negatives,
      const IntegrationParams& params) const;
};

}  // namespace qp

#endif  // QP_CORE_INTEGRATION_H_
