#include "qp/core/semantics.h"

namespace qp {

void AssociationSemanticFilter::AddAssociation(const Value& a,
                                               const Value& b) {
  associations_[a].insert(b);
  associations_[b].insert(a);
}

bool AssociationSemanticFilter::Associated(const Value& a,
                                           const Value& b) const {
  if (a == b) return true;
  auto it = associations_.find(a);
  return it != associations_.end() && it->second.contains(b);
}

bool AssociationSemanticFilter::IsRelated(const PreferencePath& path,
                                          const SelectQuery& query) const {
  if (!path.selection().has_value()) return true;  // Joins are neutral.
  std::vector<AtomicCondition> atoms;
  if (query.where() != nullptr) query.where()->CollectAtoms(&atoms);
  bool any_literal = false;
  for (const AtomicCondition& atom : atoms) {
    if (atom.is_join()) continue;
    any_literal = true;
    if (Associated(atom.value(), path.selection()->value)) return true;
  }
  // A query without literals constrains nothing semantically.
  return !any_literal;
}

}  // namespace qp
