#ifndef QP_CORE_SELECTION_H_
#define QP_CORE_SELECTION_H_

#include <vector>

#include "qp/core/interest_criterion.h"
#include "qp/core/query_graph.h"
#include "qp/core/semantics.h"
#include "qp/graph/personalization_graph.h"
#include "qp/obs/trace.h"
#include "qp/graph/preference_path.h"
#include "qp/query/query.h"
#include "qp/util/deadline.h"
#include "qp/util/status.h"

namespace qp {

/// Counters describing one run of the selection algorithm.
struct SelectionStats {
  size_t paths_popped = 0;       // Candidates taken off the queue.
  size_t paths_pushed = 0;       // Candidates entered into the queue.
  size_t pruned_cycle = 0;       // Expansions into a visited/query relation.
  size_t pruned_conflict = 0;    // Candidates conflicting with the query.
  size_t pruned_semantic = 0;    // Rejected by the semantic filter.
  size_t pruned_criterion = 0;   // Expansions cut by the interest criterion.
  size_t max_queue_size = 0;
  /// True when the run was cut short by a cancel token / deadline. The
  /// paths returned are then a *prefix* of the unconstrained result in
  /// decreasing-doi order (the loop emits accepted selections in final
  /// order, so stopping early truncates, never reorders).
  bool degraded = false;
};

/// Preference selection (paper Section 5.2, Figure 5): extracts from the
/// user's personalization graph the top-K transitive selections that are
/// syntactically related to — and not conflicting with — the query, in
/// decreasing degree-of-interest order, where K is determined by the
/// interest criterion.
///
/// The implementation is the paper's best-first traversal: a queue of
/// candidate paths ordered by decreasing degree (ties broken towards
/// shorter/earlier paths), expanding join paths outwards from the query
/// graph and pruning cycles, conflicts, and criterion failures.
class PreferenceSelector {
 public:
  /// `graph` is retained and must outlive the selector.
  explicit PreferenceSelector(const PersonalizationGraph* graph)
      : graph_(graph) {}

  /// Runs the algorithm for `query` under `criterion`. The result is the
  /// ordered set P_K (transitive selections, degree non-increasing).
  /// `semantic`, when given, restricts the output to semantically
  /// related preferences (paper: "the algorithm may output only these") —
  /// rejected candidates are pruned like conflicts and do not consume the
  /// interest criterion.
  ///
  /// `cancel`, when given, is polled once per queue pop: if it trips, the
  /// run stops and returns the selections accepted so far with
  /// stats->degraded set — a valid prefix of the full top-K (decreasing-
  /// doi order makes truncation semantically clean).
  ///
  /// `trace`, when given, receives a "preference_selection" span whose
  /// counters are the SelectionStats of the run (paths pushed/popped,
  /// prune attribution, degraded flag) — the paper's Figure 6 measurement
  /// attached to the request that paid for it.
  Result<std::vector<PreferencePath>> Select(
      const SelectQuery& query, const InterestCriterion& criterion,
      SelectionStats* stats = nullptr,
      const SemanticFilter* semantic = nullptr,
      const CancelToken* cancel = nullptr,
      obs::RequestTrace* trace = nullptr) const;

  /// Reference implementation: exhaustively enumerates every related
  /// non-conflicting transitive selection, sorts by (degree desc, length
  /// asc), and applies the criterion greedily. Used to verify completeness
  /// (paper Theorem 2) in tests and as the no-pruning baseline in the
  /// ablation benchmark.
  Result<std::vector<PreferencePath>> SelectBruteForce(
      const SelectQuery& query, const InterestCriterion& criterion,
      size_t* enumerated = nullptr,
      const SemanticFilter* semantic = nullptr) const;

  /// Selects the *dislikes* relevant to the query (negative-preference
  /// extension): every negative transitive selection that is related to
  /// the query, satisfiable against it (a dislike conflicting with a
  /// query condition through a to-one chain can never match and is
  /// dropped), and of magnitude at least `min_abs_doi`; sorted by |doi|
  /// descending (ties towards shorter paths), capped at `max_count`.
  Result<std::vector<PreferencePath>> SelectNegative(
      const SelectQuery& query, size_t max_count,
      double min_abs_doi = 0.0) const;

 private:
  Result<std::vector<PreferencePath>> SelectInternal(
      const SelectQuery& query, const InterestCriterion& criterion,
      SelectionStats* stats, const SemanticFilter* semantic,
      const CancelToken* cancel) const;

  const PersonalizationGraph* graph_;
};

}  // namespace qp

#endif  // QP_CORE_SELECTION_H_
