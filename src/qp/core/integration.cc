#include "qp/core/integration.h"

#include <cctype>
#include <map>

#include "qp/core/conflict.h"

namespace qp {
namespace {

/// Allocates tuple variables in `query` for preference paths and
/// materializes each path's conditions against those variables,
/// implementing the Section 6 sharing rule (share along to-one prefixes,
/// diverge at the first to-many join).
class VariableAllocator {
 public:
  explicit VariableAllocator(SelectQuery* query) : query_(query) {}

  std::vector<AtomicCondition> Materialize(const PreferencePath& path) {
    std::vector<AtomicCondition> atoms;
    std::string current = path.anchor_alias();
    std::string chain_key = current;
    bool sharable = true;  // Still on the (possibly shared) to-one prefix.
    for (const JoinEdge& edge : path.joins()) {
      chain_key += "|" + edge.from.ToString() + "=" + edge.to.ToString();
      std::string target;
      if (edge.cardinality == JoinCardinality::kToOne && sharable) {
        auto it = shared_.find(chain_key);
        if (it != shared_.end()) {
          target = it->second;
        } else {
          target = NewVariable(edge.to.table);
          shared_.emplace(chain_key, target);
        }
      } else {
        // First to-many join (or anything after one): fresh variables so
        // independent preferences stay independent.
        sharable = false;
        target = NewVariable(edge.to.table);
      }
      atoms.push_back(AtomicCondition::Join(current, edge.from.column,
                                            target, edge.to.column));
      current = std::move(target);
    }
    if (path.selection().has_value()) {
      if (path.selection()->is_near()) {
        atoms.push_back(AtomicCondition::Near(
            current, path.selection()->attribute.column,
            path.selection()->value, path.selection()->near_width));
      } else {
        atoms.push_back(AtomicCondition::Selection(
            current, path.selection()->attribute.column,
            path.selection()->value));
      }
    }
    return atoms;
  }

 private:
  std::string NewVariable(const std::string& table) {
    std::string prefix;
    for (char c : table.substr(0, 2)) {
      prefix += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    std::string alias = query_->FreshAlias(prefix);
    // AddVariable cannot fail: FreshAlias guarantees uniqueness.
    (void)query_->AddVariable(alias, table);
    return alias;
  }

  SelectQuery* query_;
  std::map<std::string, std::string> shared_;
};

/// AND of `atoms` as a condition tree, dropping exact duplicates
/// ("any repeated conditions are removed").
ConditionPtr Conjunction(const std::vector<AtomicCondition>& atoms) {
  std::vector<AtomicCondition> unique;
  for (const AtomicCondition& atom : atoms) {
    bool seen = false;
    for (const AtomicCondition& u : unique) {
      if (u == atom) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(atom);
  }
  std::vector<ConditionPtr> nodes;
  nodes.reserve(unique.size());
  for (AtomicCondition& atom : unique) {
    nodes.push_back(ConditionNode::MakeAtom(std::move(atom)));
  }
  return ConditionNode::MakeAnd(std::move(nodes));
}

/// C(n, k) with saturation at `cap`.
size_t CombinationsCapped(size_t n, size_t k, size_t cap) {
  if (k > n) return 0;
  size_t result = 1;
  for (size_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
    if (result > cap) return cap + 1;
  }
  return result;
}

Status CheckParams(size_t num_preferences, const IntegrationParams& params) {
  if (params.mandatory_count > num_preferences) {
    return Status::InvalidArgument(
        "M = " + std::to_string(params.mandatory_count) + " exceeds K = " +
        std::to_string(num_preferences));
  }
  if (!params.min_degree.has_value() &&
      params.min_satisfied > num_preferences - params.mandatory_count) {
    return Status::InvalidArgument(
        "L = " + std::to_string(params.min_satisfied) + " exceeds K - M = " +
        std::to_string(num_preferences - params.mandatory_count));
  }
  return Status::Ok();
}

Status CheckMandatoryConflicts(const std::vector<PreferencePath>& preferences,
                               size_t mandatory_count) {
  for (size_t i = 0; i < mandatory_count; ++i) {
    for (size_t j = i + 1; j < mandatory_count; ++j) {
      if (ConflictDetector::Conflicting(preferences[i], preferences[j])) {
        return Status::FailedPrecondition(
            "mandatory preferences conflict: " +
            preferences[i].ConditionString() + " vs " +
            preferences[j].ConditionString());
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<SelectQuery> PreferenceIntegrator::BuildSingleQuery(
    const SelectQuery& original,
    const std::vector<PreferencePath>& preferences,
    const IntegrationParams& params) const {
  for (const PreferencePath& pref : preferences) {
    if (pref.is_negative()) {
      return Status::Unimplemented(
          "negative preferences cannot be expressed in the single-query "
          "form (no negation in the condition language); use the MQ form");
    }
  }
  if (preferences.empty()) return original;
  if (params.min_degree.has_value()) {
    return Status::InvalidArgument(
        "a minimum result degree (min_degree) is only expressible in the "
        "MQ form");
  }
  QP_RETURN_IF_ERROR(CheckParams(preferences.size(), params));
  QP_RETURN_IF_ERROR(
      CheckMandatoryConflicts(preferences, params.mandatory_count));

  const size_t k = preferences.size();
  const size_t m = params.mandatory_count;
  const size_t l = params.min_satisfied;

  SelectQuery result = original;
  result.set_distinct(true);
  VariableAllocator allocator(&result);

  std::vector<std::vector<AtomicCondition>> conditions;
  conditions.reserve(k);
  for (const PreferencePath& path : preferences) {
    conditions.push_back(allocator.Materialize(path));
  }

  // Mandatory block: conjunction of the top-M conditions.
  std::vector<AtomicCondition> mandatory_atoms;
  for (size_t i = 0; i < m; ++i) {
    mandatory_atoms.insert(mandatory_atoms.end(), conditions[i].begin(),
                           conditions[i].end());
  }

  // Optional block: disjunction over all conflict-free L-subsets.
  ConditionPtr disjunction;
  if (l > 0) {
    if (CombinationsCapped(k - m, l, params.max_combinations) >
        params.max_combinations) {
      return Status::OutOfRange(
          "SQ would enumerate more than " +
          std::to_string(params.max_combinations) + " combinations");
    }
    // Precompute the pairwise conflict relation among optional conditions.
    const size_t optional = k - m;
    std::vector<std::vector<bool>> conflicting(
        optional, std::vector<bool>(optional, false));
    for (size_t i = 0; i < optional; ++i) {
      for (size_t j = i + 1; j < optional; ++j) {
        conflicting[i][j] = conflicting[j][i] = ConflictDetector::Conflicting(
            preferences[m + i], preferences[m + j]);
      }
    }
    std::vector<ConditionPtr> disjuncts;
    std::vector<size_t> combo;
    // Recursive enumeration of conflict-free L-subsets in lexicographic
    // order (so higher-degree conditions lead the disjunction).
    auto enumerate = [&](auto&& self, size_t next) -> void {
      if (combo.size() == l) {
        std::vector<AtomicCondition> atoms;
        for (size_t idx : combo) {
          atoms.insert(atoms.end(), conditions[m + idx].begin(),
                       conditions[m + idx].end());
        }
        disjuncts.push_back(Conjunction(atoms));
        return;
      }
      for (size_t i = next; i < optional; ++i) {
        bool ok = true;
        for (size_t chosen : combo) {
          if (conflicting[chosen][i]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        combo.push_back(i);
        self(self, i + 1);
        combo.pop_back();
      }
    };
    enumerate(enumerate, 0);
    if (disjuncts.empty()) {
      return Status::FailedPrecondition(
          "no conflict-free combination of " + std::to_string(l) +
          " preferences exists");
    }
    disjunction = ConditionNode::MakeOr(std::move(disjuncts));
  }

  result.set_where(ConditionNode::MakeAnd(
      {original.where(), Conjunction(mandatory_atoms), disjunction}));
  return result;
}

Result<CompoundQuery> PreferenceIntegrator::BuildMultipleQueries(
    const SelectQuery& original,
    const std::vector<PreferencePath>& preferences,
    const IntegrationParams& params) const {
  return BuildMultipleQueries(original, preferences, {}, params);
}

Result<CompoundQuery> PreferenceIntegrator::BuildMultipleQueries(
    const SelectQuery& original,
    const std::vector<PreferencePath>& preferences,
    const std::vector<PreferencePath>& negatives,
    const IntegrationParams& params) const {
  // Dislikes attach to the compound after the positive structure exists.
  auto attach_negatives = [&](CompoundQuery* compound) -> Status {
    for (const PreferencePath& dislike : negatives) {
      if (!dislike.is_negative()) {
        return Status::InvalidArgument(
            "positive preference passed as a dislike: " +
            dislike.ToString());
      }
      SelectQuery part = original;
      part.set_distinct(true);
      VariableAllocator allocator(&part);
      std::vector<AtomicCondition> atoms = allocator.Materialize(dislike);
      part.set_where(
          ConditionNode::Conjoin(original.where(), Conjunction(atoms)));
      if (params.negative_mode == NegativeMode::kVeto) {
        compound->AddExclusion(std::move(part));
      } else {
        compound->AddPart(std::move(part), -dislike.AbsDoi());
      }
    }
    return Status::Ok();
  };

  CompoundQuery compound;
  if (preferences.empty()) {
    SelectQuery part = original;
    part.set_distinct(true);
    compound.AddPart(std::move(part), 0.0);
    compound.set_having(HavingClause::None());
    QP_RETURN_IF_ERROR(attach_negatives(&compound));
    compound.set_order_by_degree(!negatives.empty() &&
                                 params.order_by_degree);
    return compound;
  }
  QP_RETURN_IF_ERROR(CheckParams(preferences.size(), params));
  QP_RETURN_IF_ERROR(
      CheckMandatoryConflicts(preferences, params.mandatory_count));

  const size_t k = preferences.size();
  const size_t m = params.mandatory_count;
  const size_t l = params.min_satisfied;

  // Degenerate form: nothing optional to count — a single partial query
  // with the mandatory conditions.
  const bool mandatory_only =
      (k == m) || (l == 0 && !params.min_degree.has_value());
  if (mandatory_only) {
    SelectQuery part = original;
    part.set_distinct(true);
    VariableAllocator allocator(&part);
    std::vector<AtomicCondition> atoms;
    for (size_t i = 0; i < m; ++i) {
      std::vector<AtomicCondition> cond =
          allocator.Materialize(preferences[i]);
      atoms.insert(atoms.end(), cond.begin(), cond.end());
    }
    part.set_where(
        ConditionNode::Conjoin(original.where(), Conjunction(atoms)));
    compound.AddPart(std::move(part), m == 0 ? 0.0 : preferences[0].doi());
    compound.set_having(HavingClause::None());
    compound.set_order_by_degree(false);
    QP_RETURN_IF_ERROR(attach_negatives(&compound));
    return compound;
  }

  for (size_t i = m; i < k; ++i) {
    SelectQuery part = original;
    part.set_distinct(true);
    VariableAllocator allocator(&part);
    std::vector<AtomicCondition> atoms;
    for (size_t j = 0; j < m; ++j) {
      std::vector<AtomicCondition> cond =
          allocator.Materialize(preferences[j]);
      atoms.insert(atoms.end(), cond.begin(), cond.end());
    }
    std::vector<AtomicCondition> cond = allocator.Materialize(preferences[i]);
    atoms.insert(atoms.end(), cond.begin(), cond.end());
    part.set_where(
        ConditionNode::Conjoin(original.where(), Conjunction(atoms)));
    compound.AddPart(std::move(part), preferences[i].doi());
  }

  if (params.min_degree.has_value()) {
    compound.set_having(HavingClause::DegreeAbove(*params.min_degree));
  } else {
    compound.set_having(HavingClause::CountAtLeast(l));
  }
  compound.set_order_by_degree(params.order_by_degree);
  QP_RETURN_IF_ERROR(attach_negatives(&compound));
  return compound;
}

}  // namespace qp
