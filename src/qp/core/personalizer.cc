#include "qp/core/personalizer.h"

#include <algorithm>

#include "qp/util/timer.h"

namespace qp {

Result<PersonalizationOutcome> Personalizer::Personalize(
    const SelectQuery& query, const PersonalizationOptions& options) const {
  PersonalizationOutcome outcome;
  PreferenceSelector selector(graph_);

  WallTimer timer;
  QP_ASSIGN_OR_RETURN(
      outcome.selected,
      selector.Select(query, options.criterion, &outcome.selection_stats,
                      options.semantic_filter));
  if (options.max_negative > 0) {
    QP_ASSIGN_OR_RETURN(
        outcome.negatives,
        selector.SelectNegative(query, options.max_negative,
                                options.negative_min_doi));
  }
  outcome.selection_millis = timer.ElapsedMillis();

  QP_ASSIGN_OR_RETURN(
      PersonalizationOutcome integrated,
      IntegrateSelected(query, std::move(outcome.selected),
                        std::move(outcome.negatives), options));
  integrated.selection_millis = outcome.selection_millis;
  integrated.selection_stats = outcome.selection_stats;
  return integrated;
}

Result<PersonalizationOutcome> Personalizer::IntegrateSelected(
    const SelectQuery& query, std::vector<PreferencePath> selected,
    std::vector<PreferencePath> negatives,
    const PersonalizationOptions& options, obs::RequestTrace* trace) {
  PersonalizationOutcome outcome;
  outcome.selected = std::move(selected);
  outcome.negatives = std::move(negatives);

  obs::ScopedSpan span(trace, "integration");
  span.Counter("selected", outcome.selected.size());
  span.Counter("negatives", outcome.negatives.size());
  span.Counter(
      "single_query",
      options.approach == IntegrationApproach::kSingleQuery ? 1 : 0);

  // Derive M from a degree threshold when requested: the selected list is
  // degree-sorted, so the mandatory preferences form its prefix. L is
  // clamped so the K = M corner stays valid.
  IntegrationParams params = options.integration;
  if (options.mandatory_min_doi.has_value()) {
    size_t mandatory = 0;
    while (mandatory < outcome.selected.size() &&
           outcome.selected[mandatory].doi() >= *options.mandatory_min_doi) {
      ++mandatory;
    }
    params.mandatory_count = mandatory;
    params.min_satisfied = std::min(params.min_satisfied,
                                    outcome.selected.size() - mandatory);
  }
  span.Counter("mandatory", params.mandatory_count);

  PreferenceIntegrator integrator;
  WallTimer timer;
  if (options.approach == IntegrationApproach::kSingleQuery) {
    if (!outcome.negatives.empty()) {
      return Status::Unimplemented(
          "dislikes require the MQ integration approach");
    }
    QP_ASSIGN_OR_RETURN(SelectQuery sq,
                        integrator.BuildSingleQuery(query, outcome.selected,
                                                    params));
    outcome.sq = std::move(sq);
  } else {
    QP_ASSIGN_OR_RETURN(
        CompoundQuery mq,
        integrator.BuildMultipleQueries(query, outcome.selected,
                                        outcome.negatives, params));
    outcome.mq = std::move(mq);
  }
  outcome.integration_millis = timer.ElapsedMillis();
  return outcome;
}

Result<ResultSet> Personalizer::PersonalizeAndExecute(
    const SelectQuery& query, const PersonalizationOptions& options,
    const Database& db, PersonalizationOutcome* outcome) const {
  QP_ASSIGN_OR_RETURN(PersonalizationOutcome local,
                      Personalize(query, options));
  Executor executor(&db);
  Result<ResultSet> result =
      local.sq.has_value() ? executor.Execute(*local.sq)
                           : executor.Execute(*local.mq);
  if (result.ok() && options.top_n > 0) {
    result.value().Truncate(options.top_n);
  }
  if (outcome != nullptr) *outcome = std::move(local);
  return result;
}

}  // namespace qp
