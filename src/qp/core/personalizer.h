#ifndef QP_CORE_PERSONALIZER_H_
#define QP_CORE_PERSONALIZER_H_

#include <optional>
#include <vector>

#include "qp/core/integration.h"
#include "qp/core/interest_criterion.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/graph/personalization_graph.h"
#include "qp/query/query.h"
#include "qp/util/status.h"

namespace qp {

/// Which preference integration form to produce/execute.
enum class IntegrationApproach {
  kSingleQuery,     // SQ: one complex qualification.
  kMultipleQueries, // MQ: UNION ALL + GROUP BY + HAVING (ranked).
};

/// Everything needed to personalize one query for one user.
struct PersonalizationOptions {
  /// How many top preferences affect the query (determines K).
  InterestCriterion criterion = InterestCriterion::TopCount(5);
  /// M, L / min_degree, ranking, SQ safety bound and negative mode.
  IntegrationParams integration;
  /// Alternative way to fix M (paper Section 4: "a criterion for M could
  /// be that preferences with a degree of interest equal to 1 are
  /// considered mandatory"): selected preferences with degree >= this
  /// threshold become the mandatory prefix, overriding
  /// integration.mandatory_count.
  std::optional<double> mandatory_min_doi;
  IntegrationApproach approach = IntegrationApproach::kMultipleQueries;
  /// Dislike handling (negative-preference extension): up to
  /// `max_negative` related dislikes of magnitude >= `negative_min_doi`
  /// are enforced per integration.negative_mode. 0 disables dislikes.
  /// Requires the MQ approach when any dislike is selected.
  size_t max_negative = 0;
  double negative_min_doi = 0.0;
  /// Deliver only the top `top_n` ranked rows (0 = all) — the paper's
  /// "delivery of top-N results in order of estimated degree of
  /// interest" future-work item. Applies to ranked (MQ) execution.
  size_t top_n = 0;
  /// Optional semantic-level relatedness knowledge (see semantics.h).
  /// Not owned; must outlive the personalization call.
  const SemanticFilter* semantic_filter = nullptr;
};

/// The output of the personalization pipeline, including per-phase wall
/// times (the quantities plotted in the paper's Figures 6, 8-10).
struct PersonalizationOutcome {
  /// The K selected preferences, degree non-increasing.
  std::vector<PreferencePath> selected;
  /// Selected dislikes, |degree| non-increasing (empty unless
  /// options.max_negative > 0).
  std::vector<PreferencePath> negatives;
  /// Exactly one of these is set, per PersonalizationOptions::approach.
  std::optional<SelectQuery> sq;
  std::optional<CompoundQuery> mq;
  double selection_millis = 0.0;
  double integration_millis = 0.0;
  SelectionStats selection_stats;
};

/// Facade tying the pipeline together: preference selection over the
/// user's personalization graph, then preference integration into the
/// original query; optionally execution with ranked results.
class Personalizer {
 public:
  /// `graph` is retained and must outlive the personalizer.
  explicit Personalizer(const PersonalizationGraph* graph) : graph_(graph) {}

  /// Runs selection + integration. With zero selected preferences the
  /// outcome carries the original query unchanged (as SQ) or as a single
  /// partial query (as MQ).
  Result<PersonalizationOutcome> Personalize(
      const SelectQuery& query, const PersonalizationOptions& options) const;

  /// Personalize + execute against `db`. MQ outcomes produce ranked
  /// results (per-row satisfied-preference counts and degrees). If
  /// `outcome` is non-null the intermediate artifacts are stored there.
  Result<ResultSet> PersonalizeAndExecute(
      const SelectQuery& query, const PersonalizationOptions& options,
      const Database& db, PersonalizationOutcome* outcome = nullptr) const;

  /// Integration-only entry point: builds the SQ/MQ outcome from
  /// preferences that were already selected (e.g. served from the service
  /// layer's selection cache). `selected` must be degree non-increasing,
  /// `negatives` |degree| non-increasing — exactly what Select /
  /// SelectNegative produce. Selection timings/stats in the outcome are
  /// zero; Personalize is this plus a fresh selection.
  /// `trace`, when given, receives an "integration" span recording the
  /// approach, the selected/negative counts, and the derived mandatory
  /// prefix M.
  static Result<PersonalizationOutcome> IntegrateSelected(
      const SelectQuery& query, std::vector<PreferencePath> selected,
      std::vector<PreferencePath> negatives,
      const PersonalizationOptions& options,
      obs::RequestTrace* trace = nullptr);

 private:
  const PersonalizationGraph* graph_;
};

}  // namespace qp

#endif  // QP_CORE_PERSONALIZER_H_
