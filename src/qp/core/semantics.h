#ifndef QP_CORE_SEMANTICS_H_
#define QP_CORE_SEMANTICS_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qp/graph/preference_path.h"
#include "qp/query/query.h"
#include "qp/relational/value.h"

namespace qp {

/// Semantic-level relatedness (paper Sections 5 and 8): deciding whether a
/// preference is related to a query can require knowledge beyond the
/// schema — "a preference for W. Allen is semantically related to a query
/// about comedies; a preference for M. Tarkowski is semantically
/// conflicting with the same query". Preferences that are semantically
/// related are always syntactically related too, so a semantic filter
/// only ever *narrows* the selection algorithm's output (the algorithm
/// "may output only these").
///
/// Implementations must be cheap and side-effect free; the selector calls
/// IsRelated once per candidate transitive selection.
class SemanticFilter {
 public:
  virtual ~SemanticFilter() = default;

  /// True if the transitive selection `path` is semantically related to
  /// `query`.
  virtual bool IsRelated(const PreferencePath& path,
                         const SelectQuery& query) const = 0;
};

/// A simple value-association knowledge base: the designer (or a mined
/// co-occurrence model) declares which literal values go together, e.g.
/// 'comedy' <-> 'W. Allen'. A preference is related to a query iff the
/// query mentions no literals at all (nothing to relate against) or some
/// query literal is associated with the preference's selection value.
/// Association is reflexive (every value relates to itself) and
/// symmetric.
class AssociationSemanticFilter : public SemanticFilter {
 public:
  /// Declares `a` and `b` as associated (stored symmetrically).
  void AddAssociation(const Value& a, const Value& b);

  /// True if the values are equal or were declared associated.
  bool Associated(const Value& a, const Value& b) const;

  bool IsRelated(const PreferencePath& path,
                 const SelectQuery& query) const override;

 private:
  std::unordered_map<Value, std::unordered_set<Value, ValueHash>, ValueHash>
      associations_;
};

}  // namespace qp

#endif  // QP_CORE_SEMANTICS_H_
