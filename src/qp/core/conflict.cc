#include "qp/core/conflict.h"

namespace qp {

bool ConflictDetector::ConflictsWithQuery(const PreferencePath& path,
                                          const QueryGraph& query_graph) {
  if (!path.is_selection()) return false;
  if (!path.AllJoinsToOne()) return false;

  // Mirror the path's join chain inside the query graph.
  std::string alias = path.anchor_alias();
  for (const JoinEdge& join : path.joins()) {
    std::optional<std::string> next =
        query_graph.FollowJoin(alias, join.from, join.to);
    if (!next.has_value()) return false;  // Query does not constrain this
                                          // chain; a fresh chain is used.
    alias = *std::move(next);
  }

  const SelectionEdge& selection = *path.selection();
  // Soft selections never conflict: they admit a whole neighbourhood.
  if (selection.is_near()) return false;
  for (const auto& [column, value] : query_graph.SelectionsOn(alias)) {
    if (column == selection.attribute.column && value != selection.value) {
      return true;
    }
  }
  return false;
}

bool ConflictDetector::Conflicting(const PreferencePath& a,
                                   const PreferencePath& b) {
  if (!a.is_selection() || !b.is_selection()) return false;
  if (a.anchor_alias() != b.anchor_alias()) return false;
  if (!a.AllJoinsToOne() || !b.AllJoinsToOne()) return false;
  if (a.joins().size() != b.joins().size()) return false;
  for (size_t i = 0; i < a.joins().size(); ++i) {
    if (!(a.joins()[i].from == b.joins()[i].from) ||
        !(a.joins()[i].to == b.joins()[i].to)) {
      return false;
    }
  }
  const SelectionEdge& sa = *a.selection();
  const SelectionEdge& sb = *b.selection();
  if (sa.is_near() || sb.is_near()) return false;  // Soft: no conflicts.
  return sa.attribute == sb.attribute && sa.value != sb.value;
}

}  // namespace qp
