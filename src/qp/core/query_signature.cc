#include "qp/core/query_signature.h"

#include <algorithm>
#include <vector>

#include "qp/util/string_util.h"

namespace qp {
namespace {

std::string AtomKey(const AtomicCondition& atom) {
  switch (atom.kind()) {
    case AtomicCondition::Kind::kSelection:
      return "sel:" + atom.var() + "." + atom.column() + "=" +
             atom.value().ToSqlLiteral();
    case AtomicCondition::Kind::kNear:
      return "near:" + atom.var() + "." + atom.column() + "," +
             atom.value().ToSqlLiteral() + "," + FormatDouble(atom.width());
    case AtomicCondition::Kind::kJoin: {
      // A join atom is symmetric; order the two sides so a=b and b=a
      // normalize identically.
      std::string left = atom.left_var() + "." + atom.left_column();
      std::string right = atom.right_var() + "." + atom.right_column();
      if (right < left) std::swap(left, right);
      return "join:" + left + "=" + right;
    }
  }
  return "";
}

std::string ConditionKey(const ConditionPtr& node) {
  if (node == nullptr) return "true";
  switch (node->kind()) {
    case ConditionNode::Kind::kAtom:
      return AtomKey(node->atom());
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      std::vector<std::string> keys;
      keys.reserve(node->children().size());
      for (const ConditionPtr& child : node->children()) {
        keys.push_back(ConditionKey(child));
      }
      std::sort(keys.begin(), keys.end());
      const char* tag =
          node->kind() == ConditionNode::Kind::kAnd ? "and(" : "or(";
      return tag + Join(keys, ";") + ")";
    }
  }
  return "";
}

}  // namespace

std::string CanonicalQueryKey(const SelectQuery& query) {
  std::string key = query.distinct() ? "select distinct " : "select ";
  std::vector<std::string> projections;
  projections.reserve(query.projections().size());
  for (const ProjectionItem& item : query.projections()) {
    projections.push_back(item.OutputName());
  }
  key += Join(projections, ",");

  std::vector<std::string> vars;
  vars.reserve(query.from().size());
  for (const TupleVariable& var : query.from()) {
    vars.push_back(var.alias + ":" + var.table);
  }
  std::sort(vars.begin(), vars.end());
  key += " from " + Join(vars, ",");
  key += " where " + ConditionKey(query.where());
  return key;
}

uint64_t Fnv1a64(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t QuerySignature(const SelectQuery& query) {
  return Fnv1a64(CanonicalQueryKey(query));
}

}  // namespace qp
