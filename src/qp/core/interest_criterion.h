#ifndef QP_CORE_INTEREST_CRITERION_H_
#define QP_CORE_INTEREST_CRITERION_H_

#include <cstddef>
#include <string>

namespace qp {

/// Running state over the preferences accepted so far, maintained by the
/// selection loop so each criterion can be evaluated incrementally.
struct CriterionState {
  size_t count = 0;
  double sum = 0.0;               // For the disjunctive (average) criterion.
  double conj_complement = 1.0;   // prod(1 - d_i), for the conjunctive one.

  void Add(double doi) {
    ++count;
    sum += doi;
    conj_complement *= (1.0 - doi);
  }
  double ConjunctiveDegree() const { return 1.0 - conj_complement; }
  double DisjunctiveDegree() const { return count == 0 ? 0.0 : sum / count; }
};

/// The interest criterion CI of paper Table 1, deciding how many of the
/// related preferences are selected (the K in top-K). The selection
/// algorithm requires the accepted set to be a prefix of the preferences
/// in decreasing-degree order, i.e. acceptance must be monotone: every
/// criterion here accepts a candidate iff it would accept any candidate
/// with a higher degree in the same state.
class InterestCriterion {
 public:
  enum class Kind {
    /// t <= r: select at most `r` preferences.
    kTopCount,
    /// d_t > d: select preferences with degree of interest greater than d.
    kMinDegree,
    /// (d_1 + ... + d_t)/t > d: keep selecting while the disjunction of
    /// the selected preferences stays above d.
    kDisjunctiveAbove,
    /// Select preferences until the conjunction of the selected ones
    /// exceeds d (1 - prod(1-d_i) > d stops further selection). This is
    /// the downward-closed reading of Table 1's conjunctive criterion —
    /// the literal "max t with conjunction > d" is upward-closed and
    /// would select everything, defeating early termination.
    kConjunctiveUntil,
  };

  static InterestCriterion TopCount(size_t r) {
    return InterestCriterion(Kind::kTopCount, static_cast<double>(r));
  }
  static InterestCriterion MinDegree(double d) {
    return InterestCriterion(Kind::kMinDegree, d);
  }
  static InterestCriterion DisjunctiveAbove(double d) {
    return InterestCriterion(Kind::kDisjunctiveAbove, d);
  }
  static InterestCriterion ConjunctiveUntil(double d) {
    return InterestCriterion(Kind::kConjunctiveUntil, d);
  }

  Kind kind() const { return kind_; }
  double threshold() const { return threshold_; }

  /// True iff CI(P_K ∪ {candidate}) holds, where `state` summarizes P_K
  /// and `candidate_doi` is the candidate's degree of interest. Used when
  /// a transitive selection is popped: at that moment `state` is exactly
  /// the top-prefix the paper's definition evaluates CI against.
  bool Accepts(const CriterionState& state, double candidate_doi) const;

  /// Admissible variant used for join-path expansion and termination.
  /// Figure 5 checks CI there directly, which is only sound for criteria
  /// whose acceptance cannot *become* true as more preferences are
  /// accepted — t <= r and d_t > d, but not the disjunctive average,
  /// where a low-degree candidate rejected against a small prefix may be
  /// accepted once richer preferences join the prefix.
  ///
  /// MightAcceptLater answers: could a candidate of degree
  /// `candidate_doi` be accepted in any state reachable from `state` by
  /// first accepting candidates of degree at most `max_remaining_doi`
  /// (the degree of the path being expanded bounds everything still in
  /// or entering the queue)? It is monotone in `candidate_doi`, so the
  /// best-first expansion may stop at the first failing edge without
  /// losing completeness (Theorem 2).
  bool MightAcceptLater(const CriterionState& state, double candidate_doi,
                        double max_remaining_doi) const;

  /// "top-count(5)", "min-degree(0.6)", ...
  std::string ToString() const;

 private:
  InterestCriterion(Kind kind, double threshold)
      : kind_(kind), threshold_(threshold) {}

  Kind kind_;
  double threshold_;
};

}  // namespace qp

#endif  // QP_CORE_INTEREST_CRITERION_H_
