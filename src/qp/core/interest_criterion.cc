#include "qp/core/interest_criterion.h"

#include "qp/util/string_util.h"

namespace qp {

bool InterestCriterion::Accepts(const CriterionState& state,
                                double candidate_doi) const {
  switch (kind_) {
    case Kind::kTopCount:
      return static_cast<double>(state.count) < threshold_;
    case Kind::kMinDegree:
      return candidate_doi > threshold_;
    case Kind::kDisjunctiveAbove:
      return (state.sum + candidate_doi) /
                 static_cast<double>(state.count + 1) >
             threshold_;
    case Kind::kConjunctiveUntil:
      return state.ConjunctiveDegree() <= threshold_;
  }
  return false;
}

bool InterestCriterion::MightAcceptLater(const CriterionState& state,
                                         double candidate_doi,
                                         double max_remaining_doi) const {
  switch (kind_) {
    case Kind::kTopCount:
    case Kind::kMinDegree:
    case Kind::kConjunctiveUntil:
      // Acceptance never turns from false to true as the state grows:
      // the count only increases, d_t > d ignores the state, and the
      // conjunctive degree only increases. Accepts is already admissible.
      return Accepts(state, candidate_doi);
    case Kind::kDisjunctiveAbove:
      // Preferences accepted before this candidate is evaluated all have
      // degree <= max_remaining_doi. If that bound exceeds the
      // threshold, enough such additions can lift the running average
      // arbitrarily close to it, eventually carrying any candidate.
      // Otherwise every addition keeps the rejection inequality
      // (sum + d <= (t+1)*theta) intact, so "accept now" is the best
      // case the candidate will ever see.
      return max_remaining_doi > threshold_ ||
             Accepts(state, candidate_doi);
  }
  return false;
}

std::string InterestCriterion::ToString() const {
  switch (kind_) {
    case Kind::kTopCount:
      return "top-count(" + std::to_string(static_cast<size_t>(threshold_)) +
             ")";
    case Kind::kMinDegree:
      return "min-degree(" + FormatDouble(threshold_) + ")";
    case Kind::kDisjunctiveAbove:
      return "disjunctive-above(" + FormatDouble(threshold_) + ")";
    case Kind::kConjunctiveUntil:
      return "conjunctive-until(" + FormatDouble(threshold_) + ")";
  }
  return "unknown";
}

}  // namespace qp
