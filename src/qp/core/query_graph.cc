#include "qp/core/query_graph.h"

namespace qp {

const std::vector<std::pair<std::string, Value>> QueryGraph::kNoSelections;

Result<QueryGraph> QueryGraph::Build(const SelectQuery& query,
                                     const Schema& schema) {
  QP_RETURN_IF_ERROR(query.Validate(schema));
  QueryGraph graph;
  graph.variables_ = query.from();
  for (const TupleVariable& var : graph.variables_) {
    graph.tables_.insert(var.table);
  }
  if (query.where() != nullptr) {
    std::vector<AtomicCondition> atoms;
    query.where()->CollectAtoms(&atoms);
    for (const AtomicCondition& atom : atoms) {
      if (atom.is_selection()) {
        graph.selections_[atom.var()].emplace_back(atom.column(),
                                                   atom.value());
      } else {
        const TupleVariable* left = query.FindVariable(atom.left_var());
        const TupleVariable* right = query.FindVariable(atom.right_var());
        graph.joins_.push_back(
            {atom.left_var(),
             AttributeRef{left->table, atom.left_column()},
             atom.right_var(),
             AttributeRef{right->table, atom.right_column()}});
      }
    }
  }
  return graph;
}

const std::vector<std::pair<std::string, Value>>& QueryGraph::SelectionsOn(
    const std::string& alias) const {
  auto it = selections_.find(alias);
  return it == selections_.end() ? kNoSelections : it->second;
}

std::optional<std::string> QueryGraph::FollowJoin(
    const std::string& alias, const AttributeRef& from,
    const AttributeRef& to) const {
  for (const JoinAtomInfo& join : joins_) {
    if (join.left_var == alias && join.left == from && join.right == to) {
      return join.right_var;
    }
    if (join.right_var == alias && join.right == from && join.left == to) {
      return join.left_var;
    }
  }
  return std::nullopt;
}

}  // namespace qp
