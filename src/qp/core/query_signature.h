#ifndef QP_CORE_QUERY_SIGNATURE_H_
#define QP_CORE_QUERY_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "qp/query/query.h"

namespace qp {

/// A normalized, order-insensitive rendering of a SelectQuery, suitable as
/// a cache key: structurally equal queries — and queries that differ only
/// in the order of FROM variables or of AND/OR siblings — map to the same
/// string. Projection order is preserved (it determines the output
/// columns), condition trees are canonicalized by sorting sibling
/// renderings, and values are rendered as typed SQL literals so 1 and
/// '1' stay distinct.
std::string CanonicalQueryKey(const SelectQuery& query);

/// 64-bit FNV-1a hash of CanonicalQueryKey(query). Equal queries (up to
/// the normalizations above) have equal signatures; the selection cache
/// buckets on this and keys on the canonical string, so hash collisions
/// cost a miss, never a wrong answer.
uint64_t QuerySignature(const SelectQuery& query);

/// FNV-1a over an arbitrary string (exposed for composing cache keys).
uint64_t Fnv1a64(const std::string& text);

}  // namespace qp

#endif  // QP_CORE_QUERY_SIGNATURE_H_
