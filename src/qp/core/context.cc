#include "qp/core/context.h"

#include <algorithm>

namespace qp {

PersonalizationOptions DeriveOptions(const QueryContext& context,
                                     const PersonalizationOptions& base) {
  PersonalizationOptions options = base;

  size_t k = 25;
  size_t top_n = 0;
  switch (context.device) {
    case QueryContext::Device::kPhone:
      k = 3;
      top_n = 10;
      break;
    case QueryContext::Device::kTablet:
      k = 10;
      top_n = 25;
      break;
    case QueryContext::Device::kWorkstation:
      k = 25;
      top_n = 0;
      break;
  }
  if (context.max_latency_ms.has_value() && *context.max_latency_ms < 50) {
    k = std::max<size_t>(1, k / 2);
  }
  if (context.bandwidth_kbps.has_value() && *context.bandwidth_kbps < 256) {
    top_n = top_n == 0 ? 10 : std::min<size_t>(top_n, 10);
  }

  options.criterion = InterestCriterion::TopCount(k);
  options.top_n = top_n;
  return options;
}

}  // namespace qp
