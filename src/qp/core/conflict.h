#ifndef QP_CORE_CONFLICT_H_
#define QP_CORE_CONFLICT_H_

#include "qp/core/query_graph.h"
#include "qp/graph/preference_path.h"

namespace qp {

/// Syntactic conflict detection (paper Section 5). Two conditions are
/// syntactically conflicting when they share a common transitive join
/// whose constituent atomic joins, in the direction of the selection, are
/// all to-one, and they select different values for the same attribute —
/// a tuple functionally determined by the anchor cannot carry two values
/// at once (e.g. THEATRE.region='uptown' vs 'downtown').
///
/// Like the paper's prototype, detection is pairwise; conjunctions that
/// only fail jointly (the "one movie at a time" example) are not caught.
class ConflictDetector {
 public:
  /// True if the transitive selection `path` conflicts with a selection
  /// already in the query: the query contains the same to-one join chain
  /// starting at the path's anchor variable and a selection on the same
  /// attribute with a different value. Join-only paths never conflict.
  static bool ConflictsWithQuery(const PreferencePath& path,
                                 const QueryGraph& query_graph);

  /// True if two candidate preferences conflict with each other: same
  /// anchor variable, identical all-to-one join chain, selections on the
  /// same attribute with different values. Used by preference integration
  /// to keep conflicting conditions out of the same conjunction.
  static bool Conflicting(const PreferencePath& a, const PreferencePath& b);
};

}  // namespace qp

#endif  // QP_CORE_CONFLICT_H_
