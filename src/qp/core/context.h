#ifndef QP_CORE_CONTEXT_H_
#define QP_CORE_CONTEXT_H_

#include <optional>

#include "qp/core/personalizer.h"

namespace qp {

/// The context of a query (paper Section 4): the personalization
/// parameters K, M and L "may be automatically derived at query time
/// considering various aspects that comprise the context of a query ...
/// desired response time, available bandwidth ... if the user sends a
/// request using her mobile phone, then the system may decide to consider
/// a few top preferences; when the user switches to her computer, then
/// the system may decide to consider all her preferences."
struct QueryContext {
  enum class Device {
    kPhone,        // Constrained: few preferences, short answers.
    kTablet,       // Middle ground.
    kWorkstation,  // Unconstrained: consider many preferences.
  };

  Device device = Device::kWorkstation;
  /// Desired response-time budget; tighter budgets shrink K.
  std::optional<double> max_latency_ms;
  /// Rough downstream bandwidth; low bandwidth caps delivered rows.
  std::optional<double> bandwidth_kbps;
};

/// Derives personalization options from the query context, starting from
/// `base` (whose criterion/integration fields are overridden where the
/// context dictates):
///  - device class sets K (top-count 3 / 10 / 25) and a delivery cap
///    (top_n 10 / 25 / unlimited);
///  - a latency budget under 50 ms halves K (minimum 1);
///  - bandwidth under 256 kbps caps delivery at 10 rows.
/// Deterministic and side-effect free; callers remain free to override
/// any field afterwards.
PersonalizationOptions DeriveOptions(const QueryContext& context,
                                     const PersonalizationOptions& base = {});

}  // namespace qp

#endif  // QP_CORE_CONTEXT_H_
