#ifndef QP_CORE_QUERY_GRAPH_H_
#define QP_CORE_QUERY_GRAPH_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qp/query/query.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

/// The query represented as a sub-graph on top of the personalization
/// graph (paper Section 5): its tuple variables are (possibly replicated)
/// relation nodes, its atomic conditions are selection and join edges.
/// Preference paths attach to a tuple variable and expand outwards.
///
/// The paper's framework targets conjunctive queries; accordingly every
/// atom of the qualification is treated as if conjunctive when deciding
/// relatedness and conflicts.
class QueryGraph {
 public:
  /// Validates `query` against `schema` and extracts the structure below.
  /// Copies everything it needs; neither argument is retained.
  static Result<QueryGraph> Build(const SelectQuery& query,
                                  const Schema& schema);

  const std::vector<TupleVariable>& variables() const { return variables_; }

  /// True if some tuple variable ranges over `table` — used by the cycle
  /// pruning rule (paths must not expand into a relation of the query).
  bool UsesTable(const std::string& table) const {
    return tables_.contains(table);
  }

  /// Equality selections of the query on variable `alias`, as
  /// (column, value) pairs.
  const std::vector<std::pair<std::string, Value>>& SelectionsOn(
      const std::string& alias) const;

  /// Follows the query's join edges: starting from variable `alias`, finds
  /// a join atom matching the schema join `from = to` (with `from` on the
  /// `alias` side) and returns the variable on the other side, or nullopt
  /// if the query contains no such join. Used by syntactic conflict
  /// detection to mirror a preference path inside the query graph.
  std::optional<std::string> FollowJoin(const std::string& alias,
                                        const AttributeRef& from,
                                        const AttributeRef& to) const;

 private:
  QueryGraph() = default;

  struct JoinAtomInfo {
    std::string left_var;
    AttributeRef left;
    std::string right_var;
    AttributeRef right;
  };

  std::vector<TupleVariable> variables_;
  std::unordered_set<std::string> tables_;
  std::unordered_map<std::string, std::vector<std::pair<std::string, Value>>>
      selections_;
  std::vector<JoinAtomInfo> joins_;

  static const std::vector<std::pair<std::string, Value>> kNoSelections;
};

}  // namespace qp

#endif  // QP_CORE_QUERY_GRAPH_H_
