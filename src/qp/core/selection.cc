#include "qp/core/selection.h"

#include <algorithm>
#include <queue>

#include "qp/core/conflict.h"

namespace qp {
namespace {

/// Queue entry: candidate path plus an insertion sequence number so that
/// among equal degrees, earlier-inserted (shorter) paths come out first —
/// the paper's "place after the last path with degree >= its degree".
struct Candidate {
  PreferencePath path;
  uint64_t seq;
};

struct CandidateOrder {
  /// std::priority_queue pops the *largest*; define "larger" as higher
  /// degree, then smaller sequence number.
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.path.doi() != b.path.doi()) return a.path.doi() < b.path.doi();
    return a.seq > b.seq;
  }
};

}  // namespace

Result<std::vector<PreferencePath>> PreferenceSelector::Select(
    const SelectQuery& query, const InterestCriterion& criterion,
    SelectionStats* stats, const SemanticFilter* semantic,
    const CancelToken* cancel, obs::RequestTrace* trace) const {
  SelectionStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  obs::ScopedSpan span(trace, "preference_selection");
  auto result = SelectInternal(query, criterion, stats, semantic, cancel);

  span.Counter("paths_pushed", stats->paths_pushed);
  span.Counter("paths_popped", stats->paths_popped);
  span.Counter("pruned_cycle", stats->pruned_cycle);
  span.Counter("pruned_conflict", stats->pruned_conflict);
  span.Counter("pruned_semantic", stats->pruned_semantic);
  span.Counter("pruned_criterion", stats->pruned_criterion);
  span.Counter("max_queue_size", stats->max_queue_size);
  span.Counter("degraded", stats->degraded ? 1 : 0);
  span.Counter("selected", result.ok() ? result->size() : 0);
  return result;
}

Result<std::vector<PreferencePath>> PreferenceSelector::SelectInternal(
    const SelectQuery& query, const InterestCriterion& criterion,
    SelectionStats* stats, const SemanticFilter* semantic,
    const CancelToken* cancel) const {
  QP_ASSIGN_OR_RETURN(QueryGraph query_graph,
                      QueryGraph::Build(query, graph_->schema()));

  SelectionStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::priority_queue<Candidate, std::vector<Candidate>, CandidateOrder>
      queue;
  uint64_t seq = 0;
  auto push = [&](PreferencePath path) {
    queue.push(Candidate{std::move(path), seq++});
    ++stats->paths_pushed;
    stats->max_queue_size = std::max(stats->max_queue_size, queue.size());
  };

  // Step 1 (Figure 5): seed with every atomic element syntactically
  // related to the query — selection and join edges leaving the relations
  // of the query's tuple variables.
  for (const TupleVariable& var : query.from()) {
    PreferencePath root(var.alias, var.table);
    for (const SelectionEdge& edge : graph_->SelectionsOn(var.table)) {
      PreferencePath path = root.ExtendedBy(edge);
      if (ConflictDetector::ConflictsWithQuery(path, query_graph)) {
        ++stats->pruned_conflict;
        continue;
      }
      if (semantic != nullptr && !semantic->IsRelated(path, query)) {
        ++stats->pruned_semantic;
        continue;
      }
      push(std::move(path));
    }
    for (const JoinEdge& edge : graph_->JoinsFrom(var.table)) {
      if (query_graph.UsesTable(edge.to.table)) {
        // Expanding into a relation of the query would traverse the query
        // graph rather than expand outwards.
        ++stats->pruned_cycle;
        continue;
      }
      push(root.ExtendedBy(edge));
    }
  }

  // Step 2: best-first expansion. The cancel token is polled once per
  // pop — accepted selections enter `selected` in final (decreasing-doi)
  // order, so stopping between pops truncates the result to a prefix of
  // the unconstrained top-K and never reorders or skips within it.
  std::vector<PreferencePath> selected;
  CriterionState state;
  while (!queue.empty()) {
    if (cancel != nullptr && cancel->ShouldStop()) {
      stats->degraded = true;
      return selected;
    }
    PreferencePath path = queue.top().path;
    queue.pop();
    ++stats->paths_popped;

    if (path.is_selection()) {
      if (!criterion.Accepts(state, path.doi())) break;
      state.Add(path.doi());
      selected.push_back(std::move(path));
      continue;
    }

    // A transitive join: expand unless the criterion rules out anything
    // it could ever produce (its degree bounds every extension, and the
    // admissible check accounts for state growth before evaluation).
    if (!criterion.MightAcceptLater(state, path.doi(), path.doi())) break;

    const std::string& end = path.EndTable();
    // Merge the two presorted adjacency lists in decreasing edge degree so
    // extensions are generated in decreasing path degree, enabling the
    // early break below.
    const auto& selections = graph_->SelectionsOn(end);
    const auto& joins = graph_->JoinsFrom(end);
    size_t si = 0;
    size_t ji = 0;
    while (si < selections.size() || ji < joins.size()) {
      bool take_selection =
          ji >= joins.size() ||
          (si < selections.size() && selections[si].doi >= joins[ji].doi);
      double edge_doi =
          take_selection ? selections[si].doi : joins[ji].doi;
      if (!criterion.MightAcceptLater(state, path.doi() * edge_doi,
                                      path.doi())) {
        // Remaining edges have lower degree; none can pass.
        ++stats->pruned_criterion;
        break;
      }
      if (take_selection) {
        PreferencePath extended = path.ExtendedBy(selections[si]);
        ++si;
        if (ConflictDetector::ConflictsWithQuery(extended, query_graph)) {
          ++stats->pruned_conflict;
          continue;
        }
        if (semantic != nullptr && !semantic->IsRelated(extended, query)) {
          ++stats->pruned_semantic;
          continue;
        }
        push(std::move(extended));
      } else {
        const JoinEdge& edge = joins[ji];
        ++ji;
        if (path.VisitsTable(edge.to.table) ||
            query_graph.UsesTable(edge.to.table)) {
          ++stats->pruned_cycle;
          continue;
        }
        push(path.ExtendedBy(edge));
      }
    }
  }
  return selected;
}

Result<std::vector<PreferencePath>> PreferenceSelector::SelectNegative(
    const SelectQuery& query, size_t max_count, double min_abs_doi) const {
  QP_ASSIGN_OR_RETURN(QueryGraph query_graph,
                      QueryGraph::Build(query, graph_->schema()));
  std::unordered_set<std::string> forbidden;
  for (const TupleVariable& var : query.from()) forbidden.insert(var.table);

  std::vector<PreferencePath> all;
  for (const TupleVariable& var : query.from()) {
    std::vector<PreferencePath> paths = EnumerateNegativeTransitiveSelections(
        *graph_, var.alias, var.table, forbidden);
    for (PreferencePath& path : paths) {
      if (path.AbsDoi() < min_abs_doi) continue;
      if (ConflictDetector::ConflictsWithQuery(path, query_graph)) continue;
      all.push_back(std::move(path));
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const PreferencePath& a, const PreferencePath& b) {
                     if (a.AbsDoi() != b.AbsDoi()) {
                       return a.AbsDoi() > b.AbsDoi();
                     }
                     return a.Length() < b.Length();
                   });
  if (all.size() > max_count) {
    all.erase(all.begin() + static_cast<ptrdiff_t>(max_count), all.end());
  }
  return all;
}

Result<std::vector<PreferencePath>> PreferenceSelector::SelectBruteForce(
    const SelectQuery& query, const InterestCriterion& criterion,
    size_t* enumerated, const SemanticFilter* semantic) const {
  QP_ASSIGN_OR_RETURN(QueryGraph query_graph,
                      QueryGraph::Build(query, graph_->schema()));

  std::unordered_set<std::string> forbidden;
  for (const TupleVariable& var : query.from()) forbidden.insert(var.table);

  std::vector<PreferencePath> all;
  for (const TupleVariable& var : query.from()) {
    std::vector<PreferencePath> paths = EnumerateTransitiveSelections(
        *graph_, var.alias, var.table, forbidden);
    for (PreferencePath& path : paths) {
      if (ConflictDetector::ConflictsWithQuery(path, query_graph)) continue;
      if (semantic != nullptr && !semantic->IsRelated(path, query)) continue;
      all.push_back(std::move(path));
    }
  }
  if (enumerated != nullptr) *enumerated = all.size();

  std::stable_sort(all.begin(), all.end(),
                   [](const PreferencePath& a, const PreferencePath& b) {
                     if (a.doi() != b.doi()) return a.doi() > b.doi();
                     return a.Length() < b.Length();
                   });

  std::vector<PreferencePath> selected;
  CriterionState state;
  for (PreferencePath& path : all) {
    if (!criterion.Accepts(state, path.doi())) break;
    state.Add(path.doi());
    selected.push_back(std::move(path));
  }
  return selected;
}

}  // namespace qp
