#include "qp/obs/slo.h"

#include <chrono>

namespace qp {
namespace obs {

SloTracker::SloTracker(SloOptions options) : options_(options) {
  if (options_.buckets < 2) options_.buckets = 2;
  if (options_.bucket_nanos < 1) options_.bucket_nanos = 1;
  buckets_ = std::vector<Bucket>(static_cast<size_t>(options_.buckets));
}

int64_t SloTracker::Now() const {
  if (options_.now_nanos != nullptr) return options_.now_nanos();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SloTracker::Record(bool served, double latency_millis) {
  const int64_t epoch = Now() / options_.bucket_nanos;
  Bucket& bucket = BucketFor(epoch);
  int64_t current = bucket.epoch.load(std::memory_order_relaxed);
  if (current != epoch) {
    // This slot last held a bucket a full window ago; recycle it. The
    // CAS winner zeroes, losers fall through and count into the fresh
    // bucket. A straggler from the old epoch racing past the CAS can
    // leak one count into the new epoch — bounded, documented error.
    if (bucket.epoch.compare_exchange_strong(current, epoch,
                                             std::memory_order_relaxed)) {
      bucket.requests.store(0, std::memory_order_relaxed);
      bucket.served.store(0, std::memory_order_relaxed);
      bucket.fast.store(0, std::memory_order_relaxed);
    }
  }
  bucket.requests.fetch_add(1, std::memory_order_relaxed);
  if (served) bucket.served.fetch_add(1, std::memory_order_relaxed);
  if (latency_millis <= options_.latency_millis) {
    bucket.fast.fetch_add(1, std::memory_order_relaxed);
  }
}

SloSnapshot SloTracker::Evaluate() const {
  const int64_t epoch = Now() / options_.bucket_nanos;
  const int64_t oldest = epoch - static_cast<int64_t>(buckets_.size()) + 1;
  SloSnapshot snapshot;
  for (const Bucket& bucket : buckets_) {
    const int64_t bucket_epoch = bucket.epoch.load(std::memory_order_relaxed);
    if (bucket_epoch < oldest || bucket_epoch > epoch) continue;
    snapshot.window_requests +=
        bucket.requests.load(std::memory_order_relaxed);
    snapshot.window_served += bucket.served.load(std::memory_order_relaxed);
    snapshot.window_fast += bucket.fast.load(std::memory_order_relaxed);
  }
  if (snapshot.window_requests == 0) return snapshot;
  const double requests = static_cast<double>(snapshot.window_requests);
  snapshot.availability = static_cast<double>(snapshot.window_served) / requests;
  snapshot.latency_attainment =
      static_cast<double>(snapshot.window_fast) / requests;
  const double availability_budget = 1.0 - options_.availability_target;
  const double latency_budget = 1.0 - options_.latency_target;
  if (availability_budget > 0.0) {
    snapshot.availability_burn_rate =
        (1.0 - snapshot.availability) / availability_budget;
  } else {
    snapshot.availability_burn_rate = snapshot.availability < 1.0 ? 1e9 : 0.0;
  }
  if (latency_budget > 0.0) {
    snapshot.latency_burn_rate =
        (1.0 - snapshot.latency_attainment) / latency_budget;
  } else {
    snapshot.latency_burn_rate = snapshot.latency_attainment < 1.0 ? 1e9 : 0.0;
  }
  return snapshot;
}

}  // namespace obs
}  // namespace qp
