#include "qp/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace qp {
namespace obs {
namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatMillis(double millis) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", millis);
  return buffer;
}

std::string FormatId(uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

/// SplitMix64 finalizer: any bit change in the input flips each output
/// bit with probability ~1/2. Turns the sequential id counter into ids
/// that double as uniform hashes (HeadSampled uses them directly).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t NewTraceId() {
  static std::atomic<uint64_t> next{1};
  uint64_t id = Mix(next.fetch_add(1, std::memory_order_relaxed));
  // 0 is the "no id" sentinel; the mix maps exactly one input there.
  return id != 0 ? id : 1;
}

bool HeadSampled(uint64_t trace_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Top 53 bits as a uniform unit double; the id is already avalanched.
  double unit = static_cast<double>(trace_id >> 11) * 0x1.0p-53;
  return unit < rate;
}

uint64_t TraceSpan::counter(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

bool TraceSpan::has_counter(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return true;
  }
  return false;
}

size_t RequestTrace::StartSpan(std::string name) {
  TraceSpan span;
  span.name = std::move(name);
  span.depth = static_cast<int>(open_.size());
  span.span_id = NewTraceId();
  span.parent_span_id = open_.empty() ? root_parent_span_id_
                                      : spans_[open_.back()].span_id;
  span.start_millis = SinceStartMillis();
  spans_.push_back(std::move(span));
  open_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

void RequestTrace::EndSpan(size_t index) {
  if (index >= spans_.size()) return;
  double now = SinceStartMillis();
  // Close the span and any child left open (out-of-order End).
  while (!open_.empty() && open_.back() >= index) {
    TraceSpan& span = spans_[open_.back()];
    if (span.duration_millis == 0.0) {
      span.duration_millis = now - span.start_millis;
    }
    open_.pop_back();
  }
  total_millis_ = now;
}

void RequestTrace::AddCounter(size_t index, std::string name,
                              uint64_t value) {
  if (index >= spans_.size()) return;
  spans_[index].counters.emplace_back(std::move(name), value);
}

void RequestTrace::SetDisposition(std::string disposition,
                                  std::string stopped_phase) {
  disposition_ = std::move(disposition);
  stopped_phase_ = std::move(stopped_phase);
}

const TraceSpan* RequestTrace::FindSpan(std::string_view name) const {
  for (const TraceSpan& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string RequestTrace::ToString() const {
  std::string out = "trace " + FormatId(trace_id_) +
                    ": disposition=" + disposition_;
  if (!stopped_phase_.empty()) out += " stopped_in=" + stopped_phase_;
  out += " total=" + FormatMillis(total_millis_) + " ms\n";
  for (const TraceSpan& span : spans_) {
    out.append(2 + 2 * static_cast<size_t>(span.depth), ' ');
    out += span.name + "  " + FormatMillis(span.duration_millis) + " ms";
    for (const auto& [name, value] : span.counters) {
      out += "  " + name + "=" + std::to_string(value);
    }
    out.push_back('\n');
  }
  return out;
}

std::string RequestTrace::ToJson() const {
  std::string out = "{\"trace_id\":";
  AppendJsonString(FormatId(trace_id_), &out);
  out += ",\"root_parent_span_id\":";
  AppendJsonString(FormatId(root_parent_span_id_), &out);
  out += ",\"disposition\":";
  AppendJsonString(disposition_, &out);
  out += ",\"stopped_phase\":";
  AppendJsonString(stopped_phase_, &out);
  out += ",\"total_ms\":" + FormatMillis(total_millis_);
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(span.name, &out);
    out += ",\"depth\":" + std::to_string(span.depth);
    out += ",\"span_id\":";
    AppendJsonString(FormatId(span.span_id), &out);
    out += ",\"parent_span_id\":";
    AppendJsonString(FormatId(span.parent_span_id), &out);
    out += ",\"start_ms\":" + FormatMillis(span.start_millis);
    out += ",\"duration_ms\":" + FormatMillis(span.duration_millis);
    out += ",\"counters\":{";
    for (size_t c = 0; c < span.counters.size(); ++c) {
      if (c > 0) out.push_back(',');
      AppendJsonString(span.counters[c].first, &out);
      out += ":" + std::to_string(span.counters[c].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void LastTraceSink::Consume(RequestTrace trace) {
  auto shared = std::make_shared<const RequestTrace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mutex_);
  last_ = std::move(shared);
}

std::shared_ptr<const RequestTrace> LastTraceSink::last() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_;
}

void FragmentTraceSink::Consume(RequestTrace trace) {
  auto shared = std::make_shared<const RequestTrace>(std::move(trace));
  const uint64_t id = shared->trace_id();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [trace_id, fragments] : traces_) {
    if (trace_id == id) {
      fragments.push_back(std::move(shared));
      return;
    }
  }
  traces_.emplace_back(
      id, std::vector<std::shared_ptr<const RequestTrace>>{std::move(shared)});
  if (traces_.size() > capacity_) traces_.erase(traces_.begin());
}

std::vector<std::shared_ptr<const RequestTrace>> FragmentTraceSink::Fragments(
    uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, fragments] : traces_) {
    if (id == trace_id) return fragments;
  }
  return {};
}

std::vector<uint64_t> FragmentTraceSink::TraceIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> ids;
  ids.reserve(traces_.size());
  for (const auto& [id, fragments] : traces_) ids.push_back(id);
  return ids;
}

std::vector<std::shared_ptr<const RequestTrace>> FragmentTraceSink::Last()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (traces_.empty()) return {};
  return traces_.back().second;
}

}  // namespace obs
}  // namespace qp
