#ifndef QP_OBS_SLO_H_
#define QP_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace qp {
namespace obs {

/// Rolling-window service-level objectives. Two objectives, both over
/// the same window:
///   availability: fraction of requests served (full or degraded — not
///     shed, not deadline-exceeded, not errored) >= availability_target.
///   latency: fraction of requests under latency_millis >=
///     latency_target.
/// The burn rate is observed badness over allowed badness: with a
/// 99.9% target the error budget is 0.1%, so a window error rate of
/// 0.5% is a burn rate of 5 — the budget is being consumed 5x faster
/// than the objective allows. Burn 1.0 = exactly on budget; < 1 =
/// healthy; the classic paging thresholds are ~14 (fast burn) and ~2
/// (slow burn).
struct SloOptions {
  double availability_target = 0.999;
  double latency_target = 0.99;
  double latency_millis = 250.0;
  /// Rolling window = bucket_nanos * buckets (default 60 x 1s = 1min —
  /// short enough that a qpshell session or test sees it move).
  int64_t bucket_nanos = 1'000'000'000;
  int buckets = 60;
  /// Injectable time source (tests); nullptr = steady_clock.
  int64_t (*now_nanos)() = nullptr;
};

/// A point-in-time evaluation of the objectives.
struct SloSnapshot {
  uint64_t window_requests = 0;
  uint64_t window_served = 0;
  uint64_t window_fast = 0;
  double availability = 1.0;         // served / requests (1.0 when idle).
  double latency_attainment = 1.0;   // fast / requests.
  double availability_burn_rate = 0.0;
  double latency_burn_rate = 0.0;
};

/// Tracks the objectives over a rolling bucket ring. Record is a few
/// relaxed atomic increments (one epoch check + three adds) — no lock,
/// so it sits on the request hot path. Bucket recycling under
/// concurrent writers is racy by design: an increment landing in a
/// bucket mid-reset can be lost, which bounds the error at one bucket's
/// worth of a 60-bucket window. Evaluation sums the buckets whose epoch
/// is inside the window.
class SloTracker {
 public:
  explicit SloTracker(SloOptions options = SloOptions());

  /// `served` = the request produced an answer (full/degraded);
  /// `latency_millis` = wall time, compared against the objective.
  void Record(bool served, double latency_millis);

  SloSnapshot Evaluate() const;

  const SloOptions& options() const { return options_; }

 private:
  struct alignas(64) Bucket {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> fast{0};
  };

  int64_t Now() const;
  Bucket& BucketFor(int64_t epoch) {
    return buckets_[static_cast<size_t>(epoch) % buckets_.size()];
  }

  SloOptions options_;
  std::vector<Bucket> buckets_;
};

}  // namespace obs
}  // namespace qp

#endif  // QP_OBS_SLO_H_
