#ifndef QP_OBS_TRACE_H_
#define QP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qp {
namespace obs {

/// Define QP_OBS_DISABLED at compile time to stub out every tracing hook
/// (ScopedSpan becomes an empty object and the pipeline never allocates
/// a RequestTrace). Metrics counters stay on — they are wait-free
/// increments — but span bookkeeping, which is the only per-request
/// allocation tracing adds, vanishes entirely.
#ifdef QP_OBS_DISABLED
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// One timed step of a request, with its domain counters (paths pruned,
/// rows produced, cache hit, ...). Spans form a tree via `depth`: a span
/// started while another is open is its child.
struct TraceSpan {
  std::string name;
  int depth = 0;
  /// Offset from the trace's start, and the span's own wall time.
  double start_millis = 0.0;
  double duration_millis = 0.0;
  std::vector<std::pair<std::string, uint64_t>> counters;

  uint64_t counter(std::string_view name) const;
  bool has_counter(std::string_view name) const;
};

/// The ordered span record of one request through the personalization
/// pipeline: parse, preference selection (with prune counters),
/// integration, execution (with per-disjunct children), cache and
/// profile-store lookups, WAL sync. Built by exactly one worker thread —
/// not thread-safe, by design: tracing must not add synchronization to
/// the hot path. Hand the finished trace to a TraceSink.
class RequestTrace {
 public:
  RequestTrace() : start_(Clock::now()) {}

  /// Opens a span; its depth is the number of currently open spans.
  /// Returns the span's index for EndSpan/AddCounter.
  size_t StartSpan(std::string name);

  /// Closes the span (records its duration, pops it from the open
  /// stack). Closing out of order closes every span opened after it too.
  void EndSpan(size_t index);

  void AddCounter(size_t index, std::string name, uint64_t value);

  /// How the request resolved ("full", "degraded", "shed",
  /// "deadline_exceeded", "error") and — when it did not run to
  /// completion — the pipeline phase it stopped in.
  void SetDisposition(std::string disposition, std::string stopped_phase);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const TraceSpan* FindSpan(std::string_view name) const;
  const std::string& disposition() const { return disposition_; }
  const std::string& stopped_phase() const { return stopped_phase_; }
  /// Wall time from construction to the last EndSpan (running total).
  double total_millis() const { return total_millis_; }

  /// Human-readable tree: one line per span, indented by depth, with
  /// duration and counters. The qpshell \explain rendering.
  std::string ToString() const;
  /// Single-line JSON {"disposition":..,"stopped_phase":..,"total_ms":..,
  /// "spans":[{"name":..,"depth":..,"start_ms":..,"duration_ms":..,
  /// "counters":{..}},..]}.
  std::string ToJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  double SinceStartMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  Clock::time_point start_;
  std::vector<TraceSpan> spans_;
  std::vector<size_t> open_;
  std::string disposition_ = "full";
  std::string stopped_phase_;
  double total_millis_ = 0.0;
};

/// RAII span: opens on construction, closes on destruction (or explicit
/// End). A null trace makes every method a no-op costing one branch, so
/// instrumented code needs no `if (trace)` litter; with QP_OBS_DISABLED
/// the whole object compiles away.
class ScopedSpan {
 public:
#ifdef QP_OBS_DISABLED
  ScopedSpan(RequestTrace*, const char*) {}
  void Counter(const char*, uint64_t) {}
  void End() {}
#else
  ScopedSpan(RequestTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) index_ = trace_->StartSpan(name);
  }
  ~ScopedSpan() { End(); }

  void Counter(const char* name, uint64_t value) {
    if (trace_ != nullptr) trace_->AddCounter(index_, name, value);
  }

  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(index_);
      trace_ = nullptr;
    }
  }

 private:
  RequestTrace* trace_ = nullptr;
  size_t index_ = 0;
#endif
};

/// Where finished traces go. Implementations must be thread-safe: every
/// worker delivers its own requests' traces.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Consume(RequestTrace trace) = 0;
};

/// Discards everything; measures tracing's own overhead in benchmarks.
class NullTraceSink : public TraceSink {
 public:
  void Consume(RequestTrace) override {}
};

/// Keeps the most recent trace (the qpshell \explain source).
class LastTraceSink : public TraceSink {
 public:
  void Consume(RequestTrace trace) override;

  /// The last consumed trace; nullptr before the first. The shared_ptr
  /// stays valid while newer traces replace it.
  std::shared_ptr<const RequestTrace> last() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const RequestTrace> last_;
};

}  // namespace obs
}  // namespace qp

#endif  // QP_OBS_TRACE_H_
