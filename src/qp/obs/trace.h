#ifndef QP_OBS_TRACE_H_
#define QP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qp {
namespace obs {

/// Define QP_OBS_DISABLED at compile time to stub out every tracing hook
/// (ScopedSpan becomes an empty object and the pipeline never allocates
/// a RequestTrace). Metrics counters stay on — they are wait-free
/// increments — but span bookkeeping, which is the only per-request
/// allocation tracing adds, vanishes entirely.
#ifdef QP_OBS_DISABLED
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// Process-unique non-zero 64-bit id (SplitMix64 over an atomic
/// counter). Used for both trace ids and span ids, so span ids are
/// unique across every trace in the process: the router and the shard
/// each build their own RequestTrace fragment sharing one trace_id, and
/// consumers stitch the fragments into a single tree by (trace_id,
/// parent_span_id) without any id coordination between processes' parts.
uint64_t NewTraceId();

/// The propagation envelope that crosses component boundaries: stamped
/// on a request by the router, adopted by the shard service, carried
/// into migration step traces by the owning reshard operation. Always a
/// real struct even under QP_OBS_DISABLED — it is a request field — but
/// with tracing compiled out nothing ever populates it.
struct TraceContext {
  uint64_t trace_id = 0;
  /// The span on the caller's side that the callee's root spans become
  /// children of (0 = the callee's roots stay roots).
  uint64_t parent_span_id = 0;
  /// Head-sampling decision, made once at the edge and honoured
  /// downstream so a trace is never half-collected.
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

/// Head + tail sampling policy. The head decision is made before any
/// span is allocated (a deterministic hash of the trace id against
/// `head_rate`), so an unsampled request pays nothing. Tail rules
/// resurrect a minimal disposition-only trace for requests that turn out
/// interesting after the fact: shed / deadline_exceeded / degraded /
/// error dispositions, slower than `slow_millis`, or overlapping an
/// injected fault fire.
struct SamplingPolicy {
  /// Fraction of requests traced up front. 1.0 (default) preserves the
  /// trace-everything behaviour of the single-node plane.
  double head_rate = 1.0;
  bool keep_shed = true;
  bool keep_deadline_exceeded = true;
  bool keep_degraded = true;
  bool keep_errors = true;
  /// Requests slower than this are always kept (0 = rule off). The
  /// service wires this to its rolling p99 estimate.
  double slow_millis = 0.0;
  bool keep_fault_fired = true;
};

/// The head decision for a trace id under `rate`: deterministic (the
/// same id always lands the same way) and uniform across ids.
bool HeadSampled(uint64_t trace_id, double rate);

/// One timed step of a request, with its domain counters (paths pruned,
/// rows produced, cache hit, ...). Spans form a tree via `depth` within
/// one fragment and via span ids across fragments: a span started while
/// another is open is its child.
struct TraceSpan {
  std::string name;
  int depth = 0;
  /// Process-unique id of this span, and of its parent (0 = root of the
  /// whole trace). The parent may live in another fragment.
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// Offset from the trace's start, and the span's own wall time.
  double start_millis = 0.0;
  double duration_millis = 0.0;
  std::vector<std::pair<std::string, uint64_t>> counters;

  uint64_t counter(std::string_view name) const;
  bool has_counter(std::string_view name) const;
};

/// The ordered span record of one request through the personalization
/// pipeline: parse, preference selection (with prune counters),
/// integration, execution (with per-disjunct children), cache and
/// profile-store lookups, WAL sync. Built by exactly one worker thread —
/// not thread-safe, by design: tracing must not add synchronization to
/// the hot path. Hand the finished trace to a TraceSink.
class RequestTrace {
 public:
  RequestTrace() : start_(Clock::now()), trace_id_(NewTraceId()) {}

  /// A fragment continuing a propagated context: shares the caller's
  /// trace_id and parents this fragment's root spans under the caller's
  /// span. An invalid context behaves like the default constructor.
  explicit RequestTrace(const TraceContext& context) : RequestTrace() {
    if (context.valid()) {
      trace_id_ = context.trace_id;
      root_parent_span_id_ = context.parent_span_id;
    }
  }

  /// Opens a span; its depth is the number of currently open spans.
  /// Returns the span's index for EndSpan/AddCounter.
  size_t StartSpan(std::string name);

  /// Closes the span (records its duration, pops it from the open
  /// stack). Closing out of order closes every span opened after it too.
  void EndSpan(size_t index);

  void AddCounter(size_t index, std::string name, uint64_t value);

  /// How the request resolved ("full", "degraded", "shed",
  /// "deadline_exceeded", "error") and — when it did not run to
  /// completion — the pipeline phase it stopped in.
  void SetDisposition(std::string disposition, std::string stopped_phase);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const TraceSpan* FindSpan(std::string_view name) const;
  const std::string& disposition() const { return disposition_; }
  const std::string& stopped_phase() const { return stopped_phase_; }
  /// Wall time from construction to the last EndSpan (running total).
  double total_millis() const { return total_millis_; }

  uint64_t trace_id() const { return trace_id_; }
  /// The parent every root span of this fragment hangs under (0 = the
  /// fragment is the top of the trace).
  uint64_t root_parent_span_id() const { return root_parent_span_id_; }

  /// The context to hand a callee so its fragment nests under the span
  /// at `span_index`. Out-of-range indices parent at the fragment root.
  TraceContext ContextForSpan(size_t span_index) const {
    TraceContext context;
    context.trace_id = trace_id_;
    context.parent_span_id = span_index < spans_.size()
                                 ? spans_[span_index].span_id
                                 : root_parent_span_id_;
    context.sampled = true;
    return context;
  }

  /// Human-readable tree: one line per span, indented by depth, with
  /// duration and counters. The qpshell \explain rendering.
  std::string ToString() const;
  /// Single-line JSON {"trace_id":..,"disposition":..,"stopped_phase":..,
  /// "total_ms":..,"spans":[{"name":..,"depth":..,"span_id":..,
  /// "parent_span_id":..,"start_ms":..,"duration_ms":..,
  /// "counters":{..}},..]}. Ids render as hex strings (uint64 exceeds
  /// the exactly-representable double range).
  std::string ToJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  double SinceStartMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  Clock::time_point start_;
  uint64_t trace_id_ = 0;
  uint64_t root_parent_span_id_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<size_t> open_;
  std::string disposition_ = "full";
  std::string stopped_phase_;
  double total_millis_ = 0.0;
};

/// RAII span: opens on construction, closes on destruction (or explicit
/// End). A null trace makes every method a no-op costing one branch, so
/// instrumented code needs no `if (trace)` litter; with QP_OBS_DISABLED
/// the whole object compiles away.
class ScopedSpan {
 public:
#ifdef QP_OBS_DISABLED
  ScopedSpan(RequestTrace*, const char*) {}
  void Counter(const char*, uint64_t) {}
  void End() {}
  size_t index() const { return 0; }
#else
  ScopedSpan(RequestTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) index_ = trace_->StartSpan(name);
  }
  ~ScopedSpan() { End(); }

  void Counter(const char* name, uint64_t value) {
    if (trace_ != nullptr) trace_->AddCounter(index_, name, value);
  }

  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(index_);
      trace_ = nullptr;
    }
  }

  /// The span's index in its trace (for ContextForSpan); valid even
  /// after End.
  size_t index() const { return index_; }

 private:
  RequestTrace* trace_ = nullptr;
  size_t index_ = 0;
#endif
};

/// Where finished traces go. Implementations must be thread-safe: every
/// worker delivers its own requests' traces.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Consume(RequestTrace trace) = 0;
};

/// Discards everything; measures tracing's own overhead in benchmarks.
class NullTraceSink : public TraceSink {
 public:
  void Consume(RequestTrace) override {}
};

/// Keeps the most recent trace (the qpshell \explain source).
class LastTraceSink : public TraceSink {
 public:
  void Consume(RequestTrace trace) override;

  /// The last consumed trace; nullptr before the first. The shared_ptr
  /// stays valid while newer traces replace it.
  std::shared_ptr<const RequestTrace> last() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const RequestTrace> last_;
};

/// Collects the fragments of distributed traces (router fragment, shard
/// fragment, migration steps) keyed by trace_id, bounded to the most
/// recent `capacity` distinct traces. The cross-shard test harness and
/// qpshell stitch span trees out of this.
class FragmentTraceSink : public TraceSink {
 public:
  explicit FragmentTraceSink(size_t capacity = 64) : capacity_(capacity) {}

  void Consume(RequestTrace trace) override;

  /// Every fragment consumed for `trace_id`, in arrival order.
  std::vector<std::shared_ptr<const RequestTrace>> Fragments(
      uint64_t trace_id) const;
  /// trace_ids still retained, oldest first.
  std::vector<uint64_t> TraceIds() const;
  /// Fragments of the most recently started trace (nullptr-free; empty
  /// before the first Consume).
  std::vector<std::shared_ptr<const RequestTrace>> Last() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  /// trace_id -> fragments, plus FIFO eviction order.
  std::vector<std::pair<uint64_t,
                        std::vector<std::shared_ptr<const RequestTrace>>>>
      traces_;
};

}  // namespace obs
}  // namespace qp

#endif  // QP_OBS_TRACE_H_
