#include "qp/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace qp {
namespace obs {
namespace {

/// Formats a double the way both exports want it: shortest form that
/// round-trips typical metric values, never locale-dependent.
std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
void AppendPromLabelValue(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

/// Prometheus HELP-text escaping: backslash and newline (quotes are
/// legal in help text).
void AppendPromHelp(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

/// `{k="v",k2="v2"}` with escaped values; `extra` appends one more pair
/// (the histogram `le` bound) after the series labels.
std::string PromLabelBlock(const MetricLabels& labels,
                           const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key + "=\"";
    AppendPromLabelValue(value, &out);
    out.push_back('"');
  }
  if (extra != nullptr) {
    if (!first) out.push_back(',');
    out += extra->first + "=\"";
    AppendPromLabelValue(extra->second, &out);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

/// Canonicalizes a label set: drop unknown keys, sort by key, last
/// write wins on duplicate keys.
MetricLabels CanonicalLabels(const MetricLabels& labels) {
  MetricLabels canonical;
  for (const auto& [key, value] : labels) {
    if (!IsAllowedLabelKey(key)) continue;
    bool replaced = false;
    for (auto& existing : canonical) {
      if (existing.first == key) {
        existing.second = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) canonical.emplace_back(key, value);
  }
  std::sort(canonical.begin(), canonical.end());
  return canonical;
}

/// The registry-internal series key: name plus the canonical label
/// block. Deterministic, so map iteration yields a stable export order.
std::string SeriesKey(std::string_view name, const MetricLabels& canonical) {
  std::string key(name);
  key.push_back('{');
  for (const auto& [k, v] : canonical) {
    key += k;
    key.push_back('\x1f');
    key += v;
    key.push_back('\x1f');
  }
  key.push_back('}');
  return key;
}

template <typename V, typename RenderValue>
void AppendLabeledFamilies(const std::vector<LabeledSample<V>>& samples,
                           RenderValue render, std::string* out) {
  bool first_family = true;
  for (size_t i = 0; i < samples.size();) {
    size_t j = i;
    while (j < samples.size() && samples[j].name == samples[i].name) ++j;
    if (!first_family) out->push_back(',');
    first_family = false;
    AppendJsonString(samples[i].name, out);
    out->append(":[");
    for (size_t k = i; k < j; ++k) {
      if (k > i) out->push_back(',');
      out->append("{\"labels\":{");
      for (size_t l = 0; l < samples[k].labels.size(); ++l) {
        if (l > 0) out->push_back(',');
        AppendJsonString(samples[k].labels[l].first, out);
        out->push_back(':');
        AppendJsonString(samples[k].labels[l].second, out);
      }
      out->append("},\"value\":");
      render(samples[k].value, out);
      out->append("}");
    }
    out->append("]");
    i = j;
  }
}

void RenderHistogramJson(const HistogramSnapshot& histogram,
                         std::string* out) {
  *out += "{\"count\":" + std::to_string(histogram.count);
  *out += ",\"sum\":" + FormatDouble(histogram.sum);
  *out += ",\"p50\":" + FormatDouble(histogram.p50());
  *out += ",\"p95\":" + FormatDouble(histogram.p95());
  *out += ",\"p99\":" + FormatDouble(histogram.p99());
  *out += ",\"buckets\":[";
  for (size_t i = 0; i < histogram.buckets.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += "[" + FormatDouble(histogram.buckets[i].first) + "," +
            std::to_string(histogram.buckets[i].second) + "]";
  }
  *out += "]}";
}

}  // namespace

bool IsAllowedLabelKey(std::string_view key) {
  return key == "disposition" || key == "partition" || key == "shard" ||
         key == "tier";
}

size_t Counter::ShardIndex() {
  // A thread keeps hitting the same shard (good locality) while distinct
  // threads spread out; no TLS registration cost.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
}

double Histogram::BucketBound(int index) {
  return std::ldexp(1.0, kMinExponent + index);
}

int Histogram::BucketFor(double value) {
  if (!(value > 0.0)) return 0;  // Zero, negatives and NaN -> first bucket.
  int exponent = 0;
  double mantissa = std::frexp(value, &exponent);  // value = m * 2^e, m in [0.5, 1).
  // Inclusive upper bounds: 2^(e-1) holds exactly-power-of-two values.
  int ceil_log2 = (mantissa == 0.5) ? exponent - 1 : exponent;
  int index = ceil_log2 - kMinExponent;
  if (index < 0) return 0;
  if (index >= kNumBuckets) return kNumBuckets - 1;
  return index;
}

void Histogram::Record(double value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t count = counts_[i].load(std::memory_order_relaxed);
    if (count > 0) snapshot.buckets.emplace_back(BucketBound(i), count);
  }
  return snapshot;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  double rank = p / 100.0 * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  double lower = 0.0;
  for (const auto& [bound, bucket_count] : buckets) {
    double next = static_cast<double>(cumulative + bucket_count);
    if (rank <= next) {
      double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(bucket_count);
      return lower + fraction * (bound - lower);
    }
    cumulative += bucket_count;
    lower = bound;
  }
  return buckets.back().first;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::counter(std::string_view name,
                                  const MetricLabels& labels) {
  MetricLabels canonical = CanonicalLabels(labels);
  if (canonical.empty()) return counter(name);
  std::string key = SeriesKey(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labeled_counters_.find(key);
  if (it == labeled_counters_.end()) {
    it = labeled_counters_
             .emplace(std::move(key),
                      Labeled<Counter>{std::move(canonical),
                                       std::make_unique<Counter>()})
             .first;
  }
  return it->second.instrument.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name,
                              const MetricLabels& labels) {
  MetricLabels canonical = CanonicalLabels(labels);
  if (canonical.empty()) return gauge(name);
  std::string key = SeriesKey(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labeled_gauges_.find(key);
  if (it == labeled_gauges_.end()) {
    it = labeled_gauges_
             .emplace(std::move(key),
                      Labeled<Gauge>{std::move(canonical),
                                     std::make_unique<Gauge>()})
             .first;
  }
  return it->second.instrument.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      const MetricLabels& labels) {
  MetricLabels canonical = CanonicalLabels(labels);
  if (canonical.empty()) return histogram(name);
  std::string key = SeriesKey(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labeled_histograms_.find(key);
  if (it == labeled_histograms_.end()) {
    it = labeled_histograms_
             .emplace(std::move(key),
                      Labeled<Histogram>{std::move(canonical),
                                         std::make_unique<Histogram>()})
             .first;
  }
  return it->second.instrument.get();
}

void MetricsRegistry::SetHelp(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_[std::string(name)] = std::string(help);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  for (const auto& [key, entry] : labeled_counters_) {
    std::string name = key.substr(0, key.find('{'));
    snapshot.labeled_counters.push_back(
        {std::move(name), entry.labels, entry.instrument->Value()});
  }
  for (const auto& [key, entry] : labeled_gauges_) {
    std::string name = key.substr(0, key.find('{'));
    snapshot.labeled_gauges.push_back(
        {std::move(name), entry.labels, entry.instrument->Value()});
  }
  for (const auto& [key, entry] : labeled_histograms_) {
    std::string name = key.substr(0, key.find('{'));
    snapshot.labeled_histograms.push_back(
        {std::move(name), entry.labels, entry.instrument->Snapshot()});
  }
  for (const auto& [name, text] : help_) {
    snapshot.help.emplace_back(name, text);
  }
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    RenderHistogramJson(histogram, &out);
  }
  out += "}";
  if (!labeled_counters.empty() || !labeled_gauges.empty() ||
      !labeled_histograms.empty()) {
    out += ",\"labeled\":{\"counters\":{";
    AppendLabeledFamilies(
        labeled_counters,
        [](uint64_t value, std::string* o) { *o += std::to_string(value); },
        &out);
    out += "},\"gauges\":{";
    AppendLabeledFamilies(
        labeled_gauges,
        [](double value, std::string* o) { *o += FormatDouble(value); },
        &out);
    out += "},\"histograms\":{";
    AppendLabeledFamilies(labeled_histograms, RenderHistogramJson, &out);
    out += "}}";
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  auto help_for = [this](const std::string& name) -> const std::string* {
    for (const auto& [help_name, text] : help) {
      if (help_name == name) return &text;
    }
    return nullptr;
  };
  auto emit_headers = [&](const std::string& name, const char* type) {
    if (const std::string* text = help_for(name)) {
      out += "# HELP " + name + " ";
      AppendPromHelp(*text, &out);
      out.push_back('\n');
    }
    out += "# TYPE " + name + " " + type + "\n";
  };
  auto emit_histogram = [&](const std::string& name,
                            const MetricLabels& labels,
                            const HistogramSnapshot& histogram) {
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : histogram.buckets) {
      cumulative += count;
      std::pair<std::string, std::string> le{"le", FormatDouble(bound)};
      out += name + "_bucket" + PromLabelBlock(labels, &le) + " " +
             std::to_string(cumulative) + "\n";
    }
    std::pair<std::string, std::string> le{"le", "+Inf"};
    out += name + "_bucket" + PromLabelBlock(labels, &le) + " " +
           std::to_string(histogram.count) + "\n";
    out += name + "_sum" + PromLabelBlock(labels, nullptr) + " " +
           FormatDouble(histogram.sum) + "\n";
    out += name + "_count" + PromLabelBlock(labels, nullptr) + " " +
           std::to_string(histogram.count) + "\n";
  };

  // One pass per instrument kind. Within a kind, unlabeled families
  // emit first (preserving the single-node export byte-for-byte when no
  // labels exist), then labeled families, each with one header block.
  // A family that has both an unlabeled and labeled series emits its
  // headers only once, at the unlabeled sample.
  auto family_has_unlabeled = [](const auto& flat, const std::string& name) {
    for (const auto& [flat_name, value] : flat) {
      if (flat_name == name) return true;
    }
    return false;
  };

  for (const auto& [name, value] : counters) {
    emit_headers(name, "counter");
    out += name + " " + std::to_string(value) + "\n";
  }
  for (size_t i = 0; i < labeled_counters.size(); ++i) {
    const auto& sample = labeled_counters[i];
    if ((i == 0 || labeled_counters[i - 1].name != sample.name) &&
        !family_has_unlabeled(counters, sample.name)) {
      emit_headers(sample.name, "counter");
    }
    out += sample.name + PromLabelBlock(sample.labels, nullptr) + " " +
           std::to_string(sample.value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    emit_headers(name, "gauge");
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (size_t i = 0; i < labeled_gauges.size(); ++i) {
    const auto& sample = labeled_gauges[i];
    if ((i == 0 || labeled_gauges[i - 1].name != sample.name) &&
        !family_has_unlabeled(gauges, sample.name)) {
      emit_headers(sample.name, "gauge");
    }
    out += sample.name + PromLabelBlock(sample.labels, nullptr) + " " +
           FormatDouble(sample.value) + "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    emit_headers(name, "histogram");
    emit_histogram(name, {}, histogram);
  }
  for (size_t i = 0; i < labeled_histograms.size(); ++i) {
    const auto& sample = labeled_histograms[i];
    if ((i == 0 || labeled_histograms[i - 1].name != sample.name) &&
        !family_has_unlabeled(histograms, sample.name)) {
      emit_headers(sample.name, "histogram");
    }
    emit_histogram(sample.name, sample.labels, sample.value);
  }
  return out;
}

std::string MetricsSnapshot::Export(ExportFormat format) const {
  switch (format) {
    case ExportFormat::kJson:
      return ToJson();
    case ExportFormat::kPrometheus:
      return ToPrometheusText();
  }
  return ToJson();
}

}  // namespace obs
}  // namespace qp
