#include "qp/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <thread>

namespace qp {
namespace obs {
namespace {

/// Formats a double the way both exports want it: shortest form that
/// round-trips typical metric values, never locale-dependent.
std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

size_t Counter::ShardIndex() {
  // A thread keeps hitting the same shard (good locality) while distinct
  // threads spread out; no TLS registration cost.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
}

double Histogram::BucketBound(int index) {
  return std::ldexp(1.0, kMinExponent + index);
}

int Histogram::BucketFor(double value) {
  if (!(value > 0.0)) return 0;  // Zero, negatives and NaN -> first bucket.
  int exponent = 0;
  double mantissa = std::frexp(value, &exponent);  // value = m * 2^e, m in [0.5, 1).
  // Inclusive upper bounds: 2^(e-1) holds exactly-power-of-two values.
  int ceil_log2 = (mantissa == 0.5) ? exponent - 1 : exponent;
  int index = ceil_log2 - kMinExponent;
  if (index < 0) return 0;
  if (index >= kNumBuckets) return kNumBuckets - 1;
  return index;
}

void Histogram::Record(double value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t count = counts_[i].load(std::memory_order_relaxed);
    if (count > 0) snapshot.buckets.emplace_back(BucketBound(i), count);
  }
  return snapshot;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  double rank = p / 100.0 * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  double lower = 0.0;
  for (const auto& [bound, bucket_count] : buckets) {
    double next = static_cast<double>(cumulative + bucket_count);
    if (rank <= next) {
      double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(bucket_count);
      return lower + fraction * (bound - lower);
    }
    cumulative += bucket_count;
    lower = bound;
  }
  return buckets.back().first;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"count\":" + std::to_string(histogram.count);
    out += ",\"sum\":" + FormatDouble(histogram.sum);
    out += ",\"p50\":" + FormatDouble(histogram.p50());
    out += ",\"p95\":" + FormatDouble(histogram.p95());
    out += ",\"p99\":" + FormatDouble(histogram.p99());
    out += ",\"buckets\":[";
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "[" + FormatDouble(histogram.buckets[i].first) + "," +
             std::to_string(histogram.buckets[i].second) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : histogram.buckets) {
      cumulative += count;
      out += name + "_bucket{le=\"" + FormatDouble(bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count) +
           "\n";
    out += name + "_sum " + FormatDouble(histogram.sum) + "\n";
    out += name + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::Export(ExportFormat format) const {
  switch (format) {
    case ExportFormat::kJson:
      return ToJson();
    case ExportFormat::kPrometheus:
      return ToPrometheusText();
  }
  return ToJson();
}

}  // namespace obs
}  // namespace qp
