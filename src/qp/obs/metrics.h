#ifndef QP_OBS_METRICS_H_
#define QP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qp {
namespace obs {

/// A monotonically increasing counter, sharded across cache lines so
/// concurrent workers never contend on one atomic. All operations are
/// seq_cst: on x86 that costs the same as relaxed, and the total order
/// is what lets readers establish cross-counter invariants (a reader
/// that observes a disposition increment is guaranteed to also observe
/// the `requests` increment that program-order preceded it — the
/// ServiceStats accounting identity relies on this).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_seq_cst);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_seq_cst);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// A settable instantaneous value. Set / SetMax are lock-free; SetMax is
/// the monotone high-watermark update (peak queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_seq_cst); }

  void SetMax(double value) {
    double current = value_.load(std::memory_order_seq_cst);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_seq_cst)) {
    }
  }

  void Add(double delta) {
    double current = value_.load(std::memory_order_seq_cst);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_seq_cst)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram, with percentile extraction.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  /// (inclusive upper bound, observations <= bound in this bucket), only
  /// buckets with a non-zero count, bounds increasing.
  std::vector<std::pair<double, uint64_t>> buckets;

  /// Interpolated percentile (p in [0, 100]); 0 when empty. Linear
  /// interpolation between the bucket's bounds, so the error is bounded
  /// by the log-scale bucket width (~2x at worst, far less in practice
  /// since neighbouring observations cluster).
  double Percentile(double p) const;
  double p50() const { return Percentile(50); }
  double p95() const { return Percentile(95); }
  double p99() const { return Percentile(99); }
};

/// A fixed-bucket log-scale (base-2) histogram of non-negative values.
/// Bucket i holds observations in (2^(kMinExponent+i-1), 2^(kMinExponent+i)],
/// covering ~1e-9 .. ~5e8 — recording latencies in seconds, this spans
/// sub-nanosecond to ~16 years. Record is two wait-free atomic updates;
/// there is no lock anywhere.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  /// Convenience for callers holding a millisecond duration when the
  /// histogram's unit is seconds.
  void RecordMillis(double millis) { Record(millis / 1e3); }

  HistogramSnapshot Snapshot() const;

  static constexpr int kNumBuckets = 60;
  static constexpr int kMinExponent = -30;  // First bound 2^-30 ~ 0.93e-9.

  /// Inclusive upper bound of bucket `index`.
  static double BucketBound(int index);
  /// The bucket `value` falls into.
  static int BucketFor(double value);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Export encodings understood by the ecosystem tooling: a single-line
/// JSON object (log-friendly), and the Prometheus text exposition format.
enum class ExportFormat {
  kJson,
  kPrometheus,
};

/// A dimension attached to a metric series. The key set is closed —
/// `shard`, `partition`, `disposition`, `tier` — which is what keeps the
/// cardinality budget bounded by construction: shards and partitions are
/// deployment-sized, dispositions and tiers are enums. Unknown keys are
/// dropped at registration rather than minted into new series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// The closed label-key set, sorted.
bool IsAllowedLabelKey(std::string_view key);

/// One labeled series in a snapshot.
template <typename V>
struct LabeledSample {
  std::string name;
  MetricLabels labels;  // Canonical: sorted by key, allowed keys only.
  V value;
};

/// A full registry snapshot, ordered by name (deterministic exports).
/// Unlabeled series keep the flat vectors (and their emission format)
/// from the single-node plane; labeled series ride in their own
/// sections.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<LabeledSample<uint64_t>> labeled_counters;
  std::vector<LabeledSample<double>> labeled_gauges;
  std::vector<LabeledSample<HistogramSnapshot>> labeled_histograms;
  /// name -> HELP text (emitted escaped).
  std::vector<std::pair<std::string, std::string>> help;

  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  /// "sum":..,"p50":..,"p95":..,"p99":..,"buckets":[[le,count],..]}}} on
  /// one line; when labeled series exist a trailing "labeled" section
  /// holds them as sub-objects: {"labeled":{"counters":{"name":[
  /// {"labels":{"shard":"0"},"value":3},..]},..}}.
  std::string ToJson() const;
  /// `# HELP`/`# TYPE` headers plus one sample per line; histograms emit
  /// cumulative `_bucket{le="..."}` samples, `_sum` and `_count`. Label
  /// values and help text are escaped per the exposition format.
  std::string ToPrometheusText() const;
  std::string Export(ExportFormat format) const;
};

/// The process's named instruments. Registration (first lookup of a
/// name) takes a mutex; the returned pointers are stable for the
/// registry's lifetime, so hot paths look up once and then touch only
/// the lock-free instruments. Names should follow Prometheus
/// conventions: `qp_<component>_<what>_<unit>` with `_total` counters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Labeled series: the same name with different label values is a
  /// distinct instrument. Keys outside the allowed set are dropped;
  /// an empty (post-filter) label set is the unlabeled instrument.
  Counter* counter(std::string_view name, const MetricLabels& labels);
  Gauge* gauge(std::string_view name, const MetricLabels& labels);
  Histogram* histogram(std::string_view name, const MetricLabels& labels);

  /// HELP text for a metric family, emitted (escaped) ahead of its
  /// `# TYPE` line in the Prometheus export.
  void SetHelp(std::string_view name, std::string_view help);

  MetricsSnapshot Snapshot() const;
  std::string Export(ExportFormat format) const {
    return Snapshot().Export(format);
  }

 private:
  template <typename T>
  struct Labeled {
    MetricLabels labels;
    std::unique_ptr<T> instrument;
  };
  /// Key: name + canonical label encoding (deterministic iteration).
  template <typename T>
  using LabeledMap = std::map<std::string, Labeled<T>, std::less<>>;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  LabeledMap<Counter> labeled_counters_;
  LabeledMap<Gauge> labeled_gauges_;
  LabeledMap<Histogram> labeled_histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace obs
}  // namespace qp

#endif  // QP_OBS_METRICS_H_
