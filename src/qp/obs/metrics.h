#ifndef QP_OBS_METRICS_H_
#define QP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qp {
namespace obs {

/// A monotonically increasing counter, sharded across cache lines so
/// concurrent workers never contend on one atomic. All operations are
/// seq_cst: on x86 that costs the same as relaxed, and the total order
/// is what lets readers establish cross-counter invariants (a reader
/// that observes a disposition increment is guaranteed to also observe
/// the `requests` increment that program-order preceded it — the
/// ServiceStats accounting identity relies on this).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_seq_cst);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_seq_cst);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// A settable instantaneous value. Set / SetMax are lock-free; SetMax is
/// the monotone high-watermark update (peak queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_seq_cst); }

  void SetMax(double value) {
    double current = value_.load(std::memory_order_seq_cst);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_seq_cst)) {
    }
  }

  void Add(double delta) {
    double current = value_.load(std::memory_order_seq_cst);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_seq_cst)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram, with percentile extraction.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  /// (inclusive upper bound, observations <= bound in this bucket), only
  /// buckets with a non-zero count, bounds increasing.
  std::vector<std::pair<double, uint64_t>> buckets;

  /// Interpolated percentile (p in [0, 100]); 0 when empty. Linear
  /// interpolation between the bucket's bounds, so the error is bounded
  /// by the log-scale bucket width (~2x at worst, far less in practice
  /// since neighbouring observations cluster).
  double Percentile(double p) const;
  double p50() const { return Percentile(50); }
  double p95() const { return Percentile(95); }
  double p99() const { return Percentile(99); }
};

/// A fixed-bucket log-scale (base-2) histogram of non-negative values.
/// Bucket i holds observations in (2^(kMinExponent+i-1), 2^(kMinExponent+i)],
/// covering ~1e-9 .. ~5e8 — recording latencies in seconds, this spans
/// sub-nanosecond to ~16 years. Record is two wait-free atomic updates;
/// there is no lock anywhere.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  /// Convenience for callers holding a millisecond duration when the
  /// histogram's unit is seconds.
  void RecordMillis(double millis) { Record(millis / 1e3); }

  HistogramSnapshot Snapshot() const;

  static constexpr int kNumBuckets = 60;
  static constexpr int kMinExponent = -30;  // First bound 2^-30 ~ 0.93e-9.

  /// Inclusive upper bound of bucket `index`.
  static double BucketBound(int index);
  /// The bucket `value` falls into.
  static int BucketFor(double value);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Export encodings understood by the ecosystem tooling: a single-line
/// JSON object (log-friendly), and the Prometheus text exposition format.
enum class ExportFormat {
  kJson,
  kPrometheus,
};

/// A full registry snapshot, ordered by name (deterministic exports).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  /// "sum":..,"p50":..,"p95":..,"p99":..,"buckets":[[le,count],..]}}} on
  /// one line.
  std::string ToJson() const;
  /// `# TYPE` headers plus one sample per line; histograms emit
  /// cumulative `_bucket{le="..."}` samples, `_sum` and `_count`.
  std::string ToPrometheusText() const;
  std::string Export(ExportFormat format) const;
};

/// The process's named instruments. Registration (first lookup of a
/// name) takes a mutex; the returned pointers are stable for the
/// registry's lifetime, so hot paths look up once and then touch only
/// the lock-free instruments. Names should follow Prometheus
/// conventions: `qp_<component>_<what>_<unit>` with `_total` counters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  std::string Export(ExportFormat format) const {
    return Snapshot().Export(format);
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace qp

#endif  // QP_OBS_METRICS_H_
