#include "qp/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "qp/obs/trace.h"

namespace qp {
namespace obs {
namespace {

void CopyTruncated(std::string_view from, char* to, size_t capacity) {
  size_t n = std::min(from.size(), capacity - 1);
  std::memcpy(to, from.data(), n);
  to[n] = '\0';
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatId(uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kTraceSummary:
      return "trace_summary";
    case FlightEventType::kFaultFired:
      return "fault_fired";
    case FlightEventType::kBreakerTransition:
      return "breaker_transition";
    case FlightEventType::kQuarantine:
      return "quarantine";
    case FlightEventType::kRepair:
      return "repair";
    case FlightEventType::kMigrationPhase:
      return "migration_phase";
  }
  return "?";
}

FlightRecorder* FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return recorder;
}

FlightRecorder::FlightRecorder() : slots_(kSlots) {}

#ifndef QP_OBS_DISABLED
void FlightRecorder::Record(const FlightEvent& event) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % kSlots];

  FlightEvent stamped = event;
  stamped.sequence = ticket;
  uint64_t words[kWords] = {};
  std::memcpy(words, &stamped, sizeof(stamped));

  // Per-slot seqlock: mark the write in flight (odd), store the payload
  // through the word atomics, publish (even). A reader that overlaps
  // either skips the slot or notices the seq moved and drops its copy.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}
#endif

std::vector<FlightEvent> FlightRecorder::Dump() const {
  const uint64_t floor = floor_.load(std::memory_order_relaxed);
  std::vector<FlightEvent> events;
  events.reserve(kSlots);
  for (const Slot& slot : slots_) {
    uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // Empty or mid-write.
    uint64_t words[kWords];
    for (size_t i = 0; i < kWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != s2) continue;  // Overwritten while copying.
    FlightEvent event;
    std::memcpy(&event, words, sizeof(event));
    if (event.sequence < floor) continue;  // Cleared.
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.sequence < b.sequence;
            });
  return events;
}

void FlightRecorder::Clear() {
  floor_.store(next_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

std::string FlightRecorder::ToJson(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& event = events[i];
    if (i > 0) out.push_back(',');
    out += "{\"seq\":" + std::to_string(event.sequence);
    out += ",\"type\":";
    AppendJsonString(FlightEventTypeName(event.type), &out);
    out += ",\"what\":";
    AppendJsonString(event.what_view(), &out);
    out += ",\"detail\":";
    AppendJsonString(event.detail_view(), &out);
    out += ",\"a\":" + std::to_string(event.a);
    out += ",\"b\":" + std::to_string(event.b);
    out += ",\"trace_id\":";
    AppendJsonString(FormatId(event.trace_id), &out);
    out += "}";
  }
  out += "]";
  return out;
}

void RecordFlightEvent(FlightEventType type, std::string_view what,
                       std::string_view detail, uint64_t a, uint64_t b,
                       uint64_t trace_id) {
#ifdef QP_OBS_DISABLED
  (void)type;
  (void)what;
  (void)detail;
  (void)a;
  (void)b;
  (void)trace_id;
#else
  FlightEvent event;
  event.type = type;
  CopyTruncated(what, event.what, sizeof(event.what));
  CopyTruncated(detail, event.detail, sizeof(event.detail));
  event.a = a;
  event.b = b;
  event.trace_id = trace_id;
  FlightRecorder::Global()->Record(event);
#endif
}

void RecordTraceSummary(const RequestTrace& trace) {
#ifdef QP_OBS_DISABLED
  (void)trace;
#else
  RecordFlightEvent(FlightEventType::kTraceSummary, trace.disposition(),
                    trace.stopped_phase(),
                    static_cast<uint64_t>(trace.total_millis() * 1000.0),
                    trace.spans().size(), trace.trace_id());
#endif
}

void RecordFaultFire(std::string_view site, uint64_t call_index) {
  RecordFlightEvent(FlightEventType::kFaultFired, site, "", call_index, 0, 0);
}

}  // namespace obs
}  // namespace qp
