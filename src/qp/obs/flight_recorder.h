#ifndef QP_OBS_FLIGHT_RECORDER_H_
#define QP_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace qp {
namespace obs {

class RequestTrace;

/// What a flight-recorder entry describes. The recorder is the crash-
/// forensics layer: the last few thousand notable events (completed
/// request summaries, injected-fault fires, breaker and migration state
/// transitions, scrubber quarantines/repairs) survive in memory and are
/// dumpable after the fact — qpshell \blackbox, or a JSON snapshot when
/// a chaos trial fails.
enum class FlightEventType : uint8_t {
  kTraceSummary = 0,
  kFaultFired = 1,
  kBreakerTransition = 2,
  kQuarantine = 3,
  kRepair = 4,
  kMigrationPhase = 5,
};

/// One fixed-size, trivially-copyable recorder entry. Strings are
/// truncated into the inline arrays: `what` is the primary identifier
/// (fault site, disposition, breaker name, user id, partition phase),
/// `detail` the qualifier (stopped phase, from->to transition, reason).
struct FlightEvent {
  uint64_t sequence = 0;  // Assigned by the recorder; total order.
  FlightEventType type = FlightEventType::kTraceSummary;
  char what[40] = {};
  char detail[40] = {};
  uint64_t a = 0;  // Type-specific (total micros, call index, partition).
  uint64_t b = 0;  // Type-specific (span count, fire count, shard).
  uint64_t trace_id = 0;

  std::string_view what_view() const {
    return std::string_view(what, ::strnlen(what, sizeof(what)));
  }
  std::string_view detail_view() const {
    return std::string_view(detail, ::strnlen(detail, sizeof(detail)));
  }
};

/// Lock-free bounded ring of FlightEvents. Writers claim a slot with
/// one fetch_add and publish through a per-slot sequence word (seqlock);
/// readers copy the payload word-by-word through relaxed atomics and
/// retry/skip slots a writer is mid-flight in, so a dump never blocks a
/// writer and the whole structure is data-race-free under TSan. Memory
/// bound: kSlots * sizeof(slot) ~= kSlots * 128 bytes, fixed at start.
class FlightRecorder {
 public:
  static constexpr size_t kSlots = 4096;

  /// The process-wide recorder every subsystem records into.
  static FlightRecorder* Global();

  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

#ifdef QP_OBS_DISABLED
  void Record(const FlightEvent&) {}
#else
  void Record(const FlightEvent& event);
#endif

  /// Consistent copies of the retained events, oldest first. Slots being
  /// overwritten during the scan are skipped, not torn.
  std::vector<FlightEvent> Dump() const;

  /// Drops retained events (they stay overwritable but invisible);
  /// counters keep running. Test isolation between chaos trials.
  void Clear();

  /// Events ever recorded (including overwritten ones).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// One-line-per-event JSON array of a dump.
  static std::string ToJson(const std::vector<FlightEvent>& events);

 private:
  static constexpr size_t kWords =
      (sizeof(FlightEvent) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct alignas(64) Slot {
    /// 0 = never written; odd = write in progress for ticket (seq-1)/2;
    /// even non-zero = ticket (seq-2)/2 published.
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> floor_{0};  // Tickets below this are cleared.
  std::vector<Slot> slots_;
};

/// Convenience recorders (no-ops under QP_OBS_DISABLED). These are the
/// only calls instrumented subsystems make, so the callsites stay one
/// line.
void RecordFlightEvent(FlightEventType type, std::string_view what,
                       std::string_view detail, uint64_t a = 0,
                       uint64_t b = 0, uint64_t trace_id = 0);

/// Summarizes a finished request/operation trace into the recorder:
/// what=disposition, detail=stopped phase, a=total micros, b=span count.
void RecordTraceSummary(const RequestTrace& trace);

/// The FaultHub fire listener (matches FaultHub::FireListener). Wired up
/// by the storage layer at static-init time; records kFaultFired with
/// what=site, a=call index.
void RecordFaultFire(std::string_view site, uint64_t call_index);

const char* FlightEventTypeName(FlightEventType type);

}  // namespace obs
}  // namespace qp

#endif  // QP_OBS_FLIGHT_RECORDER_H_
