#include "qp/shard/sharded_service.h"

#include <future>
#include <unordered_map>
#include <utility>

#include "qp/storage/durable_profile_store.h"
#include "qp/util/fault_hub.h"
#include "qp/util/file.h"

namespace qp {
namespace shard {

namespace {

/// FNV-1a over the user id: stable across runs (unlike std::hash, whose
/// value is implementation-defined), so a recovered cluster routes every
/// user to the directory that holds their profile.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string ShardDir(const std::string& root, size_t index) {
  return JoinPath(root, "shard-" + std::to_string(index));
}

}  // namespace

ShardedPersonalizationService::ShardedPersonalizationService(
    const Database* db, ShardedOptions options)
    : db_(db),
      options_(std::move(options)),
      owned_metrics_(options_.service.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options_.service.metrics != nullptr ? options_.service.metrics
                                                   : owned_metrics_.get()),
      slots_(options_.num_shards) {
  metric_requests_ = metrics_->counter("qp_router_requests_total");
  metric_mutations_ = metrics_->counter("qp_router_mutations_total");
  metric_shed_ = metrics_->counter("qp_router_shed_total");
  metric_invalidated_ =
      metrics_->counter("qp_router_invalidated_entries_total");
  metric_kills_ = metrics_->counter("qp_router_shard_kills_total");
  metric_recoveries_ = metrics_->counter("qp_router_shard_recoveries_total");
}

ShardedPersonalizationService::~ShardedPersonalizationService() = default;

Result<std::unique_ptr<ShardedPersonalizationService>>
ShardedPersonalizationService::Open(const Database* db,
                                    ShardedOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument(
        "ShardedPersonalizationService requires a storage directory");
  }
  std::unique_ptr<ShardedPersonalizationService> sharded(
      new ShardedPersonalizationService(db, std::move(options)));
  FileSystem* fs = sharded->options_.service.storage.fs != nullptr
                       ? sharded->options_.service.storage.fs
                       : DefaultFileSystem();
  QP_RETURN_IF_ERROR(fs->CreateDir(sharded->options_.dir));
  for (size_t i = 0; i < sharded->options_.num_shards; ++i) {
    QP_ASSIGN_OR_RETURN(sharded->slots_[i], sharded->OpenShard(i));
  }
  return sharded;
}

Result<std::shared_ptr<PersonalizationService>>
ShardedPersonalizationService::OpenShard(size_t index) {
  ServiceOptions opts = options_.service;
  opts.shard_id = static_cast<int>(index);
  opts.metrics = metrics_;
  opts.storage.dir = ShardDir(options_.dir, index);
  opts.storage.metrics = metrics_;
  QP_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DurableProfileStore> store,
      storage::DurableProfileStore::Open(&db_->schema(), opts.storage,
                                         opts.num_shards));
  auto service = std::make_shared<PersonalizationService>(db_, opts,
                                                          std::move(store));
  service->set_trace_sink(trace_sink_.load(std::memory_order_acquire));
  return service;
}

size_t ShardedPersonalizationService::ShardFor(
    const std::string& user_id) const {
  return Fnv1a(user_id) % options_.num_shards;
}

std::shared_ptr<PersonalizationService> ShardedPersonalizationService::Route(
    const std::string& user_id, size_t* shard_index) const {
  const size_t index = ShardFor(user_id);
  if (shard_index != nullptr) *shard_index = index;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return slots_[index];
}

PersonalizationResponse ShardedPersonalizationService::ShedResponse(
    const std::string& reason) const {
  metric_shed_->Add(1);
  PersonalizationResponse response;
  response.status = Status::Unavailable(reason);
  response.disposition = RequestDisposition::kShed;
  return response;
}

PersonalizationResponse ShardedPersonalizationService::Personalize(
    const PersonalizationRequest& request) {
  metric_requests_->Add(1);
  if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
    return ShedResponse("shard routing failed: " + fault.message());
  }
  size_t index = 0;
  std::shared_ptr<PersonalizationService> shard = Route(request.user_id,
                                                        &index);
  if (shard == nullptr) {
    return ShedResponse("shard " + std::to_string(index) + " is down");
  }
  return shard->PersonalizeOne(request);
}

std::vector<PersonalizationResponse>
ShardedPersonalizationService::PersonalizeBatchAndWait(
    std::vector<PersonalizationRequest> requests) {
  std::vector<PersonalizationResponse> responses(requests.size());

  // One consistent routing snapshot for the whole batch: every shard
  // pointer is copied under a single shared-lock hold, then the fan-out
  // runs lock-free (a concurrent kill cannot invalidate the copies).
  std::vector<std::shared_ptr<PersonalizationService>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    shards = slots_;
  }

  // Group request indexes by owner shard; shed dead-shard and
  // fault-routed requests immediately.
  std::unordered_map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < requests.size(); ++i) {
    metric_requests_->Add(1);
    if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
      responses[i] = ShedResponse("shard routing failed: " + fault.message());
      continue;
    }
    const size_t index = ShardFor(requests[i].user_id);
    if (shards[index] == nullptr) {
      responses[i] =
          ShedResponse("shard " + std::to_string(index) + " is down");
      continue;
    }
    by_shard[index].push_back(i);
  }

  // Fan out: every shard's sub-batch submits to its own worker pool
  // before any result is awaited, so shards run concurrently.
  std::vector<std::pair<size_t, std::vector<std::future<PersonalizationResponse>>>>
      inflight;
  inflight.reserve(by_shard.size());
  for (auto& [index, request_indexes] : by_shard) {
    std::vector<PersonalizationRequest> sub;
    sub.reserve(request_indexes.size());
    for (size_t i : request_indexes) sub.push_back(std::move(requests[i]));
    inflight.emplace_back(index,
                          shards[index]->PersonalizeBatch(std::move(sub)));
  }
  for (auto& [index, futures] : inflight) {
    const std::vector<size_t>& request_indexes = by_shard[index];
    for (size_t j = 0; j < futures.size(); ++j) {
      responses[request_indexes[j]] = futures[j].get();
    }
  }
  return responses;
}

Status ShardedPersonalizationService::PutProfile(const std::string& user_id,
                                                 UserProfile profile) {
  metric_mutations_->Add(1);
  if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard routing failed: " + fault.message());
  }
  size_t index = 0;
  auto shard = Route(user_id, &index);
  if (shard == nullptr) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard " + std::to_string(index) + " is down");
  }
  QP_RETURN_IF_ERROR(shard->profiles().Put(user_id, std::move(profile)));
  metric_invalidated_->Add(
      static_cast<uint64_t>(shard->InvalidateUserSelections(user_id)));
  return Status::Ok();
}

Status ShardedPersonalizationService::UpsertProfile(
    const std::string& user_id,
    const std::vector<AtomicPreference>& preferences) {
  metric_mutations_->Add(1);
  if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard routing failed: " + fault.message());
  }
  size_t index = 0;
  auto shard = Route(user_id, &index);
  if (shard == nullptr) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard " + std::to_string(index) + " is down");
  }
  QP_RETURN_IF_ERROR(shard->profiles().Upsert(user_id, preferences));
  metric_invalidated_->Add(
      static_cast<uint64_t>(shard->InvalidateUserSelections(user_id)));
  return Status::Ok();
}

Status ShardedPersonalizationService::RemoveProfile(
    const std::string& user_id) {
  metric_mutations_->Add(1);
  if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard routing failed: " + fault.message());
  }
  size_t index = 0;
  auto shard = Route(user_id, &index);
  if (shard == nullptr) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard " + std::to_string(index) + " is down");
  }
  QP_RETURN_IF_ERROR(shard->profiles().Remove(user_id));
  metric_invalidated_->Add(
      static_cast<uint64_t>(shard->InvalidateUserSelections(user_id)));
  return Status::Ok();
}

Result<ProfileSnapshot> ShardedPersonalizationService::GetProfile(
    const std::string& user_id) {
  size_t index = 0;
  auto shard = Route(user_id, &index);
  if (shard == nullptr) {
    return Status::Unavailable("shard " + std::to_string(index) + " is down");
  }
  return shard->profiles().Get(user_id);
}

Status ShardedPersonalizationService::KillShard(size_t index) {
  if (index >= options_.num_shards) {
    return Status::InvalidArgument("no shard " + std::to_string(index));
  }
  std::shared_ptr<PersonalizationService> victim;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    victim = std::move(slots_[index]);
    slots_[index] = nullptr;
  }
  if (victim == nullptr) return Status::Ok();  // Already down.
  metric_kills_->Add(1);
  // Dropping the (possibly last) reference outside the lock: in-flight
  // requests holding their own copy finish first; the final release
  // drains the shard's worker pool and closes its WAL — routing is never
  // blocked behind the teardown.
  victim.reset();
  return Status::Ok();
}

Status ShardedPersonalizationService::RecoverShard(size_t index) {
  if (index >= options_.num_shards) {
    return Status::InvalidArgument("no shard " + std::to_string(index));
  }
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (slots_[index] != nullptr) return Status::Ok();  // Already alive.
  }
  // Recovery (snapshot + WAL replay) runs outside any lock — the other
  // shards keep serving while this one rebuilds.
  QP_ASSIGN_OR_RETURN(std::shared_ptr<PersonalizationService> reopened,
                      OpenShard(index));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (slots_[index] != nullptr) {
    return Status::Ok();  // Lost a recover race; keep the winner.
  }
  slots_[index] = std::move(reopened);
  metric_recoveries_->Add(1);
  return Status::Ok();
}

bool ShardedPersonalizationService::IsShardAlive(size_t index) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return index < slots_.size() && slots_[index] != nullptr;
}

size_t ShardedPersonalizationService::alive_shards() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  size_t alive = 0;
  for (const auto& slot : slots_) {
    if (slot != nullptr) ++alive;
  }
  return alive;
}

std::shared_ptr<PersonalizationService> ShardedPersonalizationService::Shard(
    size_t index) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return index < slots_.size() ? slots_[index] : nullptr;
}

ShardedStats ShardedPersonalizationService::stats() const {
  ShardedStats stats;
  stats.router.requests = metric_requests_->Value();
  stats.router.mutations = metric_mutations_->Value();
  stats.router.shed = metric_shed_->Value();
  stats.router.invalidated_entries = metric_invalidated_->Value();
  stats.router.shard_kills = metric_kills_->Value();
  stats.router.shard_recoveries = metric_recoveries_->Value();
  std::vector<std::shared_ptr<PersonalizationService>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    shards = slots_;
  }
  stats.shards.resize(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    stats.shards[i].shard_id = i;
    stats.shards[i].alive = shards[i] != nullptr;
    if (shards[i] != nullptr) stats.shards[i].stats = shards[i]->stats();
  }
  return stats;
}

void ShardedPersonalizationService::set_trace_sink(obs::TraceSink* sink) {
  trace_sink_.store(sink, std::memory_order_release);
  std::vector<std::shared_ptr<PersonalizationService>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    shards = slots_;
  }
  for (const auto& shard : shards) {
    if (shard != nullptr) shard->set_trace_sink(sink);
  }
}

}  // namespace shard
}  // namespace qp
