#include "qp/shard/sharded_service.h"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <utility>

#include "qp/obs/flight_recorder.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/util/fault_hub.h"
#include "qp/util/file.h"

namespace qp {
namespace shard {

namespace {

std::string ShardDir(const std::string& root, size_t index) {
  return JoinPath(root, "shard-" + std::to_string(index));
}

}  // namespace

ShardedPersonalizationService::ShardedPersonalizationService(
    const Database* db, ShardedOptions options)
    : db_(db),
      options_(std::move(options)),
      owned_metrics_(options_.service.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options_.service.metrics != nullptr ? options_.service.metrics
                                                   : owned_metrics_.get()) {
  metric_requests_ = metrics_->counter("qp_router_requests_total");
  metric_mutations_ = metrics_->counter("qp_router_mutations_total");
  metric_shed_ = metrics_->counter("qp_router_shed_total");
  metric_invalidated_ =
      metrics_->counter("qp_router_invalidated_entries_total");
  metric_kills_ = metrics_->counter("qp_router_shard_kills_total");
  metric_recoveries_ = metrics_->counter("qp_router_shard_recoveries_total");
  gauge_routing_version_ = metrics_->gauge("qp_router_version");
}

ShardedPersonalizationService::~ShardedPersonalizationService() = default;

Result<std::unique_ptr<ShardedPersonalizationService>>
ShardedPersonalizationService::Open(const Database* db,
                                    ShardedOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument(
        "ShardedPersonalizationService requires a storage directory");
  }
  if (options.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  std::unique_ptr<ShardedPersonalizationService> sharded(
      new ShardedPersonalizationService(db, std::move(options)));
  FileSystem* fs = sharded->options_.service.storage.fs != nullptr
                       ? sharded->options_.service.storage.fs
                       : DefaultFileSystem();
  QP_RETURN_IF_ERROR(fs->CreateDir(sharded->options_.dir));

  // The persisted routing table is the truth for an existing cluster;
  // the options seed a fresh one.
  RoutingTable table;
  auto table_or = ReadRoutingTable(fs, sharded->options_.dir);
  if (table_or.ok()) {
    table = std::move(table_or).value();
  } else if (table_or.status().code() == StatusCode::kNotFound) {
    if (sharded->options_.num_shards == 0) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (sharded->options_.num_shards > sharded->options_.num_partitions) {
      return Status::InvalidArgument(
          "num_shards (" + std::to_string(sharded->options_.num_shards) +
          ") cannot exceed num_partitions (" +
          std::to_string(sharded->options_.num_partitions) + ")");
    }
    table = RoutingTable::Uniform(sharded->options_.num_partitions,
                                  sharded->options_.num_shards);
    QP_RETURN_IF_ERROR(WriteRoutingTable(fs, sharded->options_.dir, table));
  } else {
    return table_or.status();
  }

  sharded->partitions_.reserve(table.num_partitions());
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    sharded->partitions_.push_back(std::make_unique<PartitionState>());
  }
  sharded->slots_.assign(table.num_shards, nullptr);
  for (size_t i = 0; i < table.num_shards; ++i) {
    QP_ASSIGN_OR_RETURN(sharded->slots_[i], sharded->OpenShard(i));
  }
  sharded->gauge_routing_version_->Set(static_cast<double>(table.version));
  sharded->routing_ = std::make_shared<const RoutingTable>(std::move(table));

  QP_ASSIGN_OR_RETURN(sharded->journal_,
                      ReadMigrationJournal(fs, sharded->options_.dir));
  sharded->migrator_ = std::make_unique<ShardMigrator>(
      sharded.get(), sharded->options_.migration, sharded->metrics_);
  QP_RETURN_IF_ERROR(sharded->ResolveJournal());
  return sharded;
}

Result<std::shared_ptr<PersonalizationService>>
ShardedPersonalizationService::OpenShard(size_t index) {
  ServiceOptions opts = options_.service;
  opts.shard_id = static_cast<int>(index);
  opts.metrics = metrics_;
  opts.storage.dir = ShardDir(options_.dir, index);
  opts.storage.metrics = metrics_;
  QP_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DurableProfileStore> store,
      storage::DurableProfileStore::Open(&db_->schema(), opts.storage,
                                         opts.num_shards));
  auto service = std::make_shared<PersonalizationService>(db_, opts,
                                                          std::move(store));
  service->set_trace_sink(trace_sink_.load(std::memory_order_acquire));
  return service;
}

std::shared_ptr<const RoutingTable>
ShardedPersonalizationService::RoutingSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return routing_;
}

RoutingTable ShardedPersonalizationService::routing() const {
  return *RoutingSnapshot();
}

uint64_t ShardedPersonalizationService::routing_version() const {
  return RoutingSnapshot()->version;
}

size_t ShardedPersonalizationService::ShardFor(
    const std::string& user_id) const {
  return RoutingSnapshot()->ShardFor(user_id);
}

size_t ShardedPersonalizationService::PartitionFor(
    const std::string& user_id) const {
  // The partition count is fixed at Open, so no lock is needed.
  return static_cast<size_t>(RouteHash(user_id) % partitions_.size());
}

size_t ShardedPersonalizationService::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return slots_.size();
}

std::shared_ptr<PersonalizationService> ShardedPersonalizationService::Route(
    const std::string& user_id, size_t* shard_index) const {
  // One lock hold for table + slot: the owner shard and its service are
  // read from the same routing version.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const size_t index = routing_->ShardFor(user_id);
  if (shard_index != nullptr) *shard_index = index;
  return index < slots_.size() ? slots_[index] : nullptr;
}

PersonalizationResponse ShardedPersonalizationService::ShedResponse(
    const std::string& reason) const {
  metric_shed_->Add(1);
  PersonalizationResponse response;
  response.status = Status::Unavailable(reason);
  response.disposition = RequestDisposition::kShed;
  return response;
}

obs::TraceContext ShardedPersonalizationService::EdgeContext(
    const obs::TraceContext& incoming) const {
  // The router is the cluster's trace edge: an already-valid context
  // (e.g. a test standing in for an upstream gateway) is honoured as-is;
  // otherwise the trace id is minted and the head coin flipped here,
  // once, for the whole distributed request.
  obs::TraceContext context = incoming;
  if (!context.valid()) {
    context.trace_id = obs::NewTraceId();
    context.sampled = obs::HeadSampled(
        context.trace_id, options_.service.sampling.head_rate);
  }
  return context;
}

PersonalizationResponse ShardedPersonalizationService::Personalize(
    const PersonalizationRequest& request) {
  metric_requests_->Add(1);
  if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
    return ShedResponse("shard routing failed: " + fault.message());
  }
  size_t index = 0;
  std::shared_ptr<PersonalizationService> shard = Route(request.user_id,
                                                        &index);
  if (shard == nullptr) {
    return ShedResponse("shard " + std::to_string(index) + " is down");
  }
  obs::TraceSink* sink = trace_sink_.load(std::memory_order_acquire);
  if (!obs::kTracingCompiledIn || sink == nullptr) {
    return shard->PersonalizeOne(request);
  }
  const obs::TraceContext context = EdgeContext(request.trace_context);
  if (!context.sampled) {
    // Not head-sampled: the shard still gets the cluster trace id, so a
    // tail-kept trace joins its distributed family.
    PersonalizationRequest routed = request;
    routed.trace_context = context;
    return shard->PersonalizeOne(routed);
  }
  // The router's own fragment: one span covering route + downstream, the
  // parent every shard-side span tree hangs under.
  obs::RequestTrace trace(context);
  obs::ScopedSpan router_span(&trace, "router");
  router_span.Counter("shard", index);
  router_span.Counter("partition", PartitionFor(request.user_id));
  PersonalizationRequest routed = request;
  routed.trace_context = trace.ContextForSpan(router_span.index());
  PersonalizationResponse response = shard->PersonalizeOne(routed);
  router_span.End();
  trace.SetDisposition(response.status.ok() ? ToString(response.disposition)
                                            : "error",
                       /*stopped_phase=*/"");
  obs::RecordTraceSummary(trace);
  sink->Consume(std::move(trace));
  return response;
}

std::vector<PersonalizationResponse>
ShardedPersonalizationService::PersonalizeBatchAndWait(
    std::vector<PersonalizationRequest> requests) {
  std::vector<PersonalizationResponse> responses(requests.size());

  // One consistent snapshot of table + slots for the whole batch: every
  // request routes by the same version and every shard pointer is copied
  // under a single shared-lock hold, then the fan-out runs lock-free (a
  // concurrent kill or cutover cannot invalidate the copies).
  std::shared_ptr<const RoutingTable> table;
  std::vector<std::shared_ptr<PersonalizationService>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    table = routing_;
    shards = slots_;
  }

  obs::TraceSink* sink = trace_sink_.load(std::memory_order_acquire);
  // Router fragments for head-sampled requests, closed after the fan-in
  // (their "router" span covers queueing + shard work). Indexes into
  // `responses`; the traces are built via indices, not ScopedSpan, so
  // vector growth cannot dangle a span handle.
  struct RouterFragment {
    size_t response_index;
    size_t span;
    obs::RequestTrace trace;
  };
  std::vector<RouterFragment> fragments;

  // Group request indexes by owner shard; shed dead-shard and
  // fault-routed requests immediately.
  std::unordered_map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < requests.size(); ++i) {
    metric_requests_->Add(1);
    if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
      responses[i] = ShedResponse("shard routing failed: " + fault.message());
      continue;
    }
    const size_t index = table->ShardFor(requests[i].user_id);
    if (index >= shards.size() || shards[index] == nullptr) {
      responses[i] =
          ShedResponse("shard " + std::to_string(index) + " is down");
      continue;
    }
    if (obs::kTracingCompiledIn && sink != nullptr) {
      const obs::TraceContext context =
          EdgeContext(requests[i].trace_context);
      if (context.sampled) {
        RouterFragment fragment{i, 0, obs::RequestTrace(context)};
        fragment.span = fragment.trace.StartSpan("router");
        fragment.trace.AddCounter(fragment.span, "shard", index);
        requests[i].trace_context =
            fragment.trace.ContextForSpan(fragment.span);
        fragments.push_back(std::move(fragment));
      } else {
        requests[i].trace_context = context;
      }
    }
    by_shard[index].push_back(i);
  }

  // Fan out: every shard's sub-batch submits to its own worker pool
  // before any result is awaited, so shards run concurrently.
  std::vector<std::pair<size_t, std::vector<std::future<PersonalizationResponse>>>>
      inflight;
  inflight.reserve(by_shard.size());
  for (auto& [index, request_indexes] : by_shard) {
    std::vector<PersonalizationRequest> sub;
    sub.reserve(request_indexes.size());
    for (size_t i : request_indexes) sub.push_back(std::move(requests[i]));
    inflight.emplace_back(index,
                          shards[index]->PersonalizeBatch(std::move(sub)));
  }
  for (auto& [index, futures] : inflight) {
    const std::vector<size_t>& request_indexes = by_shard[index];
    for (size_t j = 0; j < futures.size(); ++j) {
      responses[request_indexes[j]] = futures[j].get();
    }
  }
  for (RouterFragment& fragment : fragments) {
    const PersonalizationResponse& response =
        responses[fragment.response_index];
    fragment.trace.EndSpan(fragment.span);
    fragment.trace.SetDisposition(
        response.status.ok() ? ToString(response.disposition) : "error",
        /*stopped_phase=*/"");
    obs::RecordTraceSummary(fragment.trace);
    sink->Consume(std::move(fragment.trace));
  }
  return responses;
}

Status ShardedPersonalizationService::RouteMutation(
    const std::string& user_id,
    const std::function<Status(PersonalizationService&)>& apply) {
  metric_mutations_->Add(1);
  if (Status fault = QP_FAULT_POINT("shard.route"); !fault.ok()) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard routing failed: " + fault.message());
  }
  const size_t partition = PartitionFor(user_id);
  PartitionState& ps = *partitions_[partition];
  // The partition mutex spans route + apply + mirror: this partition's
  // drain/cutover barriers exclude us, so the owner read below stays
  // the owner for the whole mutation — a cutover can never strand an
  // acknowledged write on the losing shard.
  std::lock_guard<std::mutex> guard(ps.mutex);
  std::shared_ptr<PersonalizationService> owner_svc;
  std::shared_ptr<PersonalizationService> mirror_svc;
  size_t owner = 0;
  bool dual = false;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    owner = routing_->owner[partition];
    owner_svc = owner < slots_.size() ? slots_[owner] : nullptr;
    if (ps.phase == kDualWrite) {
      dual = true;
      mirror_svc = ps.target < slots_.size() ? slots_[ps.target] : nullptr;
    }
  }
  if (owner_svc == nullptr) {
    metric_shed_->Add(1);
    return Status::Unavailable("shard " + std::to_string(owner) + " is down");
  }
  // The owner's apply is the acknowledgement; everything after it is
  // best-effort repair bookkeeping.
  QP_RETURN_IF_ERROR(apply(*owner_svc));
  metric_invalidated_->Add(
      static_cast<uint64_t>(owner_svc->InvalidateUserSelections(user_id)));
  if (dual) {
    migrator_->CountDualWrite();
    Status mirror = mirror_svc != nullptr
                        ? apply(*mirror_svc)
                        : Status::Unavailable("migration target is down");
    if (mirror.ok()) {
      mirror_svc->InvalidateUserSelections(user_id);
    } else if (mirror.code() != StatusCode::kNotFound) {
      // NotFound mirrors a remove the target never saw — already equal.
      // Anything else leaves the target behind: re-copied at cutover.
      ps.dirty.insert(user_id);
    }
  }
  return Status::Ok();
}

Status ShardedPersonalizationService::PutProfile(const std::string& user_id,
                                                 UserProfile profile) {
  return RouteMutation(user_id, [&](PersonalizationService& svc) {
    return svc.profiles().Put(user_id, profile);
  });
}

Status ShardedPersonalizationService::UpsertProfile(
    const std::string& user_id,
    const std::vector<AtomicPreference>& preferences) {
  return RouteMutation(user_id, [&](PersonalizationService& svc) {
    return svc.profiles().Upsert(user_id, preferences);
  });
}

Status ShardedPersonalizationService::RemoveProfile(
    const std::string& user_id) {
  return RouteMutation(user_id, [&](PersonalizationService& svc) {
    return svc.profiles().Remove(user_id);
  });
}

Result<ProfileSnapshot> ShardedPersonalizationService::GetProfile(
    const std::string& user_id) {
  const uint64_t version = routing_version();
  size_t index = 0;
  auto shard = Route(user_id, &index);
  if (shard == nullptr) {
    return Status::Unavailable("shard " + std::to_string(index) + " is down");
  }
  auto result = shard->profiles().Get(user_id);
  if (result.ok() || result.status().code() != StatusCode::kNotFound) {
    return result;
  }
  // NotFound could mean a cutover moved the user between our route and
  // the read. Reads stay lock-free; one retry under the new version
  // closes the window (the source's copies outlive the flip briefly, so
  // the user is never unreadable — at worst found on the new owner).
  if (routing_version() == version) return result;
  shard = Route(user_id, &index);
  if (shard == nullptr) {
    return Status::Unavailable("shard " + std::to_string(index) + " is down");
  }
  return shard->profiles().Get(user_id);
}

Status ShardedPersonalizationService::KillShard(size_t index) {
  std::shared_ptr<PersonalizationService> victim;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (index >= slots_.size()) {
      return Status::InvalidArgument("no shard " + std::to_string(index));
    }
    victim = std::move(slots_[index]);
    slots_[index] = nullptr;
  }
  if (victim == nullptr) return Status::Ok();  // Already down.
  metric_kills_->Add(1);
  // Dropping the (possibly last) reference outside the lock: in-flight
  // requests holding their own copy finish first; the final release
  // drains the shard's worker pool and closes its WAL — routing is never
  // blocked behind the teardown.
  victim.reset();
  return Status::Ok();
}

Status ShardedPersonalizationService::RecoverShard(size_t index) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (index >= slots_.size()) {
      return Status::InvalidArgument("no shard " + std::to_string(index));
    }
    if (slots_[index] != nullptr) return Status::Ok();  // Already alive.
  }
  // Recovery (snapshot + WAL replay) runs outside any lock — the other
  // shards keep serving while this one rebuilds.
  QP_ASSIGN_OR_RETURN(std::shared_ptr<PersonalizationService> reopened,
                      OpenShard(index));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (index >= slots_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(index));
  }
  if (slots_[index] != nullptr) {
    return Status::Ok();  // Lost a recover race; keep the winner.
  }
  slots_[index] = std::move(reopened);
  metric_recoveries_->Add(1);
  return Status::Ok();
}

Status ShardedPersonalizationService::PersistRouting(
    const RoutingTable& table) {
  FileSystem* fs = options_.service.storage.fs != nullptr
                       ? options_.service.storage.fs
                       : DefaultFileSystem();
  return WriteRoutingTable(fs, options_.dir, table);
}

void ShardedPersonalizationService::InstallRouting(RoutingTable table) {
  gauge_routing_version_->SetMax(static_cast<double>(table.version));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  routing_ = std::make_shared<const RoutingTable>(std::move(table));
}

Status ShardedPersonalizationService::CommitRoutingChange(
    const std::function<void(RoutingTable&)>& edit) {
  // Serialized read-edit-persist-install: concurrent cutovers of
  // different partitions each see the other's committed flip.
  std::lock_guard<std::mutex> serialize(routing_write_mutex_);
  RoutingTable next = *RoutingSnapshot();
  edit(next);
  next.version += 1;
  QP_RETURN_IF_ERROR(PersistRouting(next));
  InstallRouting(std::move(next));
  return Status::Ok();
}

Status ShardedPersonalizationService::JournalAdd(
    const MigrationJournalEntry& entry) {
  std::lock_guard<std::mutex> guard(journal_mutex_);
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("migrate.journal"));
  std::vector<MigrationJournalEntry> next = journal_;
  bool replaced = false;
  for (MigrationJournalEntry& existing : next) {
    if (existing.partition == entry.partition) {
      existing = entry;
      replaced = true;
    }
  }
  if (!replaced) next.push_back(entry);
  FileSystem* fs = options_.service.storage.fs != nullptr
                       ? options_.service.storage.fs
                       : DefaultFileSystem();
  QP_RETURN_IF_ERROR(WriteMigrationJournal(fs, options_.dir, next));
  journal_ = std::move(next);
  return Status::Ok();
}

Status ShardedPersonalizationService::JournalRemove(uint32_t partition) {
  std::lock_guard<std::mutex> guard(journal_mutex_);
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("migrate.journal"));
  std::vector<MigrationJournalEntry> next = journal_;
  next.erase(std::remove_if(next.begin(), next.end(),
                            [partition](const MigrationJournalEntry& entry) {
                              return entry.partition == partition;
                            }),
             next.end());
  if (next.size() == journal_.size()) return Status::Ok();  // Not journaled.
  FileSystem* fs = options_.service.storage.fs != nullptr
                       ? options_.service.storage.fs
                       : DefaultFileSystem();
  QP_RETURN_IF_ERROR(WriteMigrationJournal(fs, options_.dir, next));
  journal_ = std::move(next);
  return Status::Ok();
}

Status ShardedPersonalizationService::ResolveJournal() {
  std::vector<MigrationJournalEntry> entries;
  {
    std::lock_guard<std::mutex> guard(journal_mutex_);
    entries = journal_;
  }
  for (const MigrationJournalEntry& entry : entries) {
    auto table = RoutingSnapshot();
    if (entry.partition >= table->owner.size()) {
      // A journal from a different layout; nothing it names can route.
      QP_RETURN_IF_ERROR(JournalRemove(entry.partition));
      continue;
    }
    // The persisted routing table decides: if the cutover committed the
    // target owns the partition and the source still holds dead copies
    // (finish the cleanup the crash interrupted); otherwise the
    // migration never happened and the target holds a partial copy
    // (drop it). Either way every user ends with exactly one owner.
    const bool committed = table->owner[entry.partition] == entry.target;
    const uint32_t loser = committed ? entry.source : entry.target;
    if (loser != table->owner[entry.partition]) {
      QP_RETURN_IF_ERROR(RemovePartitionUsers(entry.partition, loser));
    }
    QP_RETURN_IF_ERROR(JournalRemove(entry.partition));
  }
  return Status::Ok();
}

Status ShardedPersonalizationService::RemovePartitionUsers(uint32_t partition,
                                                           uint32_t shard) {
  auto svc = Shard(shard);
  if (svc == nullptr) {
    return Status::Unavailable("shard " + std::to_string(shard) + " is down");
  }
  const std::vector<std::string> users = svc->profiles().Users();
  for (const std::string& user : users) {
    if (PartitionFor(user) != partition) continue;
    Status removed = svc->profiles().Remove(user);
    if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
      return removed;
    }
    svc->InvalidateUserSelections(user);
  }
  return Status::Ok();
}

Status ShardedPersonalizationService::Reshard(size_t new_num_shards) {
  std::lock_guard<std::mutex> serialize(reshard_mutex_);
  if (new_num_shards == 0) {
    return Status::InvalidArgument("cannot reshard to zero shards");
  }
  auto current = RoutingSnapshot();
  QP_ASSIGN_OR_RETURN(RoutingTable plan,
                      PlanReshard(*current, new_num_shards));
  migrator_->gauge_resharding_->Set(1.0);
  // The reshard operation trace: one "reshard" span the per-partition
  // migration traces link under (they share its trace_id and parent
  // their roots at this span). Control-plane operations are rare and
  // always interesting, so they bypass head sampling.
  obs::RequestTrace op_trace;
  const size_t op_span = op_trace.StartSpan("reshard");
  op_trace.AddCounter(op_span, "from_shards", current->num_shards);
  op_trace.AddCounter(op_span, "to_shards", new_num_shards);
  const obs::TraceContext op_context = op_trace.ContextForSpan(op_span);
  Status status = [&]() -> Status {
    if (new_num_shards > current->num_shards) {
      // Grow: open the new shard directories first so migrations have
      // live targets, then commit the count, then move partitions.
      for (size_t i = current->num_shards; i < new_num_shards; ++i) {
        {
          std::shared_lock<std::shared_mutex> lock(mutex_);
          if (i < slots_.size() && slots_[i] != nullptr) continue;
        }
        QP_ASSIGN_OR_RETURN(std::shared_ptr<PersonalizationService> opened,
                            OpenShard(i));
        std::unique_lock<std::shared_mutex> lock(mutex_);
        if (slots_.size() < i + 1) slots_.resize(i + 1);
        if (slots_[i] == nullptr) slots_[i] = std::move(opened);
      }
      QP_RETURN_IF_ERROR(CommitRoutingChange(
          [&](RoutingTable& t) { t.num_shards = new_num_shards; }));
      return migrator_->MigrateTo(plan, op_context);
    }
    if (new_num_shards < current->num_shards) {
      // Shrink: move every partition off the retiring shards first; the
      // count (and the teardown) commit only when nothing routes there.
      QP_RETURN_IF_ERROR(migrator_->MigrateTo(plan, op_context));
      auto table = RoutingSnapshot();
      for (uint32_t p = 0; p < table->owner.size(); ++p) {
        if (table->owner[p] >= new_num_shards) {
          return Status::FailedPrecondition(
              "partition " + std::to_string(p) + " still routes to shard " +
              std::to_string(table->owner[p]) + "; reshard incomplete");
        }
      }
      QP_RETURN_IF_ERROR(CommitRoutingChange(
          [&](RoutingTable& t) { t.num_shards = new_num_shards; }));
      std::vector<std::shared_ptr<PersonalizationService>> retired;
      {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        for (size_t i = new_num_shards; i < slots_.size(); ++i) {
          retired.push_back(std::move(slots_[i]));
        }
        slots_.resize(new_num_shards);
      }
      // Retired services close their (empty) stores outside the lock.
      retired.clear();
      return Status::Ok();
    }
    // Same count: still converge ownership (a re-run after a partial
    // failure finishes the leftover moves).
    return migrator_->MigrateTo(plan, op_context);
  }();
  migrator_->gauge_resharding_->Set(0.0);
  op_trace.EndSpan(op_span);
  op_trace.SetDisposition(status.ok() ? "resharded" : "reshard_failed",
                          /*stopped_phase=*/"");
  obs::RecordTraceSummary(op_trace);
  if (obs::TraceSink* sink = trace_sink_.load(std::memory_order_acquire);
      obs::kTracingCompiledIn && sink != nullptr) {
    sink->Consume(std::move(op_trace));
  }
  return status;
}

MigrationStats ShardedPersonalizationService::migration_stats() const {
  return migrator_->stats();
}

std::shared_ptr<const obs::RequestTrace>
ShardedPersonalizationService::last_migration_trace() const {
  return migrator_->last_trace();
}

bool ShardedPersonalizationService::IsShardAlive(size_t index) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return index < slots_.size() && slots_[index] != nullptr;
}

size_t ShardedPersonalizationService::alive_shards() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  size_t alive = 0;
  for (const auto& slot : slots_) {
    if (slot != nullptr) ++alive;
  }
  return alive;
}

std::shared_ptr<PersonalizationService> ShardedPersonalizationService::Shard(
    size_t index) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return index < slots_.size() ? slots_[index] : nullptr;
}

ShardedStats ShardedPersonalizationService::stats() const {
  ShardedStats stats;
  stats.router.requests = metric_requests_->Value();
  stats.router.mutations = metric_mutations_->Value();
  stats.router.shed = metric_shed_->Value();
  stats.router.invalidated_entries = metric_invalidated_->Value();
  stats.router.shard_kills = metric_kills_->Value();
  stats.router.shard_recoveries = metric_recoveries_->Value();
  stats.num_partitions = partitions_.size();
  stats.migration = migrator_->stats();
  std::vector<std::shared_ptr<PersonalizationService>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    stats.routing_version = routing_->version;
    shards = slots_;
  }
  stats.shards.resize(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    stats.shards[i].shard_id = i;
    stats.shards[i].alive = shards[i] != nullptr;
    if (shards[i] != nullptr) stats.shards[i].stats = shards[i]->stats();
  }
  return stats;
}

void ShardedPersonalizationService::set_trace_sink(obs::TraceSink* sink) {
  trace_sink_.store(sink, std::memory_order_release);
  std::vector<std::shared_ptr<PersonalizationService>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    shards = slots_;
  }
  for (const auto& shard : shards) {
    if (shard != nullptr) shard->set_trace_sink(sink);
  }
}

}  // namespace shard
}  // namespace qp
