#ifndef QP_SHARD_ROUTING_TABLE_H_
#define QP_SHARD_ROUTING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace shard {

/// File names under the cluster root directory.
extern const char kRoutingFileName[];    // "ROUTING"
extern const char kMigrationFileName[];  // "MIGRATION"

/// FNV-1a over the user id: stable across runs (unlike std::hash, whose
/// value is implementation-defined), so a recovered cluster routes every
/// user to the directory that holds their profile.
uint64_t RouteHash(const std::string& user_id);

/// The versioned user -> shard map. The hash space is split into a
/// fixed number of partitions (Redis-cluster style); each partition is
/// owned by exactly one shard, and live resharding moves whole
/// partitions — one atomic owner flip per partition, each bumping
/// `version`. The partition count is fixed for the cluster's lifetime;
/// only ownership changes.
///
/// Persisted as the ROUTING file in the cluster root (atomic
/// temp+rename, like MANIFEST): the on-disk table is the commit point
/// of every cutover, so reopening a cluster always routes each user to
/// the directory that owns their profile — even after a crash mid-
/// migration.
struct RoutingTable {
  static constexpr size_t kDefaultPartitions = 64;

  /// Monotonically increasing; bumped on every persisted change.
  uint64_t version = 0;
  /// Shards currently addressable (owners are all < num_shards).
  uint64_t num_shards = 0;
  /// owner[p] = shard owning partition p. Size = partition count.
  std::vector<uint32_t> owner;

  /// A fresh cluster's table: owner[p] = p % num_shards, version 1.
  /// When num_shards divides num_partitions this routes identically to
  /// the PR 7 fixed router (hash % num_shards), so pre-routing-table
  /// shard directories stay valid.
  static RoutingTable Uniform(size_t num_partitions, size_t num_shards);

  size_t num_partitions() const { return owner.size(); }
  size_t PartitionFor(const std::string& user_id) const {
    return static_cast<size_t>(RouteHash(user_id) % owner.size());
  }
  size_t ShardFor(const std::string& user_id) const {
    return owner[PartitionFor(user_id)];
  }
  /// Partitions per shard (index = shard id, size = num_shards).
  std::vector<size_t> PartitionCounts() const;
};

/// Plans a minimal-movement reshard of `current` onto `new_num_shards`
/// shards: partition loads are rebalanced to within one partition of
/// each other while moving as few partitions as possible (growing N->M
/// moves ~P*(M-N)/M partitions onto the new shards; shrinking moves
/// only the partitions owned by retired shards). Deterministic: equal
/// choices resolve in partition/shard order. Returns the target table
/// (version copied from `current`; the migrator bumps it per cutover).
Result<RoutingTable> PlanReshard(const RoutingTable& current,
                                 size_t new_num_shards);

/// Persists `table` as <dir>/ROUTING (atomic rename + SyncDir).
Status WriteRoutingTable(FileSystem* fs, const std::string& dir,
                         const RoutingTable& table);

/// Reads <dir>/ROUTING. NotFound when the file does not exist (a fresh
/// cluster); ParseError on corruption.
Result<RoutingTable> ReadRoutingTable(FileSystem* fs, const std::string& dir);

/// One in-flight migration, journaled so a crash mid-migration resolves
/// deterministically on reopen: if the persisted routing table says
/// `target` owns the partition the cutover committed (finish the source
/// cleanup), otherwise it never happened (drop the partial copy from
/// the target). Either way, never a half-moved user.
struct MigrationJournalEntry {
  uint32_t partition = 0;
  uint32_t source = 0;
  uint32_t target = 0;
};

/// Rewrites <dir>/MIGRATION with `entries` (atomic rename + SyncDir);
/// an empty list removes the file.
Status WriteMigrationJournal(FileSystem* fs, const std::string& dir,
                             const std::vector<MigrationJournalEntry>& entries);

/// Reads <dir>/MIGRATION; an absent file is an empty journal.
Result<std::vector<MigrationJournalEntry>> ReadMigrationJournal(
    FileSystem* fs, const std::string& dir);

}  // namespace shard
}  // namespace qp

#endif  // QP_SHARD_ROUTING_TABLE_H_
