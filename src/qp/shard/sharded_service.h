#ifndef QP_SHARD_SHARDED_SERVICE_H_
#define QP_SHARD_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "qp/obs/metrics.h"
#include "qp/obs/trace.h"
#include "qp/relational/database.h"
#include "qp/service/service.h"
#include "qp/shard/routing_table.h"
#include "qp/shard/shard_migrator.h"
#include "qp/util/status.h"

namespace qp {
namespace shard {

/// How a ShardedPersonalizationService is laid out.
struct ShardedOptions {
  /// Number of shards a *fresh* cluster starts with. Users hash (FNV-1a)
  /// onto fixed partitions, partitions map to shards through the
  /// versioned routing table persisted as <dir>/ROUTING — and once that
  /// file exists it is the truth: reopening an existing cluster ignores
  /// this field (the shard count changes only through Reshard()).
  size_t num_shards = 4;
  /// Hash-space partitions of a fresh cluster — the granularity of live
  /// resharding, fixed for the cluster's lifetime. With the default 64
  /// and a power-of-two shard count, routing matches the PR 7 fixed
  /// hash%N router exactly.
  size_t num_partitions = RoutingTable::kDefaultPartitions;
  /// Root storage directory; shard i owns `dir`/shard-<i> with its own
  /// MANIFEST, snapshot and WAL. Must be non-empty: a sharded deployment
  /// exists to bound per-shard state, which requires durability.
  std::string dir;
  /// Retry/backoff tuning for live migration steps (see ShardMigrator).
  MigrationOptions migration;
  /// Per-shard service tuning, applied to every shard. `storage.dir` is
  /// overridden with the shard subdirectory, `shard_id` with the shard's
  /// index, and `metrics` with the cluster-wide registry. Each shard
  /// labels its qp_service_* instruments {shard="<id>"}, so one registry
  /// carries genuinely per-shard series (no re-homing, no collisions)
  /// and per-shard stats read back exact. `service.sampling` is the
  /// cluster's head/tail trace-sampling policy — the router makes the
  /// head decision and the shards honour it. Set
  /// `service.storage.hot_capacity` for tiered shards.
  ServiceOptions service;
};

/// Router accounting: every routed request/mutation is counted here, on
/// top of whatever the target shard counts for itself.
struct RouterStats {
  uint64_t requests = 0;   // Personalization requests routed.
  uint64_t mutations = 0;  // Profile mutations routed.
  /// Requests/mutations refused by the router itself: target shard down,
  /// or an injected "shard.route" fault.
  uint64_t shed = 0;
  /// Selection-cache entries dropped by post-mutation invalidation.
  uint64_t invalidated_entries = 0;
  uint64_t shard_kills = 0;
  uint64_t shard_recoveries = 0;
};

/// One row of ShardedStats: a shard's liveness plus its full service
/// stats (storage, cache, tier residency, breaker, scrubber).
struct ShardRow {
  size_t shard_id = 0;
  bool alive = false;
  ServiceStats stats;  // Zero-valued while the shard is down.
};

struct ShardedStats {
  RouterStats router;
  /// Routing-table version serving right now (monotonic; bumps on every
  /// cutover and shard-count change).
  uint64_t routing_version = 0;
  size_t num_partitions = 0;
  MigrationStats migration;
  std::vector<ShardRow> shards;
};

/// The scale-out front end: N independent PersonalizationServices, each
/// owning its own durable (optionally tiered) profile store under its
/// own subdirectory, behind a hash router. A user's profile and its
/// queries live on exactly one shard, so shards share nothing but the
/// read-only Database and the metrics registry.
///
/// Fault containment is the point: KillShard drops one shard's service
/// (draining its workers, closing its WAL cleanly) while the other
/// shards keep serving at full fidelity; requests routed to the dead
/// shard are shed with Status::Unavailable. RecoverShard reopens the
/// shard from its own directory — snapshot + WAL replay — and because
/// every mutation is acknowledged only after its WAL append, a
/// kill/recover cycle loses nothing that was ever acknowledged.
///
/// Thread-safe. Routing takes a shared lock only long enough to copy
/// the target shard's shared_ptr, so a concurrent kill never races a
/// request mid-pipeline: the killed service stays alive until the last
/// in-flight request releases its reference.
class ShardedPersonalizationService {
 public:
  /// Opens (or initializes) every shard under `options.dir`. Fails with
  /// the first shard's recovery error on corruption.
  static Result<std::unique_ptr<ShardedPersonalizationService>> Open(
      const Database* db, ShardedOptions options);

  ~ShardedPersonalizationService();

  ShardedPersonalizationService(const ShardedPersonalizationService&) = delete;
  ShardedPersonalizationService& operator=(
      const ShardedPersonalizationService&) = delete;

  /// The user's owner shard under the *current* routing-table version
  /// (FNV-1a hash -> partition -> owner). Stable between reshards.
  size_t ShardFor(const std::string& user_id) const;

  /// The user's hash partition — the unit of live migration.
  size_t PartitionFor(const std::string& user_id) const;

  /// A copy of the routing table serving right now.
  RoutingTable routing() const;
  uint64_t routing_version() const;

  /// Routes one request to its owner shard ("shard.route" fault site).
  /// A dead target shard sheds the request with Status::Unavailable.
  PersonalizationResponse Personalize(const PersonalizationRequest& request);

  /// Routes a batch: requests group by owner shard and fan out across
  /// each shard's worker pool concurrently; response order = request
  /// order. Requests owned by a dead shard resolve shed.
  std::vector<PersonalizationResponse> PersonalizeBatchAndWait(
      std::vector<PersonalizationRequest> requests);

  /// Profile mutations, routed like requests. On success the owner
  /// shard's selection cache drops exactly this user's entries.
  Status PutProfile(const std::string& user_id, UserProfile profile);
  Status UpsertProfile(const std::string& user_id,
                       const std::vector<AtomicPreference>& preferences);
  Status RemoveProfile(const std::string& user_id);
  Result<ProfileSnapshot> GetProfile(const std::string& user_id);

  /// Drops shard `index`'s service: in-flight requests finish (they hold
  /// a reference), new ones shed, the store closes cleanly. Idempotent —
  /// killing a dead shard is a no-op.
  Status KillShard(size_t index);

  /// Reopens shard `index` from its directory (snapshot + WAL replay).
  /// Every mutation acknowledged before the kill is recovered — the
  /// zero-loss guarantee the chaos suite asserts. No-op if alive.
  Status RecoverShard(size_t index);

  /// Live resharding: grows (opening fresh shard directories) or
  /// shrinks (retiring emptied ones) the cluster to `new_num_shards`,
  /// migrating every partition that changes owner through the
  /// ShardMigrator's copy -> tail -> dual-write -> cutover machine. The
  /// cluster serves throughout: reads and acknowledged writes never
  /// pause for more than a partition's drain/cutover barrier. Safe to
  /// re-run after a partial failure — already-moved partitions are
  /// no-ops. Returns the first partition's error when some partitions
  /// could not move (their users stay on their source shards; routing
  /// stays consistent). Serializes concurrent Reshard calls.
  Status Reshard(size_t new_num_shards);

  MigrationStats migration_stats() const;

  /// The trace of the last migration driven by this cluster's migrator
  /// (per-step spans, linked by trace_id to the owning Reshard
  /// operation); nullptr before the first migration. The \migrations
  /// span-tree source.
  std::shared_ptr<const obs::RequestTrace> last_migration_trace() const;

  bool IsShardAlive(size_t index) const;
  /// Shards currently addressable (routing-table truth, not the fresh-
  /// cluster seed in ShardedOptions).
  size_t num_shards() const;
  size_t alive_shards() const;

  /// Direct access to one shard's service (nullptr while down) — the
  /// escape hatch tests and qpshell use for per-shard inspection.
  std::shared_ptr<PersonalizationService> Shard(size_t index) const;

  ShardedStats stats() const;
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches `sink` to every shard (and to shards recovered later).
  /// Same contract as PersonalizationService::set_trace_sink.
  void set_trace_sink(obs::TraceSink* sink);

 private:
  /// Migration phases a partition moves through; kIdle outside a
  /// migration. Guarded by the partition's mutex.
  enum MigrationPhase : int {
    kIdle = 0,
    kCopying = 1,
    kTailing = 2,
    kDualWrite = 3,
  };

  /// Per-partition coordination between the mutation path and the
  /// migrator. Mutators hold `mutex` across route + apply (+ mirror),
  /// so the migrator's drain/cutover barriers exclude them exactly for
  /// the final-tail and owner-flip windows — bounded added latency,
  /// never unavailability.
  struct PartitionState {
    std::mutex mutex;
    int phase = kIdle;    // Guarded by mutex.
    uint32_t target = 0;  // Valid while phase != kIdle; guarded by mutex.
    /// Users whose dual-write mirror failed; re-copied at cutover.
    std::unordered_set<std::string> dirty;  // Guarded by mutex.
  };

  ShardedPersonalizationService(const Database* db, ShardedOptions options);

  /// Builds shard `index`'s service from its subdirectory.
  Result<std::shared_ptr<PersonalizationService>> OpenShard(size_t index);

  /// Resolves the trace context for a request entering through the
  /// router: honours a valid incoming context, else mints the cluster
  /// trace id and makes the head sampling decision.
  obs::TraceContext EdgeContext(const obs::TraceContext& incoming) const;

  /// The routing read: copies the target's shared_ptr under the shared
  /// lock (nullptr = shard down).
  std::shared_ptr<PersonalizationService> Route(const std::string& user_id,
                                                size_t* shard_index) const;

  /// The current table, one shared-lock hold.
  std::shared_ptr<const RoutingTable> RoutingSnapshot() const;

  /// Persists `table` as <dir>/ROUTING (the cutover commit point).
  Status PersistRouting(const RoutingTable& table);
  /// Swaps the in-memory table (after a successful persist).
  void InstallRouting(RoutingTable table);
  /// The serialized read-edit-persist-install cycle every routing
  /// change goes through: `edit` mutates a copy of the current table,
  /// the version bumps, the file commits, the pointer swaps. Concurrent
  /// cutovers of different partitions cannot lose each other's flips.
  Status CommitRoutingChange(const std::function<void(RoutingTable&)>& edit);

  /// Journal maintenance ("migrate.journal" fault site): the on-disk
  /// MIGRATION file always mirrors the in-memory entry list.
  Status JournalAdd(const MigrationJournalEntry& entry);
  Status JournalRemove(uint32_t partition);

  /// Applies crash-recovery resolution for journaled migrations found
  /// at Open: cutover committed -> finish the source cleanup, else ->
  /// drop the partial target copy. Never a half-moved user.
  Status ResolveJournal();

  /// Deletes every partition-`partition` user from shard `shard` and
  /// drops their cached selections (cutover cleanup / abort rollback).
  Status RemovePartitionUsers(uint32_t partition, uint32_t shard);

  /// The mutation path: routes `user_id` under its partition's mutex,
  /// applies `apply` to the owner (the acknowledgement), and mirrors it
  /// to the migration target during a dual-write window. Retries the
  /// routing snapshot when a cutover slips between snapshot and lock.
  Status RouteMutation(
      const std::string& user_id,
      const std::function<Status(PersonalizationService&)>& apply);

  PersonalizationResponse ShedResponse(const std::string& reason) const;

  const Database* db_;
  ShardedOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  std::atomic<obs::TraceSink*> trace_sink_{nullptr};

  /// Guards the slot table and the routing pointer; slots_[i] == nullptr
  /// while shard i is down.
  mutable std::shared_mutex mutex_;
  std::vector<std::shared_ptr<PersonalizationService>> slots_;
  std::shared_ptr<const RoutingTable> routing_;

  /// Fixed-size (one per partition, never resized after Open), so
  /// references stay valid without holding mutex_.
  std::vector<std::unique_ptr<PartitionState>> partitions_;

  /// Serializes Reshard() calls and journal file rewrites.
  std::mutex reshard_mutex_;
  std::mutex routing_write_mutex_;
  mutable std::mutex journal_mutex_;
  std::vector<MigrationJournalEntry> journal_;

  std::unique_ptr<ShardMigrator> migrator_;

  /// Router instruments (cluster registry, qp_router_*).
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_mutations_ = nullptr;
  obs::Counter* metric_shed_ = nullptr;
  obs::Counter* metric_invalidated_ = nullptr;
  obs::Counter* metric_kills_ = nullptr;
  obs::Counter* metric_recoveries_ = nullptr;
  obs::Gauge* gauge_routing_version_ = nullptr;

  friend class ShardMigrator;
};

}  // namespace shard
}  // namespace qp

#endif  // QP_SHARD_SHARDED_SERVICE_H_
