#ifndef QP_SHARD_SHARDED_SERVICE_H_
#define QP_SHARD_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "qp/obs/metrics.h"
#include "qp/obs/trace.h"
#include "qp/relational/database.h"
#include "qp/service/service.h"
#include "qp/util/status.h"

namespace qp {
namespace shard {

/// How a ShardedPersonalizationService is laid out.
struct ShardedOptions {
  /// Number of shards. Users hash across them (FNV-1a of the user id);
  /// the assignment is stable for the cluster's lifetime.
  size_t num_shards = 4;
  /// Root storage directory; shard i owns `dir`/shard-<i> with its own
  /// MANIFEST, snapshot and WAL. Must be non-empty: a sharded deployment
  /// exists to bound per-shard state, which requires durability.
  std::string dir;
  /// Per-shard service tuning, applied to every shard. `storage.dir` is
  /// overridden with the shard subdirectory, `shard_id` with the shard's
  /// index, and `metrics` with the cluster-wide registry (every shard
  /// publishes into the same instruments — the registry is get-or-create
  /// by name, so N shards aggregate cleanly). Set
  /// `service.storage.hot_capacity` for tiered shards.
  ServiceOptions service;
};

/// Router accounting: every routed request/mutation is counted here, on
/// top of whatever the target shard counts for itself.
struct RouterStats {
  uint64_t requests = 0;   // Personalization requests routed.
  uint64_t mutations = 0;  // Profile mutations routed.
  /// Requests/mutations refused by the router itself: target shard down,
  /// or an injected "shard.route" fault.
  uint64_t shed = 0;
  /// Selection-cache entries dropped by post-mutation invalidation.
  uint64_t invalidated_entries = 0;
  uint64_t shard_kills = 0;
  uint64_t shard_recoveries = 0;
};

/// One row of ShardedStats: a shard's liveness plus its full service
/// stats (storage, cache, tier residency, breaker, scrubber).
struct ShardRow {
  size_t shard_id = 0;
  bool alive = false;
  ServiceStats stats;  // Zero-valued while the shard is down.
};

struct ShardedStats {
  RouterStats router;
  std::vector<ShardRow> shards;
};

/// The scale-out front end: N independent PersonalizationServices, each
/// owning its own durable (optionally tiered) profile store under its
/// own subdirectory, behind a hash router. A user's profile and its
/// queries live on exactly one shard, so shards share nothing but the
/// read-only Database and the metrics registry.
///
/// Fault containment is the point: KillShard drops one shard's service
/// (draining its workers, closing its WAL cleanly) while the other
/// shards keep serving at full fidelity; requests routed to the dead
/// shard are shed with Status::Unavailable. RecoverShard reopens the
/// shard from its own directory — snapshot + WAL replay — and because
/// every mutation is acknowledged only after its WAL append, a
/// kill/recover cycle loses nothing that was ever acknowledged.
///
/// Thread-safe. Routing takes a shared lock only long enough to copy
/// the target shard's shared_ptr, so a concurrent kill never races a
/// request mid-pipeline: the killed service stays alive until the last
/// in-flight request releases its reference.
class ShardedPersonalizationService {
 public:
  /// Opens (or initializes) every shard under `options.dir`. Fails with
  /// the first shard's recovery error on corruption.
  static Result<std::unique_ptr<ShardedPersonalizationService>> Open(
      const Database* db, ShardedOptions options);

  ~ShardedPersonalizationService();

  ShardedPersonalizationService(const ShardedPersonalizationService&) = delete;
  ShardedPersonalizationService& operator=(
      const ShardedPersonalizationService&) = delete;

  /// The stable user -> shard assignment (FNV-1a hash, mod num_shards).
  size_t ShardFor(const std::string& user_id) const;

  /// Routes one request to its owner shard ("shard.route" fault site).
  /// A dead target shard sheds the request with Status::Unavailable.
  PersonalizationResponse Personalize(const PersonalizationRequest& request);

  /// Routes a batch: requests group by owner shard and fan out across
  /// each shard's worker pool concurrently; response order = request
  /// order. Requests owned by a dead shard resolve shed.
  std::vector<PersonalizationResponse> PersonalizeBatchAndWait(
      std::vector<PersonalizationRequest> requests);

  /// Profile mutations, routed like requests. On success the owner
  /// shard's selection cache drops exactly this user's entries.
  Status PutProfile(const std::string& user_id, UserProfile profile);
  Status UpsertProfile(const std::string& user_id,
                       const std::vector<AtomicPreference>& preferences);
  Status RemoveProfile(const std::string& user_id);
  Result<ProfileSnapshot> GetProfile(const std::string& user_id);

  /// Drops shard `index`'s service: in-flight requests finish (they hold
  /// a reference), new ones shed, the store closes cleanly. Idempotent —
  /// killing a dead shard is a no-op.
  Status KillShard(size_t index);

  /// Reopens shard `index` from its directory (snapshot + WAL replay).
  /// Every mutation acknowledged before the kill is recovered — the
  /// zero-loss guarantee the chaos suite asserts. No-op if alive.
  Status RecoverShard(size_t index);

  bool IsShardAlive(size_t index) const;
  size_t num_shards() const { return options_.num_shards; }
  size_t alive_shards() const;

  /// Direct access to one shard's service (nullptr while down) — the
  /// escape hatch tests and qpshell use for per-shard inspection.
  std::shared_ptr<PersonalizationService> Shard(size_t index) const;

  ShardedStats stats() const;
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches `sink` to every shard (and to shards recovered later).
  /// Same contract as PersonalizationService::set_trace_sink.
  void set_trace_sink(obs::TraceSink* sink);

 private:
  ShardedPersonalizationService(const Database* db, ShardedOptions options);

  /// Builds shard `index`'s service from its subdirectory.
  Result<std::shared_ptr<PersonalizationService>> OpenShard(size_t index);

  /// The routing read: copies the target's shared_ptr under the shared
  /// lock (nullptr = shard down).
  std::shared_ptr<PersonalizationService> Route(const std::string& user_id,
                                                size_t* shard_index) const;

  PersonalizationResponse ShedResponse(const std::string& reason) const;

  const Database* db_;
  ShardedOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  std::atomic<obs::TraceSink*> trace_sink_{nullptr};

  /// Guards the slot table; slots_[i] == nullptr while shard i is down.
  mutable std::shared_mutex mutex_;
  std::vector<std::shared_ptr<PersonalizationService>> slots_;

  /// Router instruments (cluster registry, qp_router_*).
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_mutations_ = nullptr;
  obs::Counter* metric_shed_ = nullptr;
  obs::Counter* metric_invalidated_ = nullptr;
  obs::Counter* metric_kills_ = nullptr;
  obs::Counter* metric_recoveries_ = nullptr;
};

}  // namespace shard
}  // namespace qp

#endif  // QP_SHARD_SHARDED_SERVICE_H_
