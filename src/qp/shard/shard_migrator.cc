#include "qp/shard/shard_migrator.h"

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "qp/obs/flight_recorder.h"
#include "qp/obs/trace.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/profile_backend.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace shard {

namespace {

/// Replays one acknowledged source mutation onto the target backend.
/// Remove of a user the target never saw is clean: the tail may replay
/// a create+remove pair whose create landed in the copy phase already.
Status ApplyTail(storage::ProfileBackend& target,
                 const storage::ProfileMutation& mutation) {
  switch (mutation.kind) {
    case storage::ProfileMutation::Kind::kPut:
      return target.Put(mutation.user_id, mutation.profile);
    case storage::ProfileMutation::Kind::kUpsert:
      return target.Upsert(mutation.user_id, mutation.preferences);
    case storage::ProfileMutation::Kind::kRemove: {
      Status removed = target.Remove(mutation.user_id);
      if (removed.code() == StatusCode::kNotFound) return Status::Ok();
      return removed;
    }
  }
  return Status::Internal("unknown mutation kind");
}

}  // namespace

ShardMigrator::ShardMigrator(ShardedPersonalizationService* cluster,
                             MigrationOptions options,
                             obs::MetricsRegistry* metrics)
    : cluster_(cluster),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()) {
  metric_migrated_ = metrics->counter("qp_migrate_partitions_total");
  metric_aborted_ = metrics->counter("qp_migrate_aborts_total");
  metric_users_copied_ = metrics->counter("qp_migrate_users_copied_total");
  metric_tail_records_ = metrics->counter("qp_migrate_tail_records_total");
  metric_dual_writes_ = metrics->counter("qp_migrate_dual_writes_total");
  metric_retries_ = metrics->counter("qp_migrate_retries_total");
  metric_copy_restarts_ = metrics->counter("qp_migrate_copy_restarts_total");
  gauge_active_ = metrics->gauge("qp_migrate_active");
  gauge_resharding_ = metrics->gauge("qp_migrate_resharding");
  metric_partition_seconds_ =
      metrics->histogram("qp_migrate_partition_seconds");
}

MigrationStats ShardMigrator::stats() const {
  MigrationStats stats;
  stats.partitions_migrated = metric_migrated_->Value();
  stats.partitions_aborted = metric_aborted_->Value();
  stats.users_copied = metric_users_copied_->Value();
  stats.tail_records = metric_tail_records_->Value();
  stats.dual_writes = metric_dual_writes_->Value();
  stats.retries = metric_retries_->Value();
  stats.copy_restarts = metric_copy_restarts_->Value();
  stats.active = static_cast<uint64_t>(gauge_active_->Value());
  stats.resharding = gauge_resharding_->Value() != 0.0;
  return stats;
}

Status ShardMigrator::WithRetries(const char* what,
                                  const std::function<Status()>& step) {
  const int attempts = std::max(1, options_.max_attempts);
  std::chrono::milliseconds backoff = options_.backoff;
  Status status;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      metric_retries_->Add(1);
      clock_->SleepFor(
          std::chrono::duration_cast<std::chrono::nanoseconds>(backoff));
      backoff = std::min(backoff * 2, options_.backoff_max);
    }
    status = step();
    if (status.ok()) return status;
    // A tail that fell off the rotated WAL cannot succeed by retrying —
    // the caller restarts its copy phase instead.
    if (status.code() == StatusCode::kOutOfRange) return status;
  }
  return Status(status.code(), std::string(what) + " failed after " +
                                   std::to_string(attempts) +
                                   " attempts: " + status.message());
}

Status ShardMigrator::CopyUser(const std::string& user_id, uint32_t source,
                               uint32_t target) {
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("migrate.copy"));
  auto source_svc = cluster_->Shard(source);
  auto target_svc = cluster_->Shard(target);
  if (source_svc == nullptr) {
    return Status::Unavailable("source shard " + std::to_string(source) +
                               " is down");
  }
  if (target_svc == nullptr) {
    return Status::Unavailable("target shard " + std::to_string(target) +
                               " is down");
  }
  auto snapshot_or = source_svc->profiles().Get(user_id);
  if (!snapshot_or.ok()) {
    if (snapshot_or.status().code() == StatusCode::kNotFound) {
      // Removed since we enumerated (or a failed dual-write mirror of a
      // remove): make the target agree.
      Status removed = target_svc->profiles().Remove(user_id);
      if (removed.code() == StatusCode::kNotFound) return Status::Ok();
      return removed;
    }
    return snapshot_or.status();
  }
  return target_svc->profiles().Put(user_id, *snapshot_or.value().profile);
}

Status ShardMigrator::CopyPhase(uint32_t partition, uint32_t source,
                                uint32_t target, uint64_t* watermark,
                                obs::RequestTrace* trace) {
  auto source_svc = cluster_->Shard(source);
  if (source_svc == nullptr) {
    return Status::Unavailable("source shard " + std::to_string(source) +
                               " is down");
  }
  // Watermark before enumerating: every mutation acknowledged after it
  // is replayed by the tail, every state at or before it is captured by
  // the per-user copies below (a copy races only with mutations the
  // tail will replay anyway — replay is idempotent).
  *watermark = source_svc->profiles().storage_stats().last_appended_seqno;
  const std::vector<std::string> users = source_svc->profiles().Users();
  uint64_t copied = 0;
  for (const std::string& user : users) {
    if (cluster_->PartitionFor(user) != partition) continue;
    QP_RETURN_IF_ERROR(WithRetries(
        "copy", [&] { return CopyUser(user, source, target); }));
    ++copied;
  }
  metric_users_copied_->Add(copied);
  if (trace != nullptr) {
    const size_t span = trace->StartSpan("copy_accounting");
    trace->AddCounter(span, "users_copied", copied);
    trace->EndSpan(span);
  }
  return Status::Ok();
}

Status ShardMigrator::TailRound(uint32_t partition, uint32_t source,
                                uint32_t target, uint64_t* applied,
                                bool* caught_up) {
  *caught_up = false;
  QP_RETURN_IF_ERROR(QP_FAULT_POINT("migrate.tail"));
  auto source_svc = cluster_->Shard(source);
  auto target_svc = cluster_->Shard(target);
  if (source_svc == nullptr) {
    return Status::Unavailable("source shard " + std::to_string(source) +
                               " is down");
  }
  if (target_svc == nullptr) {
    return Status::Unavailable("target shard " + std::to_string(target) +
                               " is down");
  }
  // The head observed before the read bounds this round: co-located
  // partitions keep appending to the shared WAL, so an empty tail is
  // not the only termination condition — reaching the pre-read head is
  // enough (every record of the migrating partition at or below it has
  // been replayed; under the drain barrier none can be in flight).
  const uint64_t head =
      source_svc->profiles().storage_stats().last_appended_seqno;
  QP_ASSIGN_OR_RETURN(std::vector<storage::WalTailRecord> records,
                      source_svc->profiles().ReadMutationsAfter(*applied));
  for (const storage::WalTailRecord& record : records) {
    if (cluster_->PartitionFor(record.mutation.user_id) == partition) {
      QP_RETURN_IF_ERROR(QP_FAULT_POINT("migrate.apply"));
      QP_RETURN_IF_ERROR(ApplyTail(target_svc->profiles(), record.mutation));
      metric_tail_records_->Add(1);
    }
    // Only past a successfully applied (or skipped foreign) record: a
    // transient apply failure must retry from this record, not after it
    // — advancing first would silently drop an acknowledged mutation.
    *applied = record.seqno;
  }
  *caught_up = records.empty() || *applied >= head;
  return Status::Ok();
}

Status ShardMigrator::Abort(uint32_t partition, uint32_t source,
                            uint32_t target, Status cause) {
  (void)source;  // The source keeps serving untouched — nothing to undo.
  {
    auto& ps = *cluster_->partitions_[partition];
    std::lock_guard<std::mutex> guard(ps.mutex);
    ps.phase = ShardedPersonalizationService::kIdle;
    ps.target = 0;
    ps.dirty.clear();
  }
  metric_aborted_->Add(1);
  // Drop the partial copy. If the target is unreachable the journal
  // entry stays behind on purpose: reopen resolution sees routing still
  // naming the source and drops the partial copy then.
  Status cleanup = WithRetries("abort cleanup", [&] {
    return cluster_->RemovePartitionUsers(partition, target);
  });
  if (cleanup.ok()) {
    Status journal = WithRetries(
        "journal remove", [&] { return cluster_->JournalRemove(partition); });
    (void)journal;  // Reopen resolution is idempotent on a stale entry.
  }
  return cause;
}

Status ShardMigrator::MigratePartition(uint32_t partition, uint32_t target,
                                       const obs::TraceContext& parent) {
  auto table = cluster_->RoutingSnapshot();
  if (partition >= table->owner.size()) {
    return Status::InvalidArgument("no partition " + std::to_string(partition));
  }
  const uint32_t source = table->owner[partition];
  if (source == target) return Status::Ok();

  const int64_t start_ns = clock_->NowNanos();
  gauge_active_->Add(1.0);
  obs::TraceSink* sink = cluster_->trace_sink_.load(std::memory_order_acquire);
  // The migration's own trace, always built (migrations are rare and the
  // span record is the post-mortem): a fragment of the owning Reshard
  // operation when `parent` is valid, standalone otherwise. Retained as
  // last_trace() for \migrations even when no sink is attached.
  obs::RequestTrace trace(parent);
  obs::RequestTrace* tp = &trace;
  // State-machine transitions land in the flight recorder with the
  // trace id, so a chaos post-mortem can line a fault fire up against
  // the phase the partition was in when it hit.
  auto phase_event = [&](const char* name) {
    obs::RecordFlightEvent(obs::FlightEventType::kMigrationPhase, name,
                           /*detail=*/"", partition, target,
                           trace.trace_id());
  };
  auto finish = [&](Status status) {
    gauge_active_->Add(-1.0);
    metric_partition_seconds_->Record(
        static_cast<double>(clock_->NowNanos() - start_ns) / 1e9);
    phase_event(status.ok() ? "migrated" : "aborted");
    if (obs::kTracingCompiledIn) {
      trace.SetDisposition(status.ok() ? "migrated" : "migration_aborted",
                           /*stopped_phase=*/"");
      obs::RecordTraceSummary(trace);
      auto retained =
          std::make_shared<const obs::RequestTrace>(std::move(trace));
      {
        std::lock_guard<std::mutex> guard(last_trace_mutex_);
        last_trace_ = retained;
      }
      if (sink != nullptr) sink->Consume(*retained);
    }
    return status;
  };

  // Journal the intent before anything moves: a crash from here on
  // resolves deterministically at reopen.
  Status journaled = WithRetries("journal add", [&] {
    return cluster_->JournalAdd({partition, source, target});
  });
  if (!journaled.ok()) {
    metric_aborted_->Add(1);
    return finish(journaled);
  }

  auto& ps = *cluster_->partitions_[partition];
  auto set_phase = [&](int phase, const char* name) {
    {
      std::lock_guard<std::mutex> guard(ps.mutex);
      ps.phase = phase;
      ps.target = target;
      ps.dirty.clear();
    }
    phase_event(name);
  };
  set_phase(ShardedPersonalizationService::kCopying, "copying");

  uint64_t applied = 0;
  int restarts = 0;
  Status status;
  for (;;) {
    {
      obs::ScopedSpan span(tp, "migrate_copy");
      status = CopyPhase(partition, source, target, &applied, tp);
    }
    if (!status.ok()) return finish(Abort(partition, source, target, status));
    set_phase(ShardedPersonalizationService::kTailing, "tailing");
    bool caught_up = false;
    {
      obs::ScopedSpan span(tp, "migrate_tail");
      do {
        status = WithRetries("tail", [&] {
          return TailRound(partition, source, target, &applied, &caught_up);
        });
      } while (status.ok() && !caught_up);
    }
    if (status.ok()) break;
    if (status.code() == StatusCode::kOutOfRange &&
        restarts < options_.max_copy_restarts) {
      // The source checkpointed the tail away (WAL rotated); start the
      // copy phase over from a fresh watermark. The rotated records may
      // include removes the first pass's copies now shadow, so the
      // partial copy is dropped first — the fresh enumeration alone
      // decides what the target holds.
      ++restarts;
      metric_copy_restarts_->Add(1);
      status = WithRetries("copy restart cleanup", [&] {
        return cluster_->RemovePartitionUsers(partition, target);
      });
      if (!status.ok()) {
        return finish(Abort(partition, source, target, status));
      }
      applied = 0;
      set_phase(ShardedPersonalizationService::kCopying, "copy_restart");
      continue;
    }
    return finish(Abort(partition, source, target, status));
  }

  // Barrier: block the partition's mutators, drain the last of the
  // tail, then reopen mutations in dual-write mode. After this window
  // target state == source state for every partition user.
  {
    std::unique_lock<std::mutex> barrier(ps.mutex);
    obs::ScopedSpan span(tp, "migrate_drain");
    bool caught_up = false;
    do {
      status = WithRetries("final drain", [&] {
        return TailRound(partition, source, target, &applied, &caught_up);
      });
    } while (status.ok() && !caught_up);
    if (!status.ok()) {
      barrier.unlock();
      return finish(Abort(partition, source, target, status));
    }
    ps.dirty.clear();
    ps.target = target;
    ps.phase = ShardedPersonalizationService::kDualWrite;
  }
  phase_event("dual_write");

  if (options_.dual_write_hold.count() > 0) {
    clock_->SleepFor(std::chrono::duration_cast<std::chrono::nanoseconds>(
        options_.dual_write_hold));
  }

  // Cutover barrier: repair any users whose mirror failed during the
  // window, then persist the owner flip — the atomic commit point.
  {
    std::unique_lock<std::mutex> barrier(ps.mutex);
    obs::ScopedSpan span(tp, "migrate_cutover");
    std::vector<std::string> dirty(ps.dirty.begin(), ps.dirty.end());
    std::sort(dirty.begin(), dirty.end());
    for (const std::string& user : dirty) {
      status = WithRetries("dirty re-copy",
                           [&] { return CopyUser(user, source, target); });
      if (!status.ok()) break;
    }
    if (status.ok()) {
      metric_users_copied_->Add(dirty.size());
      status = WithRetries("cutover commit", [&] {
        QP_RETURN_IF_ERROR(QP_FAULT_POINT("migrate.cutover"));
        return cluster_->CommitRoutingChange(
            [&](RoutingTable& t) { t.owner[partition] = target; });
      });
    }
    if (!status.ok()) {
      barrier.unlock();
      return finish(Abort(partition, source, target, status));
    }
    ps.phase = ShardedPersonalizationService::kIdle;
    ps.target = 0;
    ps.dirty.clear();
  }
  phase_event("cutover_committed");

  // Cleanup outside the barrier: the partition serves from the target
  // now; the source's leftover copies are garbage. A failure here keeps
  // the journal entry so reopen resolution finishes the job.
  {
    obs::ScopedSpan span(tp, "migrate_cleanup");
    Status cleanup = WithRetries("source cleanup", [&] {
      return cluster_->RemovePartitionUsers(partition, source);
    });
    if (cleanup.ok()) {
      Status journal = WithRetries(
          "journal remove", [&] { return cluster_->JournalRemove(partition); });
      (void)journal;
    }
  }
  metric_migrated_->Add(1);
  return finish(Status::Ok());
}

Status ShardMigrator::MigrateTo(const RoutingTable& plan,
                                const obs::TraceContext& parent) {
  auto current = cluster_->RoutingSnapshot();
  if (plan.owner.size() != current->owner.size()) {
    return Status::InvalidArgument(
        "plan has " + std::to_string(plan.owner.size()) + " partitions, " +
        "cluster has " + std::to_string(current->owner.size()));
  }
  Status first_error;
  for (uint32_t p = 0; p < plan.owner.size(); ++p) {
    auto table = cluster_->RoutingSnapshot();
    if (table->owner[p] == plan.owner[p]) continue;
    Status status = MigratePartition(p, plan.owner[p], parent);
    if (!status.ok() && first_error.ok()) {
      first_error = Status(status.code(), "partition " + std::to_string(p) +
                                              ": " + status.message());
    }
  }
  return first_error;
}

std::shared_ptr<const obs::RequestTrace> ShardMigrator::last_trace() const {
  std::lock_guard<std::mutex> guard(last_trace_mutex_);
  return last_trace_;
}

}  // namespace shard
}  // namespace qp
