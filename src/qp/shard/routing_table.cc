#include "qp/shard/routing_table.h"

#include <charconv>

#include "qp/util/string_util.h"

namespace qp {
namespace shard {

const char kRoutingFileName[] = "ROUTING";
const char kMigrationFileName[] = "MIGRATION";

namespace {

const char kRoutingHeader[] = "qp-routing v1";
const char kMigrationHeader[] = "qp-migration v1";

bool ParseUint64(std::string_view text, uint64_t* out) {
  // from_chars refuses signs, whitespace and overflow, so "-1" is
  // rejected as corrupt rather than wrapped like strtoull.
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out, 10);
  return ec == std::errc() && ptr == end;
}

bool ParseUint32(std::string_view text, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseUint64(text, &wide) || wide > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(wide);
  return true;
}

}  // namespace

uint64_t RouteHash(const std::string& user_id) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : user_id) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

RoutingTable RoutingTable::Uniform(size_t num_partitions, size_t num_shards) {
  RoutingTable table;
  table.version = 1;
  table.num_shards = num_shards;
  table.owner.resize(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    table.owner[p] = static_cast<uint32_t>(p % num_shards);
  }
  return table;
}

std::vector<size_t> RoutingTable::PartitionCounts() const {
  std::vector<size_t> counts(num_shards, 0);
  for (uint32_t shard : owner) {
    if (shard < counts.size()) ++counts[shard];
  }
  return counts;
}

Result<RoutingTable> PlanReshard(const RoutingTable& current,
                                 size_t new_num_shards) {
  const size_t num_partitions = current.owner.size();
  if (new_num_shards == 0) {
    return Status::InvalidArgument("cannot reshard to zero shards");
  }
  if (new_num_shards > num_partitions) {
    return Status::InvalidArgument(
        "cannot reshard to " + std::to_string(new_num_shards) +
        " shards: only " + std::to_string(num_partitions) +
        " partitions exist");
  }
  // Balanced loads: every shard ends within one partition of P/M; ties
  // give the extra partition to the lowest shard ids.
  std::vector<size_t> capacity(new_num_shards, num_partitions / new_num_shards);
  for (size_t s = 0; s < num_partitions % new_num_shards; ++s) ++capacity[s];

  RoutingTable plan = current;
  plan.num_shards = new_num_shards;
  // Pass 1: keep every partition whose owner survives and still has
  // capacity — these never move. Pass 2: pour the rest (retired-shard
  // partitions + overflow) into the remaining capacity in shard order.
  std::vector<size_t> kept(new_num_shards, 0);
  std::vector<size_t> moving;
  for (size_t p = 0; p < num_partitions; ++p) {
    const uint32_t owner = current.owner[p];
    if (owner < new_num_shards && kept[owner] < capacity[owner]) {
      ++kept[owner];
    } else {
      moving.push_back(p);
    }
  }
  size_t next_shard = 0;
  for (size_t p : moving) {
    while (kept[next_shard] >= capacity[next_shard]) ++next_shard;
    plan.owner[p] = static_cast<uint32_t>(next_shard);
    ++kept[next_shard];
  }
  return plan;
}

Status WriteRoutingTable(FileSystem* fs, const std::string& dir,
                         const RoutingTable& table) {
  std::string content = std::string(kRoutingHeader) + "\n";
  content += "version " + std::to_string(table.version) + "\n";
  content += "shards " + std::to_string(table.num_shards) + "\n";
  content += "owner";
  for (uint32_t shard : table.owner) {
    content += ' ';
    content += std::to_string(shard);
  }
  content += '\n';
  QP_RETURN_IF_ERROR(
      WriteFileAtomic(fs, JoinPath(dir, kRoutingFileName), content));
  return fs->SyncDir(dir);
}

Result<RoutingTable> ReadRoutingTable(FileSystem* fs, const std::string& dir) {
  QP_ASSIGN_OR_RETURN(std::string content,
                      fs->ReadFile(JoinPath(dir, kRoutingFileName)));
  auto corrupt = [&](const std::string& what) {
    return Status::ParseError("corrupt routing table in " + dir + ": " + what);
  };
  std::vector<std::string> lines = Split(content, '\n');
  if (lines.empty() || lines[0] != kRoutingHeader) return corrupt("bad header");
  RoutingTable table;
  bool saw_version = false, saw_shards = false, saw_owner = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = StripWhitespace(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ' ');
    if (fields[0] == "version" && fields.size() == 2) {
      if (!ParseUint64(fields[1], &table.version)) {
        return corrupt("bad version");
      }
      saw_version = true;
    } else if (fields[0] == "shards" && fields.size() == 2) {
      if (!ParseUint64(fields[1], &table.num_shards)) {
        return corrupt("bad shard count");
      }
      saw_shards = true;
    } else if (fields[0] == "owner" && fields.size() >= 2) {
      table.owner.reserve(fields.size() - 1);
      for (size_t f = 1; f < fields.size(); ++f) {
        uint32_t shard = 0;
        if (!ParseUint32(fields[f], &shard)) return corrupt("bad owner");
        table.owner.push_back(shard);
      }
      saw_owner = true;
    } else {
      return corrupt("unknown line: " + std::string(line));
    }
  }
  if (!saw_version || !saw_shards || !saw_owner) {
    return corrupt("missing version, shards or owner line");
  }
  if (table.version == 0 || table.num_shards == 0) {
    return corrupt("zero version or shard count");
  }
  for (uint32_t shard : table.owner) {
    if (shard >= table.num_shards) return corrupt("owner out of range");
  }
  return table;
}

Status WriteMigrationJournal(
    FileSystem* fs, const std::string& dir,
    const std::vector<MigrationJournalEntry>& entries) {
  const std::string path = JoinPath(dir, kMigrationFileName);
  if (entries.empty()) {
    if (fs->Exists(path)) QP_RETURN_IF_ERROR(fs->RemoveFile(path));
    return fs->SyncDir(dir);
  }
  std::string content = std::string(kMigrationHeader) + "\n";
  for (const MigrationJournalEntry& entry : entries) {
    content += "migrate " + std::to_string(entry.partition) + " " +
               std::to_string(entry.source) + " " +
               std::to_string(entry.target) + "\n";
  }
  QP_RETURN_IF_ERROR(WriteFileAtomic(fs, path, content));
  return fs->SyncDir(dir);
}

Result<std::vector<MigrationJournalEntry>> ReadMigrationJournal(
    FileSystem* fs, const std::string& dir) {
  const std::string path = JoinPath(dir, kMigrationFileName);
  if (!fs->Exists(path)) return std::vector<MigrationJournalEntry>{};
  QP_ASSIGN_OR_RETURN(std::string content, fs->ReadFile(path));
  auto corrupt = [&](const std::string& what) {
    return Status::ParseError("corrupt migration journal in " + dir + ": " +
                              what);
  };
  std::vector<std::string> lines = Split(content, '\n');
  if (lines.empty() || lines[0] != kMigrationHeader) {
    return corrupt("bad header");
  }
  std::vector<MigrationJournalEntry> entries;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = StripWhitespace(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ' ');
    MigrationJournalEntry entry;
    if (fields.size() != 4 || fields[0] != "migrate" ||
        !ParseUint32(fields[1], &entry.partition) ||
        !ParseUint32(fields[2], &entry.source) ||
        !ParseUint32(fields[3], &entry.target)) {
      return corrupt("bad entry: " + std::string(line));
    }
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace shard
}  // namespace qp
