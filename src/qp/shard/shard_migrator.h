#ifndef QP_SHARD_SHARD_MIGRATOR_H_
#define QP_SHARD_SHARD_MIGRATOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "qp/obs/metrics.h"
#include "qp/obs/trace.h"
#include "qp/shard/routing_table.h"
#include "qp/util/clock.h"
#include "qp/util/status.h"

namespace qp {
namespace shard {

class ShardedPersonalizationService;

/// Retry/backoff tuning for every migration step. Steps are the unit of
/// failure: a faulted copy batch, tail read, journal write or cutover
/// commit is retried with exponential backoff up to `max_attempts`;
/// exhaustion aborts the partition's migration cleanly (the source
/// keeps serving, routing is untouched).
struct MigrationOptions {
  int max_attempts = 5;
  std::chrono::milliseconds backoff{1};
  std::chrono::milliseconds backoff_max{100};
  /// How long the dual-write window stays open between tail drain and
  /// cutover commit. Zero cuts over immediately; chaos tests widen it
  /// to race mutators through the mirrored-write path.
  std::chrono::milliseconds dual_write_hold{0};
  /// How many times a migration restarts its copy phase after the
  /// source's WAL rotated past the tail watermark (checkpoint during
  /// migration) before giving up.
  int max_copy_restarts = 3;
  /// Time source for backoff sleeps; nullptr = Clock::Real().
  Clock* clock = nullptr;
};

/// Migration accounting, surfaced through ShardedStats and \migrations.
struct MigrationStats {
  uint64_t partitions_migrated = 0;  // Cutovers committed.
  uint64_t partitions_aborted = 0;   // Migrations rolled back cleanly.
  uint64_t users_copied = 0;         // Profiles moved in copy/repair.
  uint64_t tail_records = 0;         // WAL records replayed onto targets.
  uint64_t dual_writes = 0;          // Mutations mirrored in the window.
  uint64_t retries = 0;              // Step retries across all phases.
  uint64_t copy_restarts = 0;        // Copy phases restarted (WAL rotated).
  uint64_t active = 0;               // Partitions migrating right now.
  bool resharding = false;           // A Reshard() call is in flight.
};

/// Drives the per-partition live-migration state machine:
///
///   copy      snapshot the partition's users source -> target, with a
///             WAL watermark taken first ("migrate.copy" fault site);
///   tail      replay the source's WAL records past the watermark onto
///             the target until caught up ("migrate.tail");
///   drain     briefly block the partition's mutators and apply the
///             final tail — target now equals source exactly;
///   dual      reopen mutations: each is applied to the source (the
///             ack) and mirrored to the target; a failed mirror marks
///             the user dirty for re-copy at cutover;
///   cutover   re-copy dirty users, persist the routing table with the
///             partition's owner flipped and the version bumped — the
///             atomic commit point ("migrate.cutover") — and install
///             it;
///   cleanup   delete the partition's users from the source and drop
///             their cached selections.
///
/// The intent is journaled to <dir>/MIGRATION before anything moves
/// ("migrate.journal"), so a crash at any point resolves on reopen:
/// routing says the target owns the partition -> finish cleanup;
/// otherwise -> drop the partial copy. Every step retries with
/// exponential backoff; exhaustion aborts the partition cleanly — the
/// source shard keeps serving reads and acknowledged writes throughout,
/// so degradation is bounded latency (the drain/cutover barriers),
/// never unavailability.
///
/// Owned by (and operating on) one ShardedPersonalizationService; all
/// methods are called with the service alive. Thread-safe: concurrent
/// MigratePartition calls on distinct partitions are fine, and Reshard
/// serializes itself on the service's reshard mutex.
class ShardMigrator {
 public:
  ShardMigrator(ShardedPersonalizationService* cluster,
                MigrationOptions options, obs::MetricsRegistry* metrics);

  /// Migrates every partition whose owner differs between the current
  /// routing table and `plan`, in partition order. Partitions that
  /// abort are skipped (the rest still migrate); the first failure is
  /// returned, naming its partition. Ok = the cluster now routes by
  /// `plan`'s ownership. `parent` links every per-partition migration
  /// trace to the owning operation (the Reshard op trace); an invalid
  /// context leaves each migration a standalone trace.
  Status MigrateTo(const RoutingTable& plan,
                   const obs::TraceContext& parent = obs::TraceContext{});

  /// One partition end to end; no-op when `target` already owns it.
  Status MigratePartition(uint32_t partition, uint32_t target,
                          const obs::TraceContext& parent =
                              obs::TraceContext{});

  MigrationStats stats() const;

  /// The most recent partition migration's per-step trace (copy, tail,
  /// drain, cutover, cleanup spans with their counters); nullptr before
  /// the first migration.
  std::shared_ptr<const obs::RequestTrace> last_trace() const;

  /// Mutation-path hook: counts a mirrored write (see dual phase).
  void CountDualWrite() { metric_dual_writes_->Add(1); }

 private:
  /// Runs `step` with retry + exponential backoff; `what` names the
  /// step in the exhaustion error.
  Status WithRetries(const char* what, const std::function<Status()>& step);

  /// Copies every partition user source -> target, watermark first.
  /// On success *watermark holds the WAL seqno the tail starts after.
  Status CopyPhase(uint32_t partition, uint32_t source, uint32_t target,
                   uint64_t* watermark, obs::RequestTrace* trace);

  /// One tail round: read records past *applied, replay the partition's
  /// onto the target ("migrate.apply" fault site per record), advance
  /// *applied past each applied record. *caught_up when nothing is new
  /// or the round reached the head seqno observed before the read (the
  /// shared WAL never drains while co-located partitions keep writing).
  Status TailRound(uint32_t partition, uint32_t source, uint32_t target,
                   uint64_t* applied, bool* caught_up);

  /// Copies one user's current source state onto the target (Remove
  /// when the source no longer has the user).
  Status CopyUser(const std::string& user_id, uint32_t source,
                  uint32_t target);

  /// Rolls a failed migration back: phase -> idle, partial copy dropped
  /// from the target, journal entry cleared (left for reopen resolution
  /// if the target is unreachable). Returns `cause`.
  Status Abort(uint32_t partition, uint32_t source, uint32_t target,
               Status cause);

  ShardedPersonalizationService* cluster_;
  MigrationOptions options_;
  Clock* clock_;

  mutable std::mutex last_trace_mutex_;
  std::shared_ptr<const obs::RequestTrace> last_trace_;

  obs::Counter* metric_migrated_ = nullptr;
  obs::Counter* metric_aborted_ = nullptr;
  obs::Counter* metric_users_copied_ = nullptr;
  obs::Counter* metric_tail_records_ = nullptr;
  obs::Counter* metric_dual_writes_ = nullptr;
  obs::Counter* metric_retries_ = nullptr;
  obs::Counter* metric_copy_restarts_ = nullptr;
  obs::Gauge* gauge_active_ = nullptr;
  obs::Gauge* gauge_resharding_ = nullptr;
  obs::Histogram* metric_partition_seconds_ = nullptr;

  friend class ShardedPersonalizationService;
};

}  // namespace shard
}  // namespace qp

#endif  // QP_SHARD_SHARD_MIGRATOR_H_
