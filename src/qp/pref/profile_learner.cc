#include "qp/pref/profile_learner.h"

#include <algorithm>
#include <vector>

namespace qp {

Status ProfileLearner::Observe(const SelectQuery& query) {
  QP_RETURN_IF_ERROR(query.Validate(*schema_));
  if (query.where() == nullptr) {
    ++num_observed_;
    return Status::Ok();
  }
  std::vector<AtomicCondition> atoms;
  query.where()->CollectAtoms(&atoms);
  for (const AtomicCondition& atom : atoms) {
    if (atom.is_selection()) {
      const TupleVariable* var = query.FindVariable(atom.var());
      AttributeRef attr{var->table, atom.column()};
      std::string key = attr.ToString() + "=" + atom.value().ToSqlLiteral();
      auto [it, inserted] = selections_.try_emplace(
          key, SelectionStat{attr, atom.value(), 0});
      ++it->second.count;
    } else {
      const TupleVariable* left = query.FindVariable(atom.left_var());
      const TupleVariable* right = query.FindVariable(atom.right_var());
      AttributeRef from{left->table, atom.left_column()};
      AttributeRef to{right->table, atom.right_column()};
      if (schema_->FindJoin(from, to) == nullptr) continue;
      // A join in a query is evidence for both traversal directions.
      for (int dir = 0; dir < 2; ++dir) {
        const AttributeRef& a = dir == 0 ? from : to;
        const AttributeRef& b = dir == 0 ? to : from;
        std::string key = a.ToString() + "=" + b.ToString();
        auto [it, inserted] =
            joins_.try_emplace(key, JoinStat{a, b, 0});
        ++it->second.count;
      }
    }
  }
  ++num_observed_;
  return Status::Ok();
}

namespace {

/// Linear frequency -> degree mapping; count == max_count hits hi.
double Scale(size_t count, size_t max_count, double lo, double hi) {
  if (max_count <= 1) return hi;
  double t = static_cast<double>(count - 1) /
             static_cast<double>(max_count - 1);
  return lo + (hi - lo) * t;
}

}  // namespace

Result<UserProfile> ProfileLearner::BuildProfile(
    const ProfileLearnerOptions& options) const {
  UserProfile profile;
  if (selections_.empty() && joins_.empty()) return profile;

  size_t max_join_count = 1;
  for (const auto& [key, stat] : joins_) {
    max_join_count = std::max(max_join_count, stat.count);
  }
  for (const auto& [key, stat] : joins_) {
    if (stat.count < options.min_occurrences) continue;
    QP_RETURN_IF_ERROR(profile.Add(AtomicPreference::Join(
        stat.from, stat.to,
        Scale(stat.count, max_join_count, options.join_min_doi,
              options.join_max_doi))));
  }

  // Rank selections by frequency (ties: key order) and keep the top ones.
  std::vector<const SelectionStat*> ranked;
  ranked.reserve(selections_.size());
  for (const auto& [key, stat] : selections_) {
    if (stat.count < options.min_occurrences) continue;
    ranked.push_back(&stat);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const SelectionStat* a, const SelectionStat* b) {
                     return a->count > b->count;
                   });
  if (ranked.size() > options.max_selections) {
    ranked.resize(options.max_selections);
  }
  size_t max_count = ranked.empty() ? 1 : ranked.front()->count;
  for (const SelectionStat* stat : ranked) {
    QP_RETURN_IF_ERROR(profile.Add(AtomicPreference::Selection(
        stat->attribute, stat->value,
        Scale(stat->count, max_count, options.selection_min_doi,
              options.selection_max_doi))));
  }
  QP_RETURN_IF_ERROR(profile.Validate(*schema_));
  return profile;
}

}  // namespace qp
