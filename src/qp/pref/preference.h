#ifndef QP_PREF_PREFERENCE_H_
#define QP_PREF_PREFERENCE_H_

#include <string>

#include "qp/relational/schema.h"
#include "qp/relational/value.h"

namespace qp {

/// A stored atomic user preference (paper Section 3.1): a degree of
/// interest attached to an atomic query element.
///
/// - Selection preference: interest in the condition `table.column = value`
///   (e.g. [ GENRE.genre='comedy', 0.9 ]). Selection degrees may be
///   *negative* (in [-1, 0)) to express dislike — the extension the paper
///   lists as ongoing work: [ GENRE.genre='horror', -0.8 ] means results
///   matching the condition should be penalized or vetoed.
/// - Join preference: interest in including the join `from = to` into a
///   query *whose qualification already contains the `from` relation`.
///   Direction matters: the same schema join may be stored twice with
///   different degrees (e.g. [ PLAY.mid=MOVIE.mid, 1 ] and
///   [ MOVIE.mid=PLAY.mid, 0.8 ]). Join degrees are structural and must
///   stay positive.
class AtomicPreference {
 public:
  enum class Kind { kSelection, kJoin, kNear };

  static AtomicPreference Selection(AttributeRef attr, Value value,
                                    double doi);
  static AtomicPreference Join(AttributeRef from, AttributeRef to,
                               double doi);
  /// Soft (proximity) selection preference on a numeric attribute — the
  /// "price near $20" style of the paper's related-work discussion and
  /// its Section 8 agenda. Satisfaction decays linearly from 1 at
  /// `target` to 0 at distance `width`; the effective degree of a result
  /// is doi * satisfaction.
  static AtomicPreference NearSelection(AttributeRef attr, Value target,
                                        double width, double doi);

  Kind kind() const { return kind_; }
  /// True for both exact and near selections (anything that terminates a
  /// preference path).
  bool is_selection() const { return kind_ != Kind::kJoin; }
  bool is_join() const { return kind_ == Kind::kJoin; }
  bool is_near() const { return kind_ == Kind::kNear; }
  /// Proximity half-width (require is_near()).
  double width() const { return width_; }

  /// The selection attribute, or the join's already-in-query side.
  const AttributeRef& attribute() const { return attribute_; }
  /// Join target side (requires is_join()).
  const AttributeRef& target() const { return target_; }
  /// Selection literal (requires is_selection()).
  const Value& value() const { return value_; }

  double doi() const { return doi_; }
  /// True for a dislike (negative degree selection preference).
  bool is_negative() const { return doi_ < 0.0; }

  /// The atomic condition without the degree: "GENRE.genre='comedy'" or
  /// "PLAY.mid=MOVIE.mid".
  std::string ConditionString() const;

  /// Profile-file rendering in the paper's format:
  /// "[ GENRE.genre='comedy', 0.9 ]".
  std::string ToString() const;

  /// Same grammar as ToString but with round-trip-exact numerics (doi,
  /// width, real literals): what UserProfile::Serialize persists, so a
  /// snapshot/parse cycle reproduces the preference bit for bit. For
  /// short degrees like 0.9 the two renderings are identical.
  std::string Serialize() const;

  /// True if both describe the same condition (degree ignored).
  bool SameCondition(const AtomicPreference& other) const;

 private:
  AtomicPreference() = default;

  Kind kind_ = Kind::kSelection;
  AttributeRef attribute_;
  AttributeRef target_;  // Joins only.
  Value value_;          // Selections and near selections.
  double width_ = 0.0;   // Near selections only.
  double doi_ = 0.0;
};

}  // namespace qp

#endif  // QP_PREF_PREFERENCE_H_
