#include "qp/pref/preference.h"

#include "qp/util/string_util.h"

namespace qp {

AtomicPreference AtomicPreference::Selection(AttributeRef attr, Value value,
                                             double doi) {
  AtomicPreference p;
  p.kind_ = Kind::kSelection;
  p.attribute_ = std::move(attr);
  p.value_ = std::move(value);
  p.doi_ = doi;
  return p;
}

AtomicPreference AtomicPreference::Join(AttributeRef from, AttributeRef to,
                                        double doi) {
  AtomicPreference p;
  p.kind_ = Kind::kJoin;
  p.attribute_ = std::move(from);
  p.target_ = std::move(to);
  p.doi_ = doi;
  return p;
}

AtomicPreference AtomicPreference::NearSelection(AttributeRef attr,
                                                 Value target, double width,
                                                 double doi) {
  AtomicPreference p;
  p.kind_ = Kind::kNear;
  p.attribute_ = std::move(attr);
  p.value_ = std::move(target);
  p.width_ = width;
  p.doi_ = doi;
  return p;
}

std::string AtomicPreference::ConditionString() const {
  switch (kind_) {
    case Kind::kSelection:
      return attribute_.ToString() + "=" + value_.ToSqlLiteral();
    case Kind::kNear:
      return "near(" + attribute_.ToString() + ", " +
             value_.ToSqlLiteral() + ", " + FormatDouble(width_) + ")";
    case Kind::kJoin:
      break;
  }
  return attribute_.ToString() + "=" + target_.ToString();
}

std::string AtomicPreference::ToString() const {
  return "[ " + ConditionString() + ", " + FormatDouble(doi_) + " ]";
}

namespace {

/// Literal rendering whose parse yields the identical Value: reals need
/// the round-trip formatter (ToSqlLiteral's 6 significant digits would
/// silently perturb a stored degree-of-interest or target).
std::string ExactLiteral(const Value& value) {
  if (value.type() == DataType::kDouble) {
    return FormatDoubleRoundTrip(value.as_double());
  }
  return value.ToSqlLiteral();
}

}  // namespace

std::string AtomicPreference::Serialize() const {
  std::string condition;
  switch (kind_) {
    case Kind::kSelection:
      condition = attribute_.ToString() + "=" + ExactLiteral(value_);
      break;
    case Kind::kNear:
      condition = "near(" + attribute_.ToString() + ", " +
                  ExactLiteral(value_) + ", " +
                  FormatDoubleRoundTrip(width_) + ")";
      break;
    case Kind::kJoin:
      condition = attribute_.ToString() + "=" + target_.ToString();
      break;
  }
  return "[ " + condition + ", " + FormatDoubleRoundTrip(doi_) + " ]";
}

bool AtomicPreference::SameCondition(const AtomicPreference& other) const {
  if (kind_ != other.kind_) return false;
  if (!(attribute_ == other.attribute_)) return false;
  if (is_join()) return target_ == other.target_;
  return value_ == other.value_ && width_ == other.width_;
}

}  // namespace qp
