#ifndef QP_PREF_PROFILE_LEARNER_H_
#define QP_PREF_PROFILE_LEARNER_H_

#include <cstddef>
#include <map>
#include <string>

#include "qp/pref/profile.h"
#include "qp/query/query.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

struct ProfileLearnerOptions {
  /// Degrees assigned to selection conditions: the most frequent condition
  /// gets max_doi, a condition seen once gets at least min_doi, linear in
  /// relative frequency in between.
  double selection_min_doi = 0.1;
  double selection_max_doi = 0.9;
  /// Degrees for join conditions (scaled the same way by join frequency).
  double join_min_doi = 0.5;
  double join_max_doi = 1.0;
  /// Keep only the most frequent selection conditions.
  size_t max_selections = 200;
  /// Conditions must appear at least this often to enter the profile.
  size_t min_occurrences = 1;
};

/// The Profile Creation module of the paper's architecture (Figure 1):
/// builds a user profile *implicitly* by monitoring the user's queries.
/// Every atomic selection condition the user writes is evidence of
/// interest in that condition; every join tells the system which
/// relationships matter to the user. Degrees of interest are estimated
/// from relative frequencies.
///
/// Usage: Observe() each query the user issues, then BuildProfile().
/// The learner is cumulative; profiles can be rebuilt at any time
/// ("preferences may evolve through time" — the personalization process
/// is unaffected by profile changes).
class ProfileLearner {
 public:
  /// `schema` is retained and must outlive the learner.
  explicit ProfileLearner(const Schema* schema) : schema_(schema) {}

  /// Records the atomic conditions of one issued query. Fails if the
  /// query does not validate against the schema; join atoms that do not
  /// correspond to declared schema joins are ignored (they cannot become
  /// join preferences).
  Status Observe(const SelectQuery& query);

  /// Number of queries observed so far.
  size_t num_observed() const { return num_observed_; }

  /// Estimates the profile from the observations. Join preferences are
  /// emitted for both directions of every observed join. Returns an empty
  /// profile when nothing was observed.
  Result<UserProfile> BuildProfile(
      const ProfileLearnerOptions& options = {}) const;

 private:
  /// Key: "TABLE.column=<literal>" for selections, "A.x=B.y" (directed)
  /// for joins. std::map keeps BuildProfile deterministic.
  struct SelectionStat {
    AttributeRef attribute;
    Value value;
    size_t count = 0;
  };
  struct JoinStat {
    AttributeRef from;
    AttributeRef to;
    size_t count = 0;
  };

  const Schema* schema_;
  std::map<std::string, SelectionStat> selections_;
  std::map<std::string, JoinStat> joins_;
  size_t num_observed_ = 0;
};

}  // namespace qp

#endif  // QP_PREF_PROFILE_LEARNER_H_
