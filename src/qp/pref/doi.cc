#include "qp/pref/doi.h"

#include <algorithm>

namespace qp {

bool IsValidDoi(double d) { return d >= 0.0 && d <= 1.0; }

bool IsValidSignedDoi(double d) { return d >= -1.0 && d <= 1.0; }

double NegativeCombinedDoi(const std::vector<double>& negative_degrees) {
  ConjunctiveAccumulator acc;
  for (double dn : negative_degrees) acc.Add(dn < 0 ? -dn : dn);
  return acc.Degree();
}

double SignedCombinedDoi(double positive_degree,
                         const std::vector<double>& negative_degrees) {
  return positive_degree - NegativeCombinedDoi(negative_degrees);
}

double TransitiveDoi(const std::vector<double>& degrees) {
  double product = 1.0;
  for (double d : degrees) product *= d;
  return product;
}

double ConjunctiveDoi(const std::vector<double>& degrees) {
  ConjunctiveAccumulator acc;
  for (double d : degrees) acc.Add(d);
  return acc.Degree();
}

double DisjunctiveDoi(const std::vector<double>& degrees) {
  DisjunctiveAccumulator acc;
  for (double d : degrees) acc.Add(d);
  return acc.Degree();
}

double TransitiveMinDoi(const std::vector<double>& degrees) {
  double min = 1.0;
  for (double d : degrees) min = std::min(min, d);
  return min;
}

double ConjunctiveMaxDoi(const std::vector<double>& degrees) {
  double max = 0.0;
  for (double d : degrees) max = std::max(max, d);
  return max;
}

}  // namespace qp
