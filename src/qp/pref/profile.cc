#include "qp/pref/profile.h"

#include <cstdlib>

#include "qp/pref/doi.h"
#include "qp/query/sql_lexer.h"
#include "qp/util/string_util.h"

namespace qp {

Status UserProfile::Add(AtomicPreference preference) {
  if (!IsValidSignedDoi(preference.doi())) {
    return Status::InvalidArgument("degree of interest out of [-1, 1]: " +
                                   std::to_string(preference.doi()));
  }
  if (preference.doi() == 0.0) {
    return Status::InvalidArgument(
        "zero-valued preferences are not stored: " + preference.ToString());
  }
  if (preference.is_join() && preference.doi() < 0.0) {
    return Status::InvalidArgument(
        "join preferences are structural and cannot be negative: " +
        preference.ToString());
  }
  for (const auto& existing : preferences_) {
    if (existing.SameCondition(preference)) {
      return Status::AlreadyExists("preference already stored: " +
                                   preference.ConditionString());
    }
  }
  preferences_.push_back(std::move(preference));
  return Status::Ok();
}

void UserProfile::AddOrUpdate(AtomicPreference preference) {
  for (auto& existing : preferences_) {
    if (existing.SameCondition(preference)) {
      existing = std::move(preference);
      return;
    }
  }
  preferences_.push_back(std::move(preference));
}

size_t UserProfile::NumSelections() const {
  size_t n = 0;
  for (const auto& p : preferences_) {
    if (p.is_selection()) ++n;
  }
  return n;
}

size_t UserProfile::NumJoins() const {
  return preferences_.size() - NumSelections();
}

const AtomicPreference* UserProfile::FindJoin(const AttributeRef& from,
                                              const AttributeRef& to) const {
  for (const auto& p : preferences_) {
    if (p.is_join() && p.attribute() == from && p.target() == to) return &p;
  }
  return nullptr;
}

const AtomicPreference* UserProfile::FindSelection(const AttributeRef& attr,
                                                   const Value& value) const {
  for (const auto& p : preferences_) {
    if (p.is_selection() && p.attribute() == attr && p.value() == value) {
      return &p;
    }
  }
  return nullptr;
}

Status UserProfile::Validate(const Schema& schema) const {
  for (const auto& p : preferences_) {
    if (p.is_near()) {
      QP_ASSIGN_OR_RETURN(DataType type, schema.AttributeType(p.attribute()));
      if (type != DataType::kInt64 && type != DataType::kDouble) {
        return Status::InvalidArgument(
            "near preference requires a numeric attribute: " + p.ToString());
      }
      if (p.value().type() != DataType::kInt64 &&
          p.value().type() != DataType::kDouble) {
        return Status::InvalidArgument(
            "near preference requires a numeric target: " + p.ToString());
      }
      if (!(p.width() > 0.0)) {
        return Status::InvalidArgument(
            "near preference requires a positive width: " + p.ToString());
      }
    } else if (p.is_selection()) {
      QP_ASSIGN_OR_RETURN(DataType type, schema.AttributeType(p.attribute()));
      if (!p.value().is_null() && p.value().type() != type) {
        return Status::InvalidArgument(
            "selection preference type mismatch: " + p.ToString() +
            " (column is " + DataTypeName(type) + ")");
      }
    } else {
      if (!schema.HasAttribute(p.attribute())) {
        return Status::NotFound("unknown attribute in preference: " +
                                p.attribute().ToString());
      }
      if (!schema.HasAttribute(p.target())) {
        return Status::NotFound("unknown attribute in preference: " +
                                p.target().ToString());
      }
      if (schema.FindJoin(p.attribute(), p.target()) == nullptr) {
        return Status::InvalidArgument(
            "join preference does not match any declared schema join: " +
            p.ToString());
      }
    }
  }
  return Status::Ok();
}

std::string UserProfile::Serialize() const {
  std::string out;
  for (const auto& p : preferences_) {
    out += p.Serialize();
    out += "\n";
  }
  return out;
}

namespace {

/// Parses one profile entry from `tokens` starting at *pos:
///   '[' T '.' c '=' (T '.' c | literal) ',' NUMBER ']'
Result<AtomicPreference> ParseEntry(const std::vector<Token>& tokens,
                                    size_t* pos) {
  auto error = [&](const std::string& msg) {
    return Status::ParseError("profile: " + msg + " (near offset " +
                              std::to_string(tokens[*pos].offset) + ")");
  };
  auto expect_symbol = [&](std::string_view s) -> Status {
    if (!tokens[*pos].IsSymbol(s)) {
      return error("expected '" + std::string(s) + "', got '" +
                   tokens[*pos].text + "'");
    }
    ++*pos;
    return Status::Ok();
  };
  auto expect_ident = [&]() -> Result<std::string> {
    if (tokens[*pos].kind != TokenKind::kIdent) {
      return error("expected identifier, got '" + tokens[*pos].text + "'");
    }
    return tokens[(*pos)++].text;
  };

  auto parse_signed_number = [&]() -> Result<Value> {
    double sign = 1.0;
    if (tokens[*pos].IsSymbol("-")) {
      sign = -1.0;
      ++*pos;
    }
    if (tokens[*pos].kind != TokenKind::kNumber) {
      return error("expected number, got '" + tokens[*pos].text + "'");
    }
    const std::string& text = tokens[(*pos)++].text;
    if (text.find('.') != std::string::npos) {
      return Value::Real(sign * std::strtod(text.c_str(), nullptr));
    }
    return Value::Int(static_cast<int64_t>(sign) *
                      std::strtoll(text.c_str(), nullptr, 10));
  };

  QP_RETURN_IF_ERROR(expect_symbol("["));
  // Soft preference entry: [ near(T.c, target, width), doi ].
  if (tokens[*pos].IsKeyword("near") && tokens[*pos + 1].IsSymbol("(")) {
    *pos += 2;
    QP_ASSIGN_OR_RETURN(std::string table, expect_ident());
    QP_RETURN_IF_ERROR(expect_symbol("."));
    QP_ASSIGN_OR_RETURN(std::string column, expect_ident());
    QP_RETURN_IF_ERROR(expect_symbol(","));
    QP_ASSIGN_OR_RETURN(Value target, parse_signed_number());
    QP_RETURN_IF_ERROR(expect_symbol(","));
    QP_ASSIGN_OR_RETURN(Value width_value, parse_signed_number());
    QP_RETURN_IF_ERROR(expect_symbol(")"));
    QP_RETURN_IF_ERROR(expect_symbol(","));
    QP_ASSIGN_OR_RETURN(Value doi_value, parse_signed_number());
    QP_RETURN_IF_ERROR(expect_symbol("]"));
    return AtomicPreference::NearSelection(
        {std::move(table), std::move(column)}, std::move(target),
        width_value.AsNumeric(), doi_value.AsNumeric());
  }

  QP_ASSIGN_OR_RETURN(std::string table, expect_ident());
  QP_RETURN_IF_ERROR(expect_symbol("."));
  QP_ASSIGN_OR_RETURN(std::string column, expect_ident());
  QP_RETURN_IF_ERROR(expect_symbol("="));

  AttributeRef left{std::move(table), std::move(column)};
  bool is_join = tokens[*pos].kind == TokenKind::kIdent;
  AttributeRef right;
  Value value;
  if (is_join) {
    QP_ASSIGN_OR_RETURN(right.table, expect_ident());
    QP_RETURN_IF_ERROR(expect_symbol("."));
    QP_ASSIGN_OR_RETURN(right.column, expect_ident());
  } else if (tokens[*pos].kind == TokenKind::kString) {
    value = Value::Str(tokens[(*pos)++].text);
  } else if (tokens[*pos].kind == TokenKind::kNumber) {
    const std::string& text = tokens[(*pos)++].text;
    value = text.find('.') != std::string::npos
                ? Value::Real(std::strtod(text.c_str(), nullptr))
                : Value::Int(std::strtoll(text.c_str(), nullptr, 10));
  } else {
    return error("expected attribute or literal after '='");
  }

  QP_RETURN_IF_ERROR(expect_symbol(","));
  double sign = 1.0;
  if (tokens[*pos].IsSymbol("-")) {
    sign = -1.0;
    ++*pos;
  }
  if (tokens[*pos].kind != TokenKind::kNumber) {
    return error("expected degree of interest, got '" + tokens[*pos].text +
                 "'");
  }
  double doi = sign * std::strtod(tokens[(*pos)++].text.c_str(), nullptr);
  QP_RETURN_IF_ERROR(expect_symbol("]"));

  if (is_join) {
    return AtomicPreference::Join(std::move(left), std::move(right), doi);
  }
  return AtomicPreference::Selection(std::move(left), std::move(value), doi);
}

}  // namespace

Result<UserProfile> UserProfile::Parse(std::string_view text) {
  // Strip comment lines before tokenizing.
  std::string filtered;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    filtered.append(stripped);
    filtered.push_back('\n');
  }
  QP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(filtered));

  UserProfile profile;
  size_t pos = 0;
  while (tokens[pos].kind != TokenKind::kEnd) {
    QP_ASSIGN_OR_RETURN(AtomicPreference pref, ParseEntry(tokens, &pos));
    QP_RETURN_IF_ERROR(profile.Add(std::move(pref)));
  }
  return profile;
}

}  // namespace qp
