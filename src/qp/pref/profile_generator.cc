#include "qp/pref/profile_generator.h"

#include <utility>

namespace qp {
namespace {

double UniformDoi(Rng* rng, double min, double max) {
  double d = min + (max - min) * rng->NextDouble();
  // Degrees of 0 are not storable; nudge into (0, 1].
  if (d <= 0.0) d = 1e-9;
  if (d > 1.0) d = 1.0;
  return d;
}

}  // namespace

ProfileGenerator::ProfileGenerator(const Schema* schema,
                                   std::vector<CandidatePool> pools)
    : schema_(schema), pools_(std::move(pools)) {}

namespace {

/// Builds one selection-type preference from a candidate, honouring the
/// near/negative generation options.
AtomicPreference MakeSelectionPreference(
    const CandidatePool& pool, const Value& value,
    const ProfileGeneratorOptions& options, double doi, Rng* rng) {
  bool numeric = value.type() == DataType::kInt64 ||
                 value.type() == DataType::kDouble;
  bool negative = rng->Bernoulli(options.negative_fraction);
  if (negative) doi = -doi;
  if (numeric && rng->Bernoulli(options.near_fraction)) {
    return AtomicPreference::NearSelection(pool.attribute, value,
                                           options.near_width, doi);
  }
  return AtomicPreference::Selection(pool.attribute, value, doi);
}

}  // namespace

size_t ProfileGenerator::NumCandidates() const {
  size_t n = 0;
  for (const auto& pool : pools_) n += pool.values.size();
  return n;
}

Result<UserProfile> ProfileGenerator::Generate(
    const ProfileGeneratorOptions& options, Rng* rng) const {
  if (options.num_selections > NumCandidates()) {
    return Status::InvalidArgument(
        "requested " + std::to_string(options.num_selections) +
        " selection preferences but only " + std::to_string(NumCandidates()) +
        " candidate conditions exist");
  }

  UserProfile profile;
  if (options.include_all_joins) {
    for (const SchemaJoin& join : schema_->joins()) {
      QP_RETURN_IF_ERROR(profile.Add(AtomicPreference::Join(
          join.left, join.right,
          UniformDoi(rng, options.join_min_doi, options.join_max_doi))));
      QP_RETURN_IF_ERROR(profile.Add(AtomicPreference::Join(
          join.right, join.left,
          UniformDoi(rng, options.join_min_doi, options.join_max_doi))));
    }
  }

  if (options.weighting == PoolWeighting::kUniformOverCandidates) {
    // Sample distinct (pool, value-index) pairs via a global index space
    // so every candidate condition is equally likely.
    std::vector<std::pair<size_t, size_t>> candidates;
    candidates.reserve(NumCandidates());
    for (size_t p = 0; p < pools_.size(); ++p) {
      for (size_t v = 0; v < pools_[p].values.size(); ++v) {
        candidates.emplace_back(p, v);
      }
    }
    // Partial Fisher-Yates: shuffle only the prefix we need.
    for (size_t i = 0; i < options.num_selections; ++i) {
      size_t j = i + static_cast<size_t>(rng->Below(candidates.size() - i));
      std::swap(candidates[i], candidates[j]);
      const CandidatePool& pool = pools_[candidates[i].first];
      QP_RETURN_IF_ERROR(profile.Add(MakeSelectionPreference(
          pool, pool.values[candidates[i].second], options,
          UniformDoi(rng, options.selection_min_doi,
                     options.selection_max_doi),
          rng)));
    }
    return profile;
  }

  // Uniform over pools: per-pool shuffled candidate order; draw from a
  // uniformly chosen non-exhausted pool each round.
  std::vector<std::vector<size_t>> order(pools_.size());
  for (size_t p = 0; p < pools_.size(); ++p) {
    order[p].resize(pools_[p].values.size());
    for (size_t v = 0; v < order[p].size(); ++v) order[p][v] = v;
    rng->Shuffle(&order[p]);
  }
  std::vector<size_t> next(pools_.size(), 0);
  for (size_t i = 0; i < options.num_selections; ++i) {
    std::vector<size_t> live;
    for (size_t p = 0; p < pools_.size(); ++p) {
      if (next[p] < order[p].size()) live.push_back(p);
    }
    // NumCandidates() was checked above, so some pool is always live.
    size_t p = live[rng->Below(live.size())];
    const CandidatePool& pool = pools_[p];
    QP_RETURN_IF_ERROR(profile.Add(MakeSelectionPreference(
        pool, pool.values[order[p][next[p]++]], options,
        UniformDoi(rng, options.selection_min_doi,
                   options.selection_max_doi),
        rng)));
  }
  QP_RETURN_IF_ERROR(profile.Validate(*schema_));
  return profile;
}

}  // namespace qp
