#ifndef QP_PREF_PROFILE_GENERATOR_H_
#define QP_PREF_PROFILE_GENERATOR_H_

#include <vector>

#include "qp/pref/profile.h"
#include "qp/relational/schema.h"
#include "qp/util/random.h"
#include "qp/util/status.h"

namespace qp {

/// Candidate values for selection preferences on one attribute,
/// e.g. GENRE.genre -> {'comedy', 'thriller', ...}. Pools are typically
/// harvested from a Database (see qp/data/workload.h).
struct CandidatePool {
  AttributeRef attribute;
  std::vector<Value> values;
};

/// How selection preferences are distributed over attributes.
enum class PoolWeighting {
  /// Each attribute pool is drawn from with equal probability until it
  /// runs out of fresh values (default — profiles spread evenly over the
  /// schema's value attributes, like the paper's examples, where genre
  /// preferences are as common as actor preferences).
  kUniformOverPools,
  /// Every candidate (attribute, value) pair is equally likely, so large
  /// pools (e.g. actor names) dominate.
  kUniformOverCandidates,
};

struct ProfileGeneratorOptions {
  /// Number of atomic selection preferences — the paper's "profile size".
  size_t num_selections = 50;
  PoolWeighting weighting = PoolWeighting::kUniformOverPools;
  /// Fraction of selections drawn from *numeric* pools that become soft
  /// (near) preferences instead of equality ones. 0 disables (default,
  /// matching the paper's hard-constraint experiments).
  double near_fraction = 0.0;
  /// Half-width assigned to generated near preferences.
  double near_width = 5.0;
  /// Fraction of selection preferences generated as dislikes (the degree
  /// is negated). 0 disables.
  double negative_fraction = 0.0;
  /// Selection degrees are drawn uniformly from (min, max].
  double selection_min_doi = 0.1;
  double selection_max_doi = 1.0;
  /// Join degrees are drawn uniformly from (min, max].
  double join_min_doi = 0.5;
  double join_max_doi = 1.0;
  /// If true, the profile stores a join preference for *both* directions
  /// of every declared schema join, so transitive preferences can reach
  /// any part of the schema (as in the paper's example profile).
  bool include_all_joins = true;
};

/// Generates synthetic user profiles, the stand-in for the paper's profile
/// generator ("synthetic profiles were automatically produced with the use
/// of a profile generator").
class ProfileGenerator {
 public:
  /// `schema` must outlive the generator. `pools` supply the candidate
  /// (attribute, value) pairs selection preferences are drawn from.
  ProfileGenerator(const Schema* schema, std::vector<CandidatePool> pools);

  /// Draws one profile. Fails if the pools cannot supply
  /// `options.num_selections` distinct conditions.
  Result<UserProfile> Generate(const ProfileGeneratorOptions& options,
                               Rng* rng) const;

  /// Total number of distinct candidate selection conditions.
  size_t NumCandidates() const;

 private:
  const Schema* schema_;
  std::vector<CandidatePool> pools_;
};

}  // namespace qp

#endif  // QP_PREF_PROFILE_GENERATOR_H_
