#ifndef QP_PREF_PROFILE_H_
#define QP_PREF_PROFILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "qp/pref/preference.h"
#include "qp/relational/schema.h"
#include "qp/util/status.h"

namespace qp {

/// A user profile: the set of atomic preferences stored for one user
/// (paper Figure 2). Zero-valued preferences are not stored.
class UserProfile {
 public:
  UserProfile() = default;

  /// Adds a preference. Fails if the degree is outside [0, 1], the degree
  /// is 0 (zero-valued preferences are not stored), or a preference with
  /// the same condition already exists.
  Status Add(AtomicPreference preference);

  /// Adds or replaces the preference with the same condition.
  void AddOrUpdate(AtomicPreference preference);

  const std::vector<AtomicPreference>& preferences() const {
    return preferences_;
  }

  /// Number of stored atomic selection preferences — the paper's notion of
  /// "profile size" in the Figure 6 experiment.
  size_t NumSelections() const;
  size_t NumJoins() const;
  size_t size() const { return preferences_.size(); }
  bool empty() const { return preferences_.empty(); }

  /// The stored join preference from `from` to `to`, or nullptr. Direction
  /// matters: Find(PLAY.mid -> MOVIE.mid) and the reverse are distinct.
  const AtomicPreference* FindJoin(const AttributeRef& from,
                                   const AttributeRef& to) const;

  /// The stored selection preference on `attr` = `value`, or nullptr.
  const AtomicPreference* FindSelection(const AttributeRef& attr,
                                        const Value& value) const;

  /// Checks every preference against `schema`: attributes must exist,
  /// selection literal types must match the column type, and every join
  /// preference must correspond to a declared schema join.
  Status Validate(const Schema& schema) const;

  /// Renders the profile in the paper's text format, one entry per line:
  ///   [ PLAY.mid=MOVIE.mid, 1 ]
  ///   [ GENRE.genre='comedy', 0.9 ]
  std::string Serialize() const;

  /// Parses the format produced by Serialize. Lines that are empty or
  /// start with '#' are ignored. Join vs selection is inferred from the
  /// right-hand side (attribute reference vs literal).
  static Result<UserProfile> Parse(std::string_view text);

 private:
  std::vector<AtomicPreference> preferences_;
};

}  // namespace qp

#endif  // QP_PREF_PROFILE_H_
