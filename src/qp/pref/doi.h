#ifndef QP_PREF_DOI_H_
#define QP_PREF_DOI_H_

#include <cstddef>
#include <vector>

namespace qp {

/// Degree-of-interest algebra (paper Section 3). A degree of interest is a
/// real in [0, 1]: 0 = no interest, 1 = must-have. The three combination
/// functions below are the paper's choices; each satisfies the axiom stated
/// next to it (tested as properties in doi_test.cc).

/// True iff `d` is a valid degree of interest.
bool IsValidDoi(double d);

/// True iff `d` is a valid *signed* degree of interest in [-1, 1].
/// Negative degrees express dislike (the generalized preference model the
/// paper lists as ongoing work): -1 is "must not have", values in (-1, 0)
/// are soft dislikes. 0 remains "no interest" and is never stored.
bool IsValidSignedDoi(double d);

/// Combined magnitude of a set of satisfied dislikes: the conjunctive
/// (noisy-or) combination of their absolute degrees, 1 - prod(1 - |dn|).
double NegativeCombinedDoi(const std::vector<double>& negative_degrees);

/// Signed degree of interest of a result row under the generalized model:
/// the positive combined degree minus the combined dislike magnitude,
/// in [-1, 1]. With no satisfied dislikes this is exactly the paper's
/// DEGREE_OF_CONJUNCTION; a veto-strength dislike (|dn| = 1) pins the
/// score at positive_degree - 1 <= 0.
double SignedCombinedDoi(double positive_degree,
                         const std::vector<double>& negative_degrees);

/// Degree of interest in a transitive preference composed of atomic
/// preferences with degrees `degrees`: the product d1*d2*...*dN.
/// Axiom: TransitiveDoi(D) <= min(D). Empty input yields 1 (the identity).
double TransitiveDoi(const std::vector<double>& degrees);

/// Degree of interest in the conjunction of preferences:
/// 1 - (1-d1)(1-d2)...(1-dN) ("noisy-or"). Axiom: result >= max(D).
/// Empty input yields 0.
double ConjunctiveDoi(const std::vector<double>& degrees);

/// Degree of interest in the disjunction of preferences: the average
/// (d1+...+dN)/N. Axiom: min(D) <= result <= max(D). Empty input yields 0.
double DisjunctiveDoi(const std::vector<double>& degrees);

/// Incremental accumulators for the combination functions, used by the
/// selection algorithm's interest criteria and by the executor's
/// DEGREE_OF_CONJUNCTION aggregate, where degrees arrive one at a time.
class ConjunctiveAccumulator {
 public:
  /// Adds one degree to the conjunction.
  void Add(double degree) { complement_ *= (1.0 - degree); }
  /// Degree of the conjunction so far (0 when empty).
  double Degree() const { return 1.0 - complement_; }

 private:
  double complement_ = 1.0;
};

class DisjunctiveAccumulator {
 public:
  void Add(double degree) {
    sum_ += degree;
    ++count_;
  }
  /// Degree of the disjunction so far (0 when empty).
  double Degree() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  size_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  size_t count_ = 0;
};

/// Alternative combination functions used only by the ablation benchmark
/// (bench/micro_doi), to contrast the paper's choices with the other
/// natural candidates that satisfy the same axioms.
double TransitiveMinDoi(const std::vector<double>& degrees);
double ConjunctiveMaxDoi(const std::vector<double>& degrees);

}  // namespace qp

#endif  // QP_PREF_DOI_H_
