file(REMOVE_RECURSE
  "../bench/micro_doi"
  "../bench/micro_doi.pdb"
  "CMakeFiles/micro_doi.dir/micro_doi.cc.o"
  "CMakeFiles/micro_doi.dir/micro_doi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_doi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
