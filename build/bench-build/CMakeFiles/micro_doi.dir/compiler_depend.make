# Empty compiler generated dependencies file for micro_doi.
# This may be replaced when dependencies are built.
