# Empty dependencies file for qp_bench_util.
# This may be replaced when dependencies are built.
