file(REMOVE_RECURSE
  "../lib/libqp_bench_util.a"
  "../lib/libqp_bench_util.pdb"
  "CMakeFiles/qp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/qp_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
