file(REMOVE_RECURSE
  "../lib/libqp_bench_util.a"
)
