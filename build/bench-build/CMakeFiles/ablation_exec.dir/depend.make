# Empty dependencies file for ablation_exec.
# This may be replaced when dependencies are built.
