file(REMOVE_RECURSE
  "../bench/ablation_exec"
  "../bench/ablation_exec.pdb"
  "CMakeFiles/ablation_exec.dir/ablation_exec.cc.o"
  "CMakeFiles/ablation_exec.dir/ablation_exec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
