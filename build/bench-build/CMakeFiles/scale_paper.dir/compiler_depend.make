# Empty compiler generated dependencies file for scale_paper.
# This may be replaced when dependencies are built.
