file(REMOVE_RECURSE
  "../bench/scale_paper"
  "../bench/scale_paper.pdb"
  "CMakeFiles/scale_paper.dir/scale_paper.cc.o"
  "CMakeFiles/scale_paper.dir/scale_paper.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
