file(REMOVE_RECURSE
  "../bench/ablation_mq_core"
  "../bench/ablation_mq_core.pdb"
  "CMakeFiles/ablation_mq_core.dir/ablation_mq_core.cc.o"
  "CMakeFiles/ablation_mq_core.dir/ablation_mq_core.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
