# Empty compiler generated dependencies file for ablation_mq_core.
# This may be replaced when dependencies are built.
