file(REMOVE_RECURSE
  "../bench/fig6_selection_time"
  "../bench/fig6_selection_time.pdb"
  "CMakeFiles/fig6_selection_time.dir/fig6_selection_time.cc.o"
  "CMakeFiles/fig6_selection_time.dir/fig6_selection_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_selection_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
