# Empty dependencies file for fig6_selection_time.
# This may be replaced when dependencies are built.
