file(REMOVE_RECURSE
  "../bench/fig9_sq_mq_vs_l"
  "../bench/fig9_sq_mq_vs_l.pdb"
  "CMakeFiles/fig9_sq_mq_vs_l.dir/fig9_sq_mq_vs_l.cc.o"
  "CMakeFiles/fig9_sq_mq_vs_l.dir/fig9_sq_mq_vs_l.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sq_mq_vs_l.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
