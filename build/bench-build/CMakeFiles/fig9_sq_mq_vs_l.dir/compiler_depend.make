# Empty compiler generated dependencies file for fig9_sq_mq_vs_l.
# This may be replaced when dependencies are built.
