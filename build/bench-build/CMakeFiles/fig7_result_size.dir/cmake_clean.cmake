file(REMOVE_RECURSE
  "../bench/fig7_result_size"
  "../bench/fig7_result_size.pdb"
  "CMakeFiles/fig7_result_size.dir/fig7_result_size.cc.o"
  "CMakeFiles/fig7_result_size.dir/fig7_result_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_result_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
