file(REMOVE_RECURSE
  "../bench/fig10_performance"
  "../bench/fig10_performance.pdb"
  "CMakeFiles/fig10_performance.dir/fig10_performance.cc.o"
  "CMakeFiles/fig10_performance.dir/fig10_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
