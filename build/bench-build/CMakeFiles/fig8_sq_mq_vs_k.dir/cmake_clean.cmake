file(REMOVE_RECURSE
  "../bench/fig8_sq_mq_vs_k"
  "../bench/fig8_sq_mq_vs_k.pdb"
  "CMakeFiles/fig8_sq_mq_vs_k.dir/fig8_sq_mq_vs_k.cc.o"
  "CMakeFiles/fig8_sq_mq_vs_k.dir/fig8_sq_mq_vs_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sq_mq_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
