# Empty dependencies file for fig8_sq_mq_vs_k.
# This may be replaced when dependencies are built.
