# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_sq_mq_vs_k.
