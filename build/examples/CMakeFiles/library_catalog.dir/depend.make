# Empty dependencies file for library_catalog.
# This may be replaced when dependencies are built.
