# Empty dependencies file for qpshell.
# This may be replaced when dependencies are built.
