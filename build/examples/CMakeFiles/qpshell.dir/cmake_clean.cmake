file(REMOVE_RECURSE
  "CMakeFiles/qpshell.dir/qpshell.cpp.o"
  "CMakeFiles/qpshell.dir/qpshell.cpp.o.d"
  "qpshell"
  "qpshell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpshell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
