file(REMOVE_RECURSE
  "CMakeFiles/sql_writer_test.dir/query/sql_writer_test.cc.o"
  "CMakeFiles/sql_writer_test.dir/query/sql_writer_test.cc.o.d"
  "sql_writer_test"
  "sql_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
