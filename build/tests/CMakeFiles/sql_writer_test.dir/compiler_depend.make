# Empty compiler generated dependencies file for sql_writer_test.
# This may be replaced when dependencies are built.
