# Empty compiler generated dependencies file for personalizer_test.
# This may be replaced when dependencies are built.
