file(REMOVE_RECURSE
  "CMakeFiles/personalizer_test.dir/core/personalizer_test.cc.o"
  "CMakeFiles/personalizer_test.dir/core/personalizer_test.cc.o.d"
  "personalizer_test"
  "personalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
