# Empty dependencies file for movie_db_test.
# This may be replaced when dependencies are built.
