file(REMOVE_RECURSE
  "CMakeFiles/movie_db_test.dir/data/movie_db_test.cc.o"
  "CMakeFiles/movie_db_test.dir/data/movie_db_test.cc.o.d"
  "movie_db_test"
  "movie_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
