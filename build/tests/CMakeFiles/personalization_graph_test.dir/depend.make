# Empty dependencies file for personalization_graph_test.
# This may be replaced when dependencies are built.
