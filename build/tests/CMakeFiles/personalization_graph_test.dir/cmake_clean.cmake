file(REMOVE_RECURSE
  "CMakeFiles/personalization_graph_test.dir/graph/personalization_graph_test.cc.o"
  "CMakeFiles/personalization_graph_test.dir/graph/personalization_graph_test.cc.o.d"
  "personalization_graph_test"
  "personalization_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalization_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
