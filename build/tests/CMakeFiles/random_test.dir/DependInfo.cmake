
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/random_test.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/random_test.dir/util/random_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/qp_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/core/CMakeFiles/qp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/data/CMakeFiles/qp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/exec/CMakeFiles/qp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/graph/CMakeFiles/qp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/pref/CMakeFiles/qp_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/query/CMakeFiles/qp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/relational/CMakeFiles/qp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
