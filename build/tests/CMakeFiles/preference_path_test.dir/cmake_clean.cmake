file(REMOVE_RECURSE
  "CMakeFiles/preference_path_test.dir/graph/preference_path_test.cc.o"
  "CMakeFiles/preference_path_test.dir/graph/preference_path_test.cc.o.d"
  "preference_path_test"
  "preference_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
