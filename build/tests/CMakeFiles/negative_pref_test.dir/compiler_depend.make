# Empty compiler generated dependencies file for negative_pref_test.
# This may be replaced when dependencies are built.
