file(REMOVE_RECURSE
  "CMakeFiles/negative_pref_test.dir/core/negative_pref_test.cc.o"
  "CMakeFiles/negative_pref_test.dir/core/negative_pref_test.cc.o.d"
  "negative_pref_test"
  "negative_pref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_pref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
