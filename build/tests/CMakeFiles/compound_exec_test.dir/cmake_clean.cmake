file(REMOVE_RECURSE
  "CMakeFiles/compound_exec_test.dir/exec/compound_exec_test.cc.o"
  "CMakeFiles/compound_exec_test.dir/exec/compound_exec_test.cc.o.d"
  "compound_exec_test"
  "compound_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compound_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
