# Empty compiler generated dependencies file for shared_core_test.
# This may be replaced when dependencies are built.
