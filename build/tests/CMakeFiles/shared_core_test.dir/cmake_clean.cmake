file(REMOVE_RECURSE
  "CMakeFiles/shared_core_test.dir/exec/shared_core_test.cc.o"
  "CMakeFiles/shared_core_test.dir/exec/shared_core_test.cc.o.d"
  "shared_core_test"
  "shared_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
