file(REMOVE_RECURSE
  "CMakeFiles/interest_criterion_test.dir/core/interest_criterion_test.cc.o"
  "CMakeFiles/interest_criterion_test.dir/core/interest_criterion_test.cc.o.d"
  "interest_criterion_test"
  "interest_criterion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_criterion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
