# Empty dependencies file for interest_criterion_test.
# This may be replaced when dependencies are built.
