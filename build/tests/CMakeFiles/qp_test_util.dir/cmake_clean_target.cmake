file(REMOVE_RECURSE
  "libqp_test_util.a"
)
