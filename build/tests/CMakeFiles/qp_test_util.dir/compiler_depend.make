# Empty compiler generated dependencies file for qp_test_util.
# This may be replaced when dependencies are built.
