file(REMOVE_RECURSE
  "CMakeFiles/qp_test_util.dir/common/test_util.cc.o"
  "CMakeFiles/qp_test_util.dir/common/test_util.cc.o.d"
  "libqp_test_util.a"
  "libqp_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
