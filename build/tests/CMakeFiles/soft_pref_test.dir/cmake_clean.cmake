file(REMOVE_RECURSE
  "CMakeFiles/soft_pref_test.dir/core/soft_pref_test.cc.o"
  "CMakeFiles/soft_pref_test.dir/core/soft_pref_test.cc.o.d"
  "soft_pref_test"
  "soft_pref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_pref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
