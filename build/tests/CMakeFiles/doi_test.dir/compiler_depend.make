# Empty compiler generated dependencies file for doi_test.
# This may be replaced when dependencies are built.
