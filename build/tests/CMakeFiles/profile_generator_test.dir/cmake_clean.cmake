file(REMOVE_RECURSE
  "CMakeFiles/profile_generator_test.dir/pref/profile_generator_test.cc.o"
  "CMakeFiles/profile_generator_test.dir/pref/profile_generator_test.cc.o.d"
  "profile_generator_test"
  "profile_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
