file(REMOVE_RECURSE
  "CMakeFiles/profile_learner_test.dir/pref/profile_learner_test.cc.o"
  "CMakeFiles/profile_learner_test.dir/pref/profile_learner_test.cc.o.d"
  "profile_learner_test"
  "profile_learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
