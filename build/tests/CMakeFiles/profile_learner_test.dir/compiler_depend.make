# Empty compiler generated dependencies file for profile_learner_test.
# This may be replaced when dependencies are built.
