# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("qp/util")
subdirs("qp/relational")
subdirs("qp/query")
subdirs("qp/pref")
subdirs("qp/graph")
subdirs("qp/exec")
subdirs("qp/core")
subdirs("qp/data")
