file(REMOVE_RECURSE
  "CMakeFiles/qp_exec.dir/executor.cc.o"
  "CMakeFiles/qp_exec.dir/executor.cc.o.d"
  "CMakeFiles/qp_exec.dir/result.cc.o"
  "CMakeFiles/qp_exec.dir/result.cc.o.d"
  "libqp_exec.a"
  "libqp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
