file(REMOVE_RECURSE
  "libqp_exec.a"
)
