# CMake generated Testfile for 
# Source directory: /root/repo/src/qp/pref
# Build directory: /root/repo/build/src/qp/pref
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
