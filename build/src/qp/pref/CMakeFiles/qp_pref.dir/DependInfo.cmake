
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/pref/doi.cc" "src/qp/pref/CMakeFiles/qp_pref.dir/doi.cc.o" "gcc" "src/qp/pref/CMakeFiles/qp_pref.dir/doi.cc.o.d"
  "/root/repo/src/qp/pref/preference.cc" "src/qp/pref/CMakeFiles/qp_pref.dir/preference.cc.o" "gcc" "src/qp/pref/CMakeFiles/qp_pref.dir/preference.cc.o.d"
  "/root/repo/src/qp/pref/profile.cc" "src/qp/pref/CMakeFiles/qp_pref.dir/profile.cc.o" "gcc" "src/qp/pref/CMakeFiles/qp_pref.dir/profile.cc.o.d"
  "/root/repo/src/qp/pref/profile_generator.cc" "src/qp/pref/CMakeFiles/qp_pref.dir/profile_generator.cc.o" "gcc" "src/qp/pref/CMakeFiles/qp_pref.dir/profile_generator.cc.o.d"
  "/root/repo/src/qp/pref/profile_learner.cc" "src/qp/pref/CMakeFiles/qp_pref.dir/profile_learner.cc.o" "gcc" "src/qp/pref/CMakeFiles/qp_pref.dir/profile_learner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/query/CMakeFiles/qp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/relational/CMakeFiles/qp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
