file(REMOVE_RECURSE
  "CMakeFiles/qp_pref.dir/doi.cc.o"
  "CMakeFiles/qp_pref.dir/doi.cc.o.d"
  "CMakeFiles/qp_pref.dir/preference.cc.o"
  "CMakeFiles/qp_pref.dir/preference.cc.o.d"
  "CMakeFiles/qp_pref.dir/profile.cc.o"
  "CMakeFiles/qp_pref.dir/profile.cc.o.d"
  "CMakeFiles/qp_pref.dir/profile_generator.cc.o"
  "CMakeFiles/qp_pref.dir/profile_generator.cc.o.d"
  "CMakeFiles/qp_pref.dir/profile_learner.cc.o"
  "CMakeFiles/qp_pref.dir/profile_learner.cc.o.d"
  "libqp_pref.a"
  "libqp_pref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_pref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
