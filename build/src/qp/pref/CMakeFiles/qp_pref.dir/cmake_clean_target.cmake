file(REMOVE_RECURSE
  "libqp_pref.a"
)
