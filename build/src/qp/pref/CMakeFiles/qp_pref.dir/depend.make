# Empty dependencies file for qp_pref.
# This may be replaced when dependencies are built.
