file(REMOVE_RECURSE
  "CMakeFiles/qp_query.dir/condition.cc.o"
  "CMakeFiles/qp_query.dir/condition.cc.o.d"
  "CMakeFiles/qp_query.dir/query.cc.o"
  "CMakeFiles/qp_query.dir/query.cc.o.d"
  "CMakeFiles/qp_query.dir/sql_lexer.cc.o"
  "CMakeFiles/qp_query.dir/sql_lexer.cc.o.d"
  "CMakeFiles/qp_query.dir/sql_parser.cc.o"
  "CMakeFiles/qp_query.dir/sql_parser.cc.o.d"
  "CMakeFiles/qp_query.dir/sql_writer.cc.o"
  "CMakeFiles/qp_query.dir/sql_writer.cc.o.d"
  "libqp_query.a"
  "libqp_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
