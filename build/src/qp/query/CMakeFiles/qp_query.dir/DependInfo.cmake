
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/query/condition.cc" "src/qp/query/CMakeFiles/qp_query.dir/condition.cc.o" "gcc" "src/qp/query/CMakeFiles/qp_query.dir/condition.cc.o.d"
  "/root/repo/src/qp/query/query.cc" "src/qp/query/CMakeFiles/qp_query.dir/query.cc.o" "gcc" "src/qp/query/CMakeFiles/qp_query.dir/query.cc.o.d"
  "/root/repo/src/qp/query/sql_lexer.cc" "src/qp/query/CMakeFiles/qp_query.dir/sql_lexer.cc.o" "gcc" "src/qp/query/CMakeFiles/qp_query.dir/sql_lexer.cc.o.d"
  "/root/repo/src/qp/query/sql_parser.cc" "src/qp/query/CMakeFiles/qp_query.dir/sql_parser.cc.o" "gcc" "src/qp/query/CMakeFiles/qp_query.dir/sql_parser.cc.o.d"
  "/root/repo/src/qp/query/sql_writer.cc" "src/qp/query/CMakeFiles/qp_query.dir/sql_writer.cc.o" "gcc" "src/qp/query/CMakeFiles/qp_query.dir/sql_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/relational/CMakeFiles/qp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
