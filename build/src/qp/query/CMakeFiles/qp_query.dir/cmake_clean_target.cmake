file(REMOVE_RECURSE
  "libqp_query.a"
)
