# Empty dependencies file for qp_query.
# This may be replaced when dependencies are built.
