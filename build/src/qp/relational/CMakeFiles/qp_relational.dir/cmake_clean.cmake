file(REMOVE_RECURSE
  "CMakeFiles/qp_relational.dir/csv.cc.o"
  "CMakeFiles/qp_relational.dir/csv.cc.o.d"
  "CMakeFiles/qp_relational.dir/database.cc.o"
  "CMakeFiles/qp_relational.dir/database.cc.o.d"
  "CMakeFiles/qp_relational.dir/schema.cc.o"
  "CMakeFiles/qp_relational.dir/schema.cc.o.d"
  "CMakeFiles/qp_relational.dir/table.cc.o"
  "CMakeFiles/qp_relational.dir/table.cc.o.d"
  "CMakeFiles/qp_relational.dir/value.cc.o"
  "CMakeFiles/qp_relational.dir/value.cc.o.d"
  "libqp_relational.a"
  "libqp_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
