
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/relational/csv.cc" "src/qp/relational/CMakeFiles/qp_relational.dir/csv.cc.o" "gcc" "src/qp/relational/CMakeFiles/qp_relational.dir/csv.cc.o.d"
  "/root/repo/src/qp/relational/database.cc" "src/qp/relational/CMakeFiles/qp_relational.dir/database.cc.o" "gcc" "src/qp/relational/CMakeFiles/qp_relational.dir/database.cc.o.d"
  "/root/repo/src/qp/relational/schema.cc" "src/qp/relational/CMakeFiles/qp_relational.dir/schema.cc.o" "gcc" "src/qp/relational/CMakeFiles/qp_relational.dir/schema.cc.o.d"
  "/root/repo/src/qp/relational/table.cc" "src/qp/relational/CMakeFiles/qp_relational.dir/table.cc.o" "gcc" "src/qp/relational/CMakeFiles/qp_relational.dir/table.cc.o.d"
  "/root/repo/src/qp/relational/value.cc" "src/qp/relational/CMakeFiles/qp_relational.dir/value.cc.o" "gcc" "src/qp/relational/CMakeFiles/qp_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
