# Empty compiler generated dependencies file for qp_relational.
# This may be replaced when dependencies are built.
