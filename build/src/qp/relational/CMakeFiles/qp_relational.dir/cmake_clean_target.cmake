file(REMOVE_RECURSE
  "libqp_relational.a"
)
