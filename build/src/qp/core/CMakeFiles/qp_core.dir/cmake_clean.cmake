file(REMOVE_RECURSE
  "CMakeFiles/qp_core.dir/conflict.cc.o"
  "CMakeFiles/qp_core.dir/conflict.cc.o.d"
  "CMakeFiles/qp_core.dir/context.cc.o"
  "CMakeFiles/qp_core.dir/context.cc.o.d"
  "CMakeFiles/qp_core.dir/integration.cc.o"
  "CMakeFiles/qp_core.dir/integration.cc.o.d"
  "CMakeFiles/qp_core.dir/interest_criterion.cc.o"
  "CMakeFiles/qp_core.dir/interest_criterion.cc.o.d"
  "CMakeFiles/qp_core.dir/personalizer.cc.o"
  "CMakeFiles/qp_core.dir/personalizer.cc.o.d"
  "CMakeFiles/qp_core.dir/query_graph.cc.o"
  "CMakeFiles/qp_core.dir/query_graph.cc.o.d"
  "CMakeFiles/qp_core.dir/selection.cc.o"
  "CMakeFiles/qp_core.dir/selection.cc.o.d"
  "CMakeFiles/qp_core.dir/semantics.cc.o"
  "CMakeFiles/qp_core.dir/semantics.cc.o.d"
  "libqp_core.a"
  "libqp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
