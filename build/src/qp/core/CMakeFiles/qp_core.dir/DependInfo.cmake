
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/core/conflict.cc" "src/qp/core/CMakeFiles/qp_core.dir/conflict.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/conflict.cc.o.d"
  "/root/repo/src/qp/core/context.cc" "src/qp/core/CMakeFiles/qp_core.dir/context.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/context.cc.o.d"
  "/root/repo/src/qp/core/integration.cc" "src/qp/core/CMakeFiles/qp_core.dir/integration.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/integration.cc.o.d"
  "/root/repo/src/qp/core/interest_criterion.cc" "src/qp/core/CMakeFiles/qp_core.dir/interest_criterion.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/interest_criterion.cc.o.d"
  "/root/repo/src/qp/core/personalizer.cc" "src/qp/core/CMakeFiles/qp_core.dir/personalizer.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/personalizer.cc.o.d"
  "/root/repo/src/qp/core/query_graph.cc" "src/qp/core/CMakeFiles/qp_core.dir/query_graph.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/query_graph.cc.o.d"
  "/root/repo/src/qp/core/selection.cc" "src/qp/core/CMakeFiles/qp_core.dir/selection.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/selection.cc.o.d"
  "/root/repo/src/qp/core/semantics.cc" "src/qp/core/CMakeFiles/qp_core.dir/semantics.cc.o" "gcc" "src/qp/core/CMakeFiles/qp_core.dir/semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/exec/CMakeFiles/qp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/graph/CMakeFiles/qp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/pref/CMakeFiles/qp_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/query/CMakeFiles/qp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/relational/CMakeFiles/qp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
