file(REMOVE_RECURSE
  "CMakeFiles/qp_util.dir/random.cc.o"
  "CMakeFiles/qp_util.dir/random.cc.o.d"
  "CMakeFiles/qp_util.dir/status.cc.o"
  "CMakeFiles/qp_util.dir/status.cc.o.d"
  "CMakeFiles/qp_util.dir/string_util.cc.o"
  "CMakeFiles/qp_util.dir/string_util.cc.o.d"
  "libqp_util.a"
  "libqp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
