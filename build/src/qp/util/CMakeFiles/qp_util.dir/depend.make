# Empty dependencies file for qp_util.
# This may be replaced when dependencies are built.
