file(REMOVE_RECURSE
  "libqp_util.a"
)
