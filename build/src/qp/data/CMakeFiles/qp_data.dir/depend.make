# Empty dependencies file for qp_data.
# This may be replaced when dependencies are built.
