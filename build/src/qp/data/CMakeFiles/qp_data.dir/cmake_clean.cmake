file(REMOVE_RECURSE
  "CMakeFiles/qp_data.dir/movie_db.cc.o"
  "CMakeFiles/qp_data.dir/movie_db.cc.o.d"
  "CMakeFiles/qp_data.dir/paper_example.cc.o"
  "CMakeFiles/qp_data.dir/paper_example.cc.o.d"
  "CMakeFiles/qp_data.dir/workload.cc.o"
  "CMakeFiles/qp_data.dir/workload.cc.o.d"
  "libqp_data.a"
  "libqp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
