file(REMOVE_RECURSE
  "libqp_data.a"
)
