
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/data/movie_db.cc" "src/qp/data/CMakeFiles/qp_data.dir/movie_db.cc.o" "gcc" "src/qp/data/CMakeFiles/qp_data.dir/movie_db.cc.o.d"
  "/root/repo/src/qp/data/paper_example.cc" "src/qp/data/CMakeFiles/qp_data.dir/paper_example.cc.o" "gcc" "src/qp/data/CMakeFiles/qp_data.dir/paper_example.cc.o.d"
  "/root/repo/src/qp/data/workload.cc" "src/qp/data/CMakeFiles/qp_data.dir/workload.cc.o" "gcc" "src/qp/data/CMakeFiles/qp_data.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/pref/CMakeFiles/qp_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/query/CMakeFiles/qp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/relational/CMakeFiles/qp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
