# Empty compiler generated dependencies file for qp_graph.
# This may be replaced when dependencies are built.
