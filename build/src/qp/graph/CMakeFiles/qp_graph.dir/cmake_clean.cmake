file(REMOVE_RECURSE
  "CMakeFiles/qp_graph.dir/personalization_graph.cc.o"
  "CMakeFiles/qp_graph.dir/personalization_graph.cc.o.d"
  "CMakeFiles/qp_graph.dir/preference_path.cc.o"
  "CMakeFiles/qp_graph.dir/preference_path.cc.o.d"
  "libqp_graph.a"
  "libqp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
