file(REMOVE_RECURSE
  "libqp_graph.a"
)
