
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/graph/personalization_graph.cc" "src/qp/graph/CMakeFiles/qp_graph.dir/personalization_graph.cc.o" "gcc" "src/qp/graph/CMakeFiles/qp_graph.dir/personalization_graph.cc.o.d"
  "/root/repo/src/qp/graph/preference_path.cc" "src/qp/graph/CMakeFiles/qp_graph.dir/preference_path.cc.o" "gcc" "src/qp/graph/CMakeFiles/qp_graph.dir/preference_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/pref/CMakeFiles/qp_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/relational/CMakeFiles/qp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/util/CMakeFiles/qp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/query/CMakeFiles/qp_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
