#include "qp/graph/personalization_graph.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

class PersonalizationGraphTest : public ::testing::Test {
 protected:
  void SetUp() override { schema_ = MovieSchema(); }
  Schema schema_;
};

TEST_F(PersonalizationGraphTest, BuildsFromJulieProfile) {
  UserProfile julie = JulieProfile();
  auto graph = PersonalizationGraph::Build(&schema_, julie);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_join_edges(), julie.NumJoins());
  EXPECT_EQ(graph->num_selection_edges(), julie.NumSelections());
}

TEST_F(PersonalizationGraphTest, AdjacencySortedByDegreeDesc) {
  auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
  ASSERT_TRUE(graph.ok());
  for (const TableSchema& table : schema_.tables()) {
    const auto& joins = graph->JoinsFrom(table.name());
    for (size_t i = 1; i < joins.size(); ++i) {
      EXPECT_GE(joins[i - 1].doi, joins[i].doi);
    }
    const auto& selections = graph->SelectionsOn(table.name());
    for (size_t i = 1; i < selections.size(); ++i) {
      EXPECT_GE(selections[i - 1].doi, selections[i].doi);
    }
  }
}

TEST_F(PersonalizationGraphTest, JoinEdgesCarrySchemaCardinality) {
  auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
  ASSERT_TRUE(graph.ok());
  // PLAY -> MOVIE follows the FK: to-one. MOVIE -> PLAY: to-many.
  bool found_forward = false;
  bool found_backward = false;
  for (const JoinEdge& edge : graph->JoinsFrom("PLAY")) {
    if (edge.to.table == "MOVIE") {
      EXPECT_EQ(edge.cardinality, JoinCardinality::kToOne);
      found_forward = true;
    }
  }
  for (const JoinEdge& edge : graph->JoinsFrom("MOVIE")) {
    if (edge.to.table == "PLAY") {
      EXPECT_EQ(edge.cardinality, JoinCardinality::kToMany);
      found_backward = true;
    }
  }
  EXPECT_TRUE(found_forward);
  EXPECT_TRUE(found_backward);
}

TEST_F(PersonalizationGraphTest, SelectionsGroupedByTable) {
  auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->SelectionsOn("GENRE").size(), 3u);   // comedy/thriller/
                                                        // adventure.
  EXPECT_EQ(graph->SelectionsOn("ACTOR").size(), 3u);
  EXPECT_EQ(graph->SelectionsOn("DIRECTOR").size(), 2u);
  EXPECT_EQ(graph->SelectionsOn("THEATRE").size(), 1u);
  EXPECT_TRUE(graph->SelectionsOn("PLAY").empty());
  EXPECT_TRUE(graph->SelectionsOn("NO_SUCH_TABLE").empty());
}

TEST_F(PersonalizationGraphTest, DirectionalDegreesPreserved) {
  auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
  ASSERT_TRUE(graph.ok());
  double play_to_movie = 0;
  double movie_to_play = 0;
  for (const JoinEdge& e : graph->JoinsFrom("PLAY")) {
    if (e.to.table == "MOVIE") play_to_movie = e.doi;
  }
  for (const JoinEdge& e : graph->JoinsFrom("MOVIE")) {
    if (e.to.table == "PLAY") movie_to_play = e.doi;
  }
  EXPECT_DOUBLE_EQ(play_to_movie, 1.0);   // Figure 2 row 3.
  EXPECT_DOUBLE_EQ(movie_to_play, 0.8);   // Figure 2 row 4.
}

TEST_F(PersonalizationGraphTest, RejectsInvalidProfile) {
  UserProfile bad;
  QP_ASSERT_OK(bad.Add(AtomicPreference::Join({"MOVIE", "mid"},
                                              {"ACTOR", "aid"}, 0.5)));
  EXPECT_FALSE(PersonalizationGraph::Build(&schema_, bad).ok());
}

TEST_F(PersonalizationGraphTest, EmptyProfileYieldsEmptyGraph) {
  UserProfile empty;
  auto graph = PersonalizationGraph::Build(&schema_, empty);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_join_edges(), 0u);
  EXPECT_EQ(graph->num_selection_edges(), 0u);
}

TEST_F(PersonalizationGraphTest, DebugStringListsEdges) {
  auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
  ASSERT_TRUE(graph.ok());
  std::string dump = graph->DebugString();
  EXPECT_NE(dump.find("GENRE.genre='comedy' (0.9)"), std::string::npos);
  EXPECT_NE(dump.find("PLAY.mid=MOVIE.mid (1, to-one)"), std::string::npos);
}

}  // namespace
}  // namespace qp
