#include "qp/graph/preference_path.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

class PreferencePathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
  }

  const JoinEdge& FindJoin(const std::string& from_table,
                           const std::string& to_table) {
    for (const JoinEdge& e : graph_->JoinsFrom(from_table)) {
      if (e.to.table == to_table) return e;
    }
    ADD_FAILURE() << "no join " << from_table << "->" << to_table;
    static JoinEdge dummy;
    return dummy;
  }

  const SelectionEdge& FindSelection(const std::string& table,
                                     const std::string& value) {
    for (const SelectionEdge& e : graph_->SelectionsOn(table)) {
      if (e.value == Value::Str(value)) return e;
    }
    ADD_FAILURE() << "no selection " << table << "=" << value;
    static SelectionEdge dummy;
    return dummy;
  }

  Schema schema_;
  std::unique_ptr<PersonalizationGraph> graph_;
};

TEST_F(PreferencePathTest, EmptyPathProperties) {
  PreferencePath path("MV", "MOVIE");
  EXPECT_EQ(path.anchor_alias(), "MV");
  EXPECT_EQ(path.anchor_table(), "MOVIE");
  EXPECT_FALSE(path.is_selection());
  EXPECT_DOUBLE_EQ(path.doi(), 1.0);
  EXPECT_EQ(path.Length(), 0u);
  EXPECT_EQ(path.EndTable(), "MOVIE");
  EXPECT_TRUE(path.VisitsTable("MOVIE"));
  EXPECT_FALSE(path.VisitsTable("GENRE"));
  EXPECT_TRUE(path.AllJoinsToOne());  // Vacuously.
}

TEST_F(PreferencePathTest, KidmanTransitiveSelection) {
  // The Section 3.2 example: degree 0.8 * 1 * 0.9 = 0.72.
  PreferencePath path("MV", "MOVIE");
  path = path.ExtendedBy(FindJoin("MOVIE", "CAST"));
  EXPECT_EQ(path.EndTable(), "CAST");
  path = path.ExtendedBy(FindJoin("CAST", "ACTOR"));
  EXPECT_EQ(path.EndTable(), "ACTOR");
  path = path.ExtendedBy(FindSelection("ACTOR", "N. Kidman"));
  EXPECT_TRUE(path.is_selection());
  EXPECT_NEAR(path.doi(), 0.72, 1e-12);
  EXPECT_EQ(path.Length(), 3u);
  EXPECT_EQ(path.ConditionString(),
            "MOVIE.mid=CAST.mid and CAST.aid=ACTOR.aid and "
            "ACTOR.name='N. Kidman'");
}

TEST_F(PreferencePathTest, ToStringIncludesDegree) {
  PreferencePath path("MV", "MOVIE");
  path = path.ExtendedBy(FindJoin("MOVIE", "GENRE"));
  path = path.ExtendedBy(FindSelection("GENRE", "comedy"));
  EXPECT_EQ(path.ToString(),
            "MOVIE.mid=GENRE.mid and GENRE.genre='comedy' <0.81>");
}

TEST_F(PreferencePathTest, AllJoinsToOne) {
  // PLAY -> THEATRE is to-one.
  PreferencePath to_one("PL", "PLAY");
  to_one = to_one.ExtendedBy(FindJoin("PLAY", "THEATRE"));
  EXPECT_TRUE(to_one.AllJoinsToOne());
  // MOVIE -> GENRE is to-many.
  PreferencePath to_many("MV", "MOVIE");
  to_many = to_many.ExtendedBy(FindJoin("MOVIE", "GENRE"));
  EXPECT_FALSE(to_many.AllJoinsToOne());
}

TEST_F(PreferencePathTest, SameShape) {
  PreferencePath a("MV", "MOVIE");
  a = a.ExtendedBy(FindJoin("MOVIE", "GENRE"));
  a = a.ExtendedBy(FindSelection("GENRE", "comedy"));
  PreferencePath b("MV", "MOVIE");
  b = b.ExtendedBy(FindJoin("MOVIE", "GENRE"));
  PreferencePath b_sel = b.ExtendedBy(FindSelection("GENRE", "comedy"));
  PreferencePath c = b.ExtendedBy(FindSelection("GENRE", "thriller"));
  EXPECT_TRUE(a.SameShape(b_sel));
  EXPECT_FALSE(a.SameShape(b));       // Selection missing.
  EXPECT_FALSE(a.SameShape(c));       // Different value.
  PreferencePath other_anchor("MV2", "MOVIE");
  other_anchor = other_anchor.ExtendedBy(FindJoin("MOVIE", "GENRE"));
  other_anchor = other_anchor.ExtendedBy(FindSelection("GENRE", "comedy"));
  EXPECT_FALSE(a.SameShape(other_anchor));
}

TEST_F(PreferencePathTest, EnumerateFromMovieAnchor) {
  std::vector<PreferencePath> paths = EnumerateTransitiveSelections(
      *graph_, "MV", "MOVIE", {"MOVIE", "PLAY"});
  // Expected transitive selections reachable from MOVIE without entering
  // MOVIE or PLAY: 3 genres + 2 directors + 3 actors = 8.
  EXPECT_EQ(paths.size(), 8u);
  for (const PreferencePath& path : paths) {
    EXPECT_TRUE(path.is_selection());
    EXPECT_FALSE(path.VisitsTable("PLAY"));
  }
  // The Kidman path must be among them with degree 0.72.
  bool found = false;
  for (const PreferencePath& path : paths) {
    if (path.selection()->value == Value::Str("N. Kidman")) {
      EXPECT_NEAR(path.doi(), 0.72, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PreferencePathTest, EnumerateFromPlayAnchor) {
  std::vector<PreferencePath> paths = EnumerateTransitiveSelections(
      *graph_, "PL", "PLAY", {"MOVIE", "PLAY"});
  // Only PLAY -> THEATRE -> region='downtown' (1 * 0.7 = 0.7).
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].doi(), 0.7, 1e-12);
  EXPECT_EQ(paths[0].selection()->value, Value::Str("downtown"));
}

TEST_F(PreferencePathTest, EnumerateRespectsAcyclicity) {
  // Without forbidden tables, paths may wander further but never revisit
  // a relation.
  std::vector<PreferencePath> paths =
      EnumerateTransitiveSelections(*graph_, "GN", "GENRE", {});
  for (const PreferencePath& path : paths) {
    std::unordered_set<std::string> visited = {path.anchor_table()};
    for (const JoinEdge& join : path.joins()) {
      EXPECT_TRUE(visited.insert(join.to.table).second)
          << "cycle through " << join.to.table;
    }
  }
}

TEST_F(PreferencePathTest, EmptyGraphYieldsNoPaths) {
  UserProfile empty;
  auto graph = PersonalizationGraph::Build(&schema_, empty);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(
      EnumerateTransitiveSelections(*graph, "MV", "MOVIE", {}).empty());
}

}  // namespace
}  // namespace qp
