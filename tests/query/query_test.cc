#include "qp/query/query.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

TEST(SelectQueryTest, AddVariableRejectsDuplicates) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  EXPECT_EQ(q.AddVariable("MV", "PLAY").code(), StatusCode::kAlreadyExists);
}

TEST(SelectQueryTest, FindVariable) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  ASSERT_NE(q.FindVariable("MV"), nullptr);
  EXPECT_EQ(q.FindVariable("MV")->table, "MOVIE");
  EXPECT_EQ(q.FindVariable("ZZ"), nullptr);
}

TEST(SelectQueryTest, FreshAliasAvoidsCollisions) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("GN", "GENRE"));
  EXPECT_EQ(q.FreshAlias("GN"), "GN2");
  QP_EXPECT_OK(q.AddVariable("GN2", "GENRE"));
  EXPECT_EQ(q.FreshAlias("GN"), "GN3");
  EXPECT_EQ(q.FreshAlias("CA"), "CA");
}

TEST(SelectQueryTest, ValidateAcceptsTonightQuery) {
  QP_EXPECT_OK(TonightQuery().Validate(MovieSchema()));
}

TEST(SelectQueryTest, ValidateRejectsEmptyFrom) {
  SelectQuery q;
  q.AddProjection("MV", "title");
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ValidateRejectsNoProjection) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ValidateRejectsUnknownTable) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("XX", "NOPE"));
  q.AddProjection("XX", "title");
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ValidateRejectsUnknownColumn) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  q.AddProjection("MV", "nope");
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ValidateRejectsUndeclaredVarInWhere) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  q.AddProjection("MV", "title");
  q.set_where(ConditionNode::MakeAtom(
      AtomicCondition::Selection("ZZ", "genre", Value::Str("x"))));
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ValidateRejectsLiteralTypeMismatch) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  q.AddProjection("MV", "title");
  q.set_where(ConditionNode::MakeAtom(
      AtomicCondition::Selection("MV", "title", Value::Int(3))));
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ValidateRejectsJoinTypeMismatch) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  QP_EXPECT_OK(q.AddVariable("GN", "GENRE"));
  q.AddProjection("MV", "title");
  q.set_where(ConditionNode::MakeAtom(
      AtomicCondition::Join("MV", "mid", "GN", "genre")));
  EXPECT_EQ(q.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(SelectQueryTest, ProjectionOutputName) {
  ProjectionItem item{"MV", "title"};
  EXPECT_EQ(item.OutputName(), "MV.title");
}

TEST(CompoundQueryTest, ValidateRequiresParts) {
  CompoundQuery c;
  EXPECT_EQ(c.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(CompoundQueryTest, ValidateChecksArity) {
  CompoundQuery c;
  c.AddPart(TonightQuery(), 0.9);
  SelectQuery other = TonightQuery();
  other.AddProjection("MV", "year");
  c.AddPart(other, 0.8);
  EXPECT_EQ(c.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(CompoundQueryTest, ValidateChecksDegreeRange) {
  CompoundQuery c;
  c.AddPart(TonightQuery(), 1.5);
  EXPECT_EQ(c.Validate(MovieSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(CompoundQueryTest, UsesDegrees) {
  CompoundQuery c;
  c.AddPart(TonightQuery(), 0.9);
  EXPECT_FALSE(c.UsesDegrees());
  c.set_having(HavingClause::CountAtLeast(2));
  EXPECT_FALSE(c.UsesDegrees());
  c.set_order_by_degree(true);
  EXPECT_TRUE(c.UsesDegrees());
  c.set_order_by_degree(false);
  c.set_having(HavingClause::DegreeAbove(0.5));
  EXPECT_TRUE(c.UsesDegrees());
}

TEST(HavingClauseTest, Factories) {
  EXPECT_EQ(HavingClause::None().kind, HavingClause::Kind::kNone);
  HavingClause count = HavingClause::CountAtLeast(3);
  EXPECT_EQ(count.kind, HavingClause::Kind::kCountAtLeast);
  EXPECT_EQ(count.min_count, 3u);
  HavingClause degree = HavingClause::DegreeAbove(0.7);
  EXPECT_EQ(degree.kind, HavingClause::Kind::kDegreeAbove);
  EXPECT_DOUBLE_EQ(degree.min_degree, 0.7);
}

}  // namespace
}  // namespace qp
