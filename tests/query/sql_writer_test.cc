#include "qp/query/sql_writer.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

TEST(SqlWriterTest, TonightQuery) {
  EXPECT_EQ(ToSql(TonightQuery()),
            "select MV.title from MOVIE MV, PLAY PL "
            "where MV.mid=PL.mid and PL.date='2/7/2003'");
}

TEST(SqlWriterTest, DistinctFlag) {
  SelectQuery q = TonightQuery();
  q.set_distinct(true);
  EXPECT_TRUE(ToSql(q).starts_with("select distinct MV.title"));
}

TEST(SqlWriterTest, NoWhereClause) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  q.AddProjection("MV", "title");
  EXPECT_EQ(ToSql(q), "select MV.title from MOVIE MV");
}

TEST(SqlWriterTest, MultipleProjections) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("MV", "MOVIE"));
  q.AddProjection("MV", "title");
  q.AddProjection("MV", "year");
  EXPECT_EQ(ToSql(q), "select MV.title, MV.year from MOVIE MV");
}

TEST(SqlWriterTest, DisjunctionParenthesized) {
  SelectQuery q;
  QP_EXPECT_OK(q.AddVariable("GN", "GENRE"));
  q.AddProjection("GN", "mid");
  q.set_where(ConditionNode::MakeAnd(
      {ConditionNode::MakeAtom(
           AtomicCondition::Selection("GN", "genre", Value::Str("comedy"))),
       ConditionNode::MakeOr(
           {ConditionNode::MakeAtom(AtomicCondition::Selection(
                "GN", "genre", Value::Str("thriller"))),
            ConditionNode::MakeAtom(AtomicCondition::Selection(
                "GN", "genre", Value::Str("sci-fi")))})}));
  EXPECT_EQ(ToSql(q),
            "select GN.mid from GENRE GN where GN.genre='comedy' and "
            "(GN.genre='thriller' or GN.genre='sci-fi')");
}

TEST(SqlWriterTest, CompoundCountForm) {
  // The paper's MQ example shape: union all, group by, having count.
  CompoundQuery c;
  SelectQuery part1 = TonightQuery();
  part1.set_distinct(true);
  c.AddPart(part1, 0.81);
  SelectQuery part2 = TonightQuery();
  part2.set_distinct(true);
  c.AddPart(part2, 0.72);
  c.set_having(HavingClause::CountAtLeast(2));

  EXPECT_EQ(
      ToSql(c),
      "select MV.title from ((select distinct MV.title from MOVIE MV, "
      "PLAY PL where MV.mid=PL.mid and PL.date='2/7/2003') union all "
      "(select distinct MV.title from MOVIE MV, PLAY PL where "
      "MV.mid=PL.mid and PL.date='2/7/2003')) TEMP group by MV.title "
      "having count(*) >= 2");
}

TEST(SqlWriterTest, CompoundDegreeFormEmitsDoiColumns) {
  CompoundQuery c;
  SelectQuery part = TonightQuery();
  part.set_distinct(true);
  c.AddPart(part, 0.81);
  c.set_having(HavingClause::DegreeAbove(0.5));
  c.set_order_by_degree(true);

  std::string sql = ToSql(c);
  EXPECT_NE(sql.find("0.81 as doi"), std::string::npos) << sql;
  EXPECT_NE(sql.find("having degree_of_conjunction(doi) > 0.5"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("order by degree_of_conjunction(doi) desc"),
            std::string::npos)
      << sql;
}

TEST(SqlWriterTest, CompoundCountFormOmitsDoiColumns) {
  CompoundQuery c;
  SelectQuery part = TonightQuery();
  part.set_distinct(true);
  c.AddPart(part, 0.81);
  c.set_having(HavingClause::CountAtLeast(1));
  EXPECT_EQ(ToSql(c).find("as doi"), std::string::npos);
}

}  // namespace
}  // namespace qp
