#include "qp/query/sql_parser.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

TEST(SqlParserTest, ParsesTonightQuery) {
  auto parsed = ParseSelectQuery(
      "select MV.title from MOVIE MV, PLAY PL "
      "where MV.mid=PL.mid and PL.date='2/7/2003'");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const SelectQuery& q = *parsed;
  ASSERT_EQ(q.from().size(), 2u);
  EXPECT_EQ(q.from()[0].alias, "MV");
  EXPECT_EQ(q.from()[0].table, "MOVIE");
  ASSERT_EQ(q.projections().size(), 1u);
  EXPECT_EQ(q.projections()[0].OutputName(), "MV.title");
  ASSERT_NE(q.where(), nullptr);
  EXPECT_EQ(q.where()->NumAtoms(), 2u);
  QP_EXPECT_OK(q.Validate(MovieSchema()));
}

TEST(SqlParserTest, ParsesDistinct) {
  auto parsed =
      ParseSelectQuery("select distinct MV.title from MOVIE MV");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->distinct());
}

TEST(SqlParserTest, KeywordsCaseInsensitive) {
  auto parsed = ParseSelectQuery(
      "SELECT MV.title FROM MOVIE MV WHERE MV.year=1999");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->where()->atom().value(), Value::Int(1999));
}

TEST(SqlParserTest, ParsesNumericLiterals) {
  auto parsed = ParseSelectQuery(
      "select MV.title from MOVIE MV where MV.year=1985");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->where()->atom().value(), Value::Int(1985));
}

TEST(SqlParserTest, ParsesParenthesizedOr) {
  auto parsed = ParseSelectQuery(
      "select GN.mid from GENRE GN where GN.mid=1 and "
      "(GN.genre='a' or GN.genre='b')");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->where()->kind(), ConditionNode::Kind::kAnd);
  EXPECT_EQ(parsed->where()->children()[1]->kind(),
            ConditionNode::Kind::kOr);
}

TEST(SqlParserTest, OrBindsLooserThanAnd) {
  auto parsed = ParseSelectQuery(
      "select GN.mid from GENRE GN where GN.genre='a' and GN.mid=1 or "
      "GN.genre='b'");
  ASSERT_TRUE(parsed.ok());
  // (a and 1) or b: top node is OR with 2 children.
  EXPECT_EQ(parsed->where()->kind(), ConditionNode::Kind::kOr);
  ASSERT_EQ(parsed->where()->children().size(), 2u);
  EXPECT_EQ(parsed->where()->children()[0]->kind(),
            ConditionNode::Kind::kAnd);
}

TEST(SqlParserTest, ErrorOnTrailingInput) {
  auto parsed =
      ParseSelectQuery("select MV.title from MOVIE MV garbage garbage");
  EXPECT_FALSE(parsed.ok());
}

TEST(SqlParserTest, ErrorOnMissingFrom) {
  EXPECT_FALSE(ParseSelectQuery("select MV.title").ok());
}

TEST(SqlParserTest, ErrorOnBadProjection) {
  EXPECT_FALSE(ParseSelectQuery("select title from MOVIE MV").ok());
}

TEST(SqlParserTest, ParsesCompoundCountForm) {
  auto parsed = ParseStatement(
      "select MV.title from ((select distinct MV.title from MOVIE MV, "
      "PLAY PL where MV.mid=PL.mid) union all (select distinct MV.title "
      "from MOVIE MV, GENRE GN where MV.mid=GN.mid)) TEMP group by "
      "MV.title having count(*) >= 2");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->is_compound());
  const CompoundQuery& c = parsed->compound();
  EXPECT_EQ(c.parts().size(), 2u);
  EXPECT_EQ(c.having().kind, HavingClause::Kind::kCountAtLeast);
  EXPECT_EQ(c.having().min_count, 2u);
  EXPECT_FALSE(c.order_by_degree());
}

TEST(SqlParserTest, ParsesCompoundDegreeForm) {
  auto parsed = ParseStatement(
      "select MV.title from ((select distinct MV.title, 0.81 as doi from "
      "MOVIE MV)) TEMP group by MV.title having "
      "degree_of_conjunction(doi) > 0.5 order by "
      "degree_of_conjunction(doi) desc");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->is_compound());
  const CompoundQuery& c = parsed->compound();
  ASSERT_EQ(c.parts().size(), 1u);
  EXPECT_DOUBLE_EQ(c.parts()[0].degree, 0.81);
  EXPECT_EQ(c.having().kind, HavingClause::Kind::kDegreeAbove);
  EXPECT_TRUE(c.order_by_degree());
}

TEST(SqlParserTest, CompoundGroupByMustMatchProjection) {
  auto parsed = ParseStatement(
      "select MV.title from ((select distinct MV.title from MOVIE MV)) "
      "TEMP group by MV.year");
  EXPECT_FALSE(parsed.ok());
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, WriteParseWriteIsStable) {
  auto first = ParseStatement(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  std::string written = first->is_select() ? ToSql(first->select())
                                           : ToSql(first->compound());
  auto second = ParseStatement(written);
  ASSERT_TRUE(second.ok()) << second.status() << "\nSQL: " << written;
  std::string rewritten = second->is_select() ? ToSql(second->select())
                                              : ToSql(second->compound());
  EXPECT_EQ(written, rewritten);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "select MV.title from MOVIE MV",
        "select distinct MV.title from MOVIE MV, PLAY PL where "
        "MV.mid=PL.mid and PL.date='2/7/2003'",
        "select MV.title, MV.year from MOVIE MV where MV.year=1999",
        "select GN.mid from GENRE GN where GN.genre='a' or GN.genre='b'",
        "select MV.title from MOVIE MV where MV.mid=1 and "
        "(MV.year=1999 or MV.year=2000)",
        "select MV.title from ((select distinct MV.title from MOVIE MV)) "
        "TEMP group by MV.title having count(*) >= 1",
        "select MV.title from ((select distinct MV.title, 0.9 as doi from "
        "MOVIE MV) union all (select distinct MV.title, 0.72 as doi from "
        "MOVIE MV, GENRE GN where MV.mid=GN.mid)) TEMP group by MV.title "
        "having degree_of_conjunction(doi) > 0.25 order by "
        "degree_of_conjunction(doi) desc"));

TEST(SqlParserTest, RoundTripsPaperQueryExactly) {
  std::string sql = ToSql(TonightQuery());
  auto parsed = ParseSelectQuery(sql);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ToSql(*parsed), sql);
}

}  // namespace
}  // namespace qp
