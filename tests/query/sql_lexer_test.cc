#include "qp/query/sql_lexer.h"

#include "common/test_util.h"
#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Tokenize("select Foo _bar b2");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_FALSE((*tokens)[0].IsKeyword("selec"));
  EXPECT_EQ((*tokens)[1].text, "Foo");
  EXPECT_EQ((*tokens)[2].text, "_bar");
  EXPECT_EQ((*tokens)[3].text, "b2");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 3.14 0.9");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "3.14");
  EXPECT_EQ((*tokens)[2].text, "0.9");
}

TEST(LexerTest, NumberFollowedByDotIdent) {
  // "1.x" must lex as number 1, symbol '.', ident x — not a malformed
  // decimal.
  auto tokens = Tokenize("1.x");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].text, "1");
  EXPECT_TRUE((*tokens)[1].IsSymbol("."));
  EXPECT_EQ((*tokens)[2].text, "x");
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize("'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
}

TEST(LexerTest, StringEscapedQuote) {
  auto tokens = Tokenize("'O''Hara'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "O'Hara");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("'oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, Symbols) {
  auto tokens = Tokenize(". , ( ) [ ] = * > >=");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> expected = {".", ",", "(", ")", "[",
                                       "]", "=", "*", ">", ">="};
  ASSERT_EQ(tokens->size(), expected.size() + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE((*tokens)[i].IsSymbol(expected[i]))
        << i << ": " << (*tokens)[i].text;
  }
}

TEST(LexerTest, GreaterEqualIsOneToken) {
  auto tokens = Tokenize("count(*)>=2");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const Token& t : *tokens) {
    if (t.IsSymbol(">=")) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto tokens = Tokenize("select @");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OffsetsTrackPositions) {
  auto tokens = Tokenize("ab cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 3u);
}

TEST(LexerTest, RealisticQuery) {
  auto tokens =
      Tokenize("select MV.title from MOVIE MV where MV.mid=PL.mid and "
               "PL.date='2/7/2003'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_GT(tokens->size(), 15u);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace qp
