// Robustness tests for the SQL lexer/parser and profile parser: malformed
// input of any shape must produce a parse error (or parse successfully),
// never crash, hang, or corrupt state.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "qp/core/query_signature.h"
#include "qp/pref/profile.h"
#include "qp/query/sql_parser.h"
#include "qp/query/sql_writer.h"
#include "qp/util/random.h"

namespace qp {
namespace {

const char* kSeeds[] = {
    "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid and "
    "PL.date='2/7/2003'",
    "select distinct MV.title from MOVIE MV where MV.year=1999 or "
    "(MV.year=2000 and MV.title='x')",
    "select MV.title from ((select distinct MV.title, 0.81 as doi from "
    "MOVIE MV) union all (select distinct MV.title, -0.5 as doi from "
    "MOVIE MV)) TEMP group by MV.title having "
    "degree_of_conjunction(doi) > 0.5 except (select distinct MV.title "
    "from MOVIE MV) order by degree_of_conjunction(doi) desc",
    "select MV.title from MOVIE MV where near(MV.year, 1994, 5)",
};

TEST(ParserFuzzTest, EveryPrefixOfValidSqlIsHandled) {
  for (const char* seed : kSeeds) {
    std::string sql(seed);
    for (size_t len = 0; len <= sql.size(); ++len) {
      auto result = ParseStatement(sql.substr(0, len));
      // Must not crash; outcome (ok or error) is input-dependent.
      if (result.ok() && len == sql.size()) {
        SUCCEED();
      }
    }
  }
}

TEST(ParserFuzzTest, RandomCharacterMutationsAreHandled) {
  Rng rng(20040308);
  const std::string charset =
      "abcdefgSELECTselectfromwhere.,()[]=*>-'\"0123456789 \t\n";
  for (const char* seed : kSeeds) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string sql(seed);
      size_t mutations = 1 + rng.Below(4);
      for (size_t m = 0; m < mutations; ++m) {
        size_t pos = rng.Below(sql.size());
        sql[pos] = charset[rng.Below(charset.size())];
      }
      auto result = ParseStatement(sql);
      if (result.ok()) {
        // Whatever parsed must be writable again without crashing.
        std::string rewritten = result->is_select()
                                    ? ToSql(result->select())
                                    : ToSql(result->compound());
        EXPECT_FALSE(rewritten.empty());
      }
    }
  }
}

TEST(ParserFuzzTest, SqlRoundTripPreservesQuerySignature) {
  // parse -> ToSql -> reparse must be a signature fixpoint: the written
  // SQL denotes the same query, so the canonical key (and with it the
  // service layer's selection-cache key) must come out identical.
  Rng rng(19283746);
  const std::string charset =
      "abcdefgSELECTselectfromwhere.,()[]=*>-'\"0123456789 \t\n";
  size_t round_tripped = 0;
  for (const char* seed : kSeeds) {
    for (int trial = 0; trial < 300; ++trial) {
      std::string sql(seed);
      // Trial 0 keeps the seed pristine; later trials mutate it.
      for (int m = 0; m < trial % 4; ++m) {
        sql[rng.Below(sql.size())] = charset[rng.Below(charset.size())];
      }
      auto parsed = ParseStatement(sql);
      if (!parsed.ok() || !parsed->is_select()) continue;
      const SelectQuery& query = parsed->select();

      auto reparsed = ParseStatement(ToSql(query));
      ASSERT_TRUE(reparsed.ok())
          << "writer output must reparse: " << ToSql(query);
      ASSERT_TRUE(reparsed->is_select());
      EXPECT_EQ(CanonicalQueryKey(query), CanonicalQueryKey(reparsed->select()))
          << "input: " << sql;
      EXPECT_EQ(QuerySignature(query), QuerySignature(reparsed->select()));
      ++round_tripped;
    }
  }
  // The loop must exercise real round trips, not skip everything.
  EXPECT_GT(round_tripped, 100u);
}

TEST(ParserFuzzTest, RandomTokenSoupIsHandled) {
  Rng rng(42424242);
  const std::vector<std::string> tokens = {
      "select", "from",  "where", "and",   "or",    "union", "all",
      "group",  "by",    "having", "count", "near",  "except", "order",
      "desc",   "MV",    "title", "MOVIE", ".",     ",",     "(",
      ")",      "=",     "*",     ">=",    ">",     "-",     "'x'",
      "0.5",    "42",    "doi",   "as",    "TEMP"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    size_t length = 1 + rng.Below(25);
    for (size_t i = 0; i < length; ++i) {
      sql += tokens[rng.Below(tokens.size())];
      sql += " ";
    }
    auto result = ParseStatement(sql);
    (void)result;  // Any outcome but a crash is acceptable.
  }
  SUCCEED();
}

TEST(ProfileParserFuzzTest, PrefixesAndMutations) {
  const std::string seed =
      "[ THEATRE.tid=PLAY.tid, 1 ]\n"
      "[ GENRE.genre='comedy', 0.9 ]\n"
      "[ near(MOVIE.year, 1994, 5), 0.8 ]\n"
      "[ GENRE.genre='horror', -0.7 ]\n";
  for (size_t len = 0; len <= seed.size(); ++len) {
    auto result = UserProfile::Parse(seed.substr(0, len));
    (void)result;
  }
  Rng rng(77);
  const std::string charset = "[]=.,'()-0123456789abcGENRE \n#";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = seed;
    for (int m = 0; m < 3; ++m) {
      text[rng.Below(text.size())] = charset[rng.Below(charset.size())];
    }
    auto result = UserProfile::Parse(text);
    if (result.ok()) {
      // Anything accepted must serialize back.
      EXPECT_FALSE(result->Serialize().empty() && result->size() > 0);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace qp
