#include "qp/query/condition.h"

#include <functional>
#include <map>

#include "gtest/gtest.h"
#include "qp/util/random.h"

namespace qp {
namespace {

AtomicCondition Sel(const std::string& var, const std::string& col,
                    int64_t v) {
  return AtomicCondition::Selection(var, col, Value::Int(v));
}

TEST(AtomicConditionTest, SelectionAccessors) {
  AtomicCondition c =
      AtomicCondition::Selection("GN", "genre", Value::Str("comedy"));
  EXPECT_TRUE(c.is_selection());
  EXPECT_FALSE(c.is_join());
  EXPECT_EQ(c.var(), "GN");
  EXPECT_EQ(c.column(), "genre");
  EXPECT_EQ(c.value(), Value::Str("comedy"));
  EXPECT_EQ(c.ToSql(), "GN.genre='comedy'");
  EXPECT_EQ(c.ReferencedVars(), (std::vector<std::string>{"GN"}));
}

TEST(AtomicConditionTest, JoinAccessors) {
  AtomicCondition c = AtomicCondition::Join("MV", "mid", "GN", "mid");
  EXPECT_TRUE(c.is_join());
  EXPECT_EQ(c.left_var(), "MV");
  EXPECT_EQ(c.right_var(), "GN");
  EXPECT_EQ(c.ToSql(), "MV.mid=GN.mid");
  EXPECT_EQ(c.ReferencedVars(), (std::vector<std::string>{"MV", "GN"}));
}

TEST(AtomicConditionTest, Equality) {
  EXPECT_EQ(Sel("A", "x", 1), Sel("A", "x", 1));
  EXPECT_NE(Sel("A", "x", 1), Sel("A", "x", 2));
  EXPECT_NE(Sel("A", "x", 1), Sel("B", "x", 1));
  EXPECT_EQ(AtomicCondition::Join("A", "x", "B", "y"),
            AtomicCondition::Join("A", "x", "B", "y"));
  EXPECT_NE(AtomicCondition::Join("A", "x", "B", "y"),
            AtomicCondition::Join("B", "y", "A", "x"));  // Direction matters.
  EXPECT_NE(Sel("A", "x", 1), AtomicCondition::Join("A", "x", "B", "y"));
}

TEST(ConditionNodeTest, AtomFactory) {
  ConditionPtr node = ConditionNode::MakeAtom(Sel("A", "x", 1));
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->kind(), ConditionNode::Kind::kAtom);
  EXPECT_EQ(node->atom(), Sel("A", "x", 1));
  EXPECT_EQ(node->NumAtoms(), 1u);
}

TEST(ConditionNodeTest, AndFlattensNested) {
  ConditionPtr inner = ConditionNode::MakeAnd(
      {ConditionNode::MakeAtom(Sel("A", "x", 1)),
       ConditionNode::MakeAtom(Sel("A", "y", 2))});
  ConditionPtr outer = ConditionNode::MakeAnd(
      {inner, ConditionNode::MakeAtom(Sel("A", "z", 3))});
  ASSERT_EQ(outer->kind(), ConditionNode::Kind::kAnd);
  EXPECT_EQ(outer->children().size(), 3u);
  EXPECT_EQ(outer->NumAtoms(), 3u);
}

TEST(ConditionNodeTest, SingleChildCollapses) {
  ConditionPtr atom = ConditionNode::MakeAtom(Sel("A", "x", 1));
  EXPECT_EQ(ConditionNode::MakeAnd({atom}), atom);
  EXPECT_EQ(ConditionNode::MakeOr({atom}), atom);
}

TEST(ConditionNodeTest, NullChildrenDropped) {
  ConditionPtr atom = ConditionNode::MakeAtom(Sel("A", "x", 1));
  ConditionPtr node = ConditionNode::MakeAnd({nullptr, atom, nullptr});
  EXPECT_EQ(node, atom);
  EXPECT_EQ(ConditionNode::MakeAnd({nullptr, nullptr}), nullptr);
}

TEST(ConditionNodeTest, ConjoinHandlesNulls) {
  ConditionPtr atom = ConditionNode::MakeAtom(Sel("A", "x", 1));
  EXPECT_EQ(ConditionNode::Conjoin(nullptr, nullptr), nullptr);
  EXPECT_EQ(ConditionNode::Conjoin(atom, nullptr), atom);
  EXPECT_EQ(ConditionNode::Conjoin(nullptr, atom), atom);
  ConditionPtr both = ConditionNode::Conjoin(
      atom, ConditionNode::MakeAtom(Sel("A", "y", 2)));
  EXPECT_EQ(both->NumAtoms(), 2u);
}

TEST(ConditionNodeTest, CollectAtomsPreOrder) {
  ConditionPtr node = ConditionNode::MakeAnd(
      {ConditionNode::MakeAtom(Sel("A", "x", 1)),
       ConditionNode::MakeOr({ConditionNode::MakeAtom(Sel("A", "y", 2)),
                              ConditionNode::MakeAtom(Sel("A", "z", 3))})});
  std::vector<AtomicCondition> atoms;
  node->CollectAtoms(&atoms);
  ASSERT_EQ(atoms.size(), 3u);
  EXPECT_EQ(atoms[0], Sel("A", "x", 1));
  EXPECT_EQ(atoms[1], Sel("A", "y", 2));
  EXPECT_EQ(atoms[2], Sel("A", "z", 3));
}

TEST(ConditionNodeTest, ToSqlParenthesizesOrInsideAnd) {
  ConditionPtr node = ConditionNode::MakeAnd(
      {ConditionNode::MakeAtom(Sel("A", "x", 1)),
       ConditionNode::MakeOr({ConditionNode::MakeAtom(Sel("A", "y", 2)),
                              ConditionNode::MakeAtom(Sel("A", "z", 3))})});
  EXPECT_EQ(node->ToSql(), "A.x=1 and (A.y=2 or A.z=3)");
}

TEST(ConditionNodeTest, ToSqlParenthesizesAndInsideOr) {
  ConditionPtr node = ConditionNode::MakeOr(
      {ConditionNode::MakeAnd({ConditionNode::MakeAtom(Sel("A", "x", 1)),
                               ConditionNode::MakeAtom(Sel("A", "y", 2))}),
       ConditionNode::MakeAtom(Sel("A", "z", 3))});
  EXPECT_EQ(node->ToSql(), "(A.x=1 and A.y=2) or A.z=3");
}

TEST(ConditionEqualsTest, StructuralEquality) {
  auto make = [] {
    return ConditionNode::MakeAnd(
        {ConditionNode::MakeAtom(Sel("A", "x", 1)),
         ConditionNode::MakeOr({ConditionNode::MakeAtom(Sel("A", "y", 2)),
                                ConditionNode::MakeAtom(Sel("A", "z", 3))})});
  };
  EXPECT_TRUE(ConditionEquals(make(), make()));
  EXPECT_TRUE(ConditionEquals(nullptr, nullptr));
  EXPECT_FALSE(ConditionEquals(make(), nullptr));
  EXPECT_FALSE(ConditionEquals(
      make(), ConditionNode::MakeAtom(Sel("A", "x", 1))));
}

TEST(DnfTest, NullConditionIsSingleEmptyConjunct) {
  auto dnf = ToDnf(nullptr);
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_TRUE(dnf[0].empty());
}

TEST(DnfTest, AtomIsItself) {
  auto dnf = ToDnf(ConditionNode::MakeAtom(Sel("A", "x", 1)));
  ASSERT_EQ(dnf.size(), 1u);
  ASSERT_EQ(dnf[0].size(), 1u);
  EXPECT_EQ(dnf[0][0], Sel("A", "x", 1));
}

TEST(DnfTest, DistributesAndOverOr) {
  // (a) and (b or c) -> ab, ac
  ConditionPtr node = ConditionNode::MakeAnd(
      {ConditionNode::MakeAtom(Sel("A", "a", 1)),
       ConditionNode::MakeOr({ConditionNode::MakeAtom(Sel("A", "b", 2)),
                              ConditionNode::MakeAtom(Sel("A", "c", 3))})});
  auto dnf = ToDnf(node);
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].size(), 2u);
  EXPECT_EQ(dnf[1].size(), 2u);
}

TEST(DnfTest, CombinationCount) {
  // (a or b) and (c or d) -> 4 disjuncts of 2 atoms.
  ConditionPtr node = ConditionNode::MakeAnd(
      {ConditionNode::MakeOr({ConditionNode::MakeAtom(Sel("A", "a", 1)),
                              ConditionNode::MakeAtom(Sel("A", "b", 2))}),
       ConditionNode::MakeOr({ConditionNode::MakeAtom(Sel("A", "c", 3)),
                              ConditionNode::MakeAtom(Sel("A", "d", 4))})});
  auto dnf = ToDnf(node);
  EXPECT_EQ(dnf.size(), 4u);
}

// Property: DNF is logically equivalent to the original tree. Random trees
// over 6 boolean-ish atoms are evaluated under random assignments.
class DnfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DnfPropertyTest, DnfEquivalentToTree) {
  Rng rng(GetParam());
  // Atom i is "A.c<i>=1"; an assignment maps i -> bool.
  const int num_atoms = 6;
  std::function<ConditionPtr(int)> random_tree = [&](int depth) {
    uint64_t pick = rng.Below(depth >= 3 ? 1 : 3);
    if (pick == 0) {
      return ConditionNode::MakeAtom(
          Sel("A", "c" + std::to_string(rng.Below(num_atoms)), 1));
    }
    size_t arity = 2 + rng.Below(2);
    std::vector<ConditionPtr> children;
    for (size_t i = 0; i < arity; ++i) {
      children.push_back(random_tree(depth + 1));
    }
    return pick == 1 ? ConditionNode::MakeAnd(std::move(children))
                     : ConditionNode::MakeOr(std::move(children));
  };

  std::function<bool(const ConditionPtr&, const std::map<std::string, bool>&)>
      eval = [&](const ConditionPtr& node,
                 const std::map<std::string, bool>& assign) -> bool {
    if (node == nullptr) return true;
    switch (node->kind()) {
      case ConditionNode::Kind::kAtom:
        return assign.at(node->atom().column());
      case ConditionNode::Kind::kAnd:
        for (const auto& c : node->children()) {
          if (!eval(c, assign)) return false;
        }
        return true;
      case ConditionNode::Kind::kOr:
        for (const auto& c : node->children()) {
          if (eval(c, assign)) return true;
        }
        return false;
    }
    return false;
  };

  for (int trial = 0; trial < 10; ++trial) {
    ConditionPtr tree = random_tree(0);
    auto dnf = ToDnf(tree);
    for (int a = 0; a < 20; ++a) {
      std::map<std::string, bool> assign;
      for (int i = 0; i < num_atoms; ++i) {
        assign["c" + std::to_string(i)] = rng.Bernoulli(0.5);
      }
      bool tree_value = eval(tree, assign);
      bool dnf_value = false;
      for (const auto& conjunct : dnf) {
        bool all = true;
        for (const auto& atom : conjunct) {
          if (!assign.at(atom.column())) {
            all = false;
            break;
          }
        }
        if (all) {
          dnf_value = true;
          break;
        }
      }
      EXPECT_EQ(tree_value, dnf_value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qp
