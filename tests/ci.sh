#!/usr/bin/env bash
# The full CI gate, in the order a reviewer wants failures reported:
#
#   1. regular build + the whole ctest suite (tier-1: must stay green);
#   2. the durability/crash-recovery, request-lifecycle, observability,
#      chaos/robustness, executor-engine and shard suites (router
#      swap-under-load + kill/recover chaos) under ThreadSanitizer
#      and AddressSanitizer+UBSan via tests/run_sanitized.sh — the
#      randomized crash-recovery property suite (>= 500 trials), the
#      overload/admission tests, the metrics/trace accounting tests, the
#      seeded chaos trials (QP_CHAOS_TRIALS=100 per sanitizer, >= 200
#      total) and the executor differential oracle (vectorized vs tuple;
#      QP_EXEC_TRIALS=150 per sanitizer — the full 800-trial sweep runs
#      unsanitized in stage 1; every trial prints its seed, so a failure
#      names its exact replay) are only trusted once they have passed
#      under both;
#   3. compile checks that -DQP_FAULTS_DISABLED=ON and -DQP_OBS_DISABLED=ON
#      still build: fault sites and the observability plane (trace
#      contexts, flight recorder, SLO tracking) must stub to literal
#      no-ops in production builds, with the tracing-independent suites
#      still green in each stubbed tree;
#   4. benchmark snapshots in machine-readable JSON via $QP_BENCH_JSON
#      (build/bench_report.json: one BenchReport object per line —
#      overload disposition fractions, service-throughput latency
#      percentiles, fault-recovery costs: breaker time-to-recover and
#      the steady-state scrub tax, and executor-engine timings — the
#      ablation_exec / fig8 / fig9 reports record both the tuple and the
#      vectorized engine plus their speedup ratio), so a regression in
#      shed/degrade/recovery behaviour or the perf trajectory shows up
#      as an artifact diff;
#   5. a regression gate: the fresh bench report is checked against the
#      committed BENCH_baseline.json — a >25% drop in vec_speedup* or
#      service/shard throughput, a fault-recovery cost (breaker
#      time-to-recover, scrub tax) or reshard migration-window p99 above
#      2x its baseline, or a violated shard invariant (acked loss —
#      kill/recover or live reshard — unbounded residency), fails the
#      run.
#
# Usage:
#   tests/ci.sh            # everything
#   tests/ci.sh --fast     # skip the sanitizer stage (local iteration)

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Suites that must also pass sanitized: the storage/durability layer, the
# request-lifecycle (deadline / cancellation / admission) suites, and the
# observability suites (sharded counters, trace delivery, the stats
# accounting identity under concurrent readers).
# Keep in sync with tests/CMakeLists.txt.
STORAGE_FILTER='crc32c|wal_test|record_fuzz|snapshot_test|durable_store|crash_recovery|profile_store|thread_pool|service_batch'
LIFECYCLE_FILTER='deadline_test|selection_deadline|executor_cancel|service_lifecycle|storage_retry'
OBS_FILTER='obs_metrics|obs_trace|service_trace|executor_stats_attribution|service_stats_identity|flight_recorder|slo_test|histogram_percentile|cluster_trace'
CHAOS_FILTER='fault_hub|breaker_recovery|scrubber_test|bitflip_robustness|chaos_property|chaos_blackbox'
EXEC_FILTER='batch_table|exec_differential|vectorized_cancel'
SHARD_FILTER='tiered_store|sharded_service|shard_chaos|routing_table|reshard_test|reshard_chaos'

echo "==== [ci] regular build ===="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "==== [ci] full test suite ===="
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
  echo "==== [ci] PASS (sanitizers skipped) ===="
  exit 0
fi

echo "==== [ci] sanitized storage + lifecycle + obs + chaos + exec suites ===="
# 100 seeded chaos trials per sanitizer build (>= 200 total), and 150
# executor differential trials per sanitizer build (the unsanitized
# 800-trial sweep already ran in stage 1). A failing or hanging trial
# prints "[chaos] trial N seed=S" / "[diff] trial N seed=S" before it
# runs, so the log always names the seed to replay.
# The shard suite rides along: the router swaps shard pointers under a
# shared_mutex while worker threads personalize, and the kill/recover
# chaos trials (QP_SHARD_CHAOS_TRIALS=25 per sanitizer) race mutators
# against shard death — exactly the code TSan/ASan exist to vet.
# The reshard chaos trials (QP_RESHARD_TRIALS=50 per sanitizer, >= 100
# total) drive the live-migration state machine — copy / WAL tail /
# dual-write / cutover — under armed migrate.* fault schedules with
# shard kills landing mid-migration and a mutator racing the barriers.
QP_CHAOS_TRIALS=100 QP_EXEC_TRIALS=150 QP_SHARD_CHAOS_TRIALS=25 \
  QP_RESHARD_TRIALS=50 \
  tests/run_sanitized.sh all \
  -R "$STORAGE_FILTER|$LIFECYCLE_FILTER|$OBS_FILTER|$CHAOS_FILTER|$EXEC_FILTER|$SHARD_FILTER"

echo "==== [ci] QP_FAULTS_DISABLED compile check ===="
# Production builds compile every fault site to a literal no-op; this
# gate catches a site whose disabled stub no longer typechecks.
cmake -B "$ROOT/build-nofaults" -S "$ROOT" -DQP_FAULTS_DISABLED=ON >/dev/null
cmake --build "$ROOT/build-nofaults" -j "$JOBS" \
  --target qp_storage qp_service qp_shard qpshell fault_hub_test \
  tiered_store_test sharded_service_test routing_table_test reshard_test
# The shard suites run in the stubbed build too: fault-dependent cases
# (including the migrate.* cutover/abort tests) GTEST_SKIP themselves,
# everything else must pass with sites no-opped.
(cd "$ROOT/build-nofaults" && ctest --output-on-failure \
  -R 'fault_hub_test|tiered_store_test|sharded_service_test|routing_table_test|reshard_test')

echo "==== [ci] QP_OBS_DISABLED compile check ===="
# The observability plane must compile out the same way: with
# -DQP_OBS_DISABLED=ON every trace-context, flight-recorder and SLO call
# site stubs to a no-op, so the full stack (libraries + the shell, which
# exercises \blackbox/\slo/\migrations) has to build and the
# tracing-independent suites still pass.
cmake -B "$ROOT/build-noobs" -S "$ROOT" -DQP_OBS_DISABLED=ON >/dev/null
cmake --build "$ROOT/build-noobs" -j "$JOBS" \
  --target qp_obs qp_storage qp_service qp_shard qpshell \
  flight_recorder_test slo_test sharded_service_test reshard_test
# Trace-dependent cases GTEST_SKIP themselves when kTracingCompiledIn is
# false; everything else must pass with the plane stubbed out.
(cd "$ROOT/build-noobs" && ctest --output-on-failure \
  -R 'flight_recorder_test|slo_test|sharded_service_test|reshard_test')

echo "==== [ci] benchmark snapshots (JSON) ===="
REPORT="$ROOT/build/bench_report.json"
rm -f "$REPORT"
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/overload_shedding" \
  --benchmark_min_time=0.05 >/dev/null
# Throughput + per-phase latency percentiles for one representative
# config; the full sweep is a manual run. The sampled-tracing tax is a
# sub-1% effect under an absolute 3% ceiling, so its benchmark gets a
# longer measurement window than the throughput numbers — at 0.05s the
# median-of-ratios estimate has too few samples to be trustworthy.
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/service_throughput" \
  --benchmark_filter='PersonalizeBatch/workers:2|TraceNullSinkOverhead' \
  --benchmark_min_time=0.05 >/dev/null
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/service_throughput" \
  --benchmark_filter='SampledTraceOverhead' \
  --benchmark_min_time=0.5 >/dev/null
# Robustness costs: disarmed fault-point overhead, breaker
# time-to-recover, steady-state scrub tax (acceptance bar: < 2%).
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/fault_recovery" \
  --benchmark_min_time=0.05 >/dev/null
# Executor-engine timings: both strategies (tuple vs vectorized batch)
# per query shape / K / L, plus the aggregate vec_speedup* ratios — the
# before/after evidence for the columnar executor.
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/ablation_exec" \
  --benchmark_min_time=0.05 >/dev/null
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/fig8_sq_mq_vs_k" >/dev/null
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/fig9_sq_mq_vs_l" >/dev/null
# Sharded scale-out: the zipfian closed loop over 1M distinct users with
# a bounded hot set, a live reshard (grow by two) under traffic with the
# migration-window p99 recorded, plus the kill/recover phase. The report
# carries the acceptance booleans (residency_bounded, zero_acked_loss,
# reshard_zero_acked_loss) that the regression gate below enforces as
# hard invariants.
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/shard_scale" >/dev/null
echo "wrote $REPORT:"
cat "$REPORT"

echo "==== [ci] bench regression gate (vs BENCH_baseline.json) ===="
# Fails on a >25% drop in any vectorized-executor speedup or service /
# shard-cluster throughput, or on a violated shard invariant. Regenerate
# the baseline (and review the diff) when a deliberate perf change moves
# the floor: copy build/bench_report.json over BENCH_baseline.json.
python3 tests/check_bench_regression.py \
  "$ROOT/BENCH_baseline.json" "$REPORT"

echo "==== [ci] PASS ===="
