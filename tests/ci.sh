#!/usr/bin/env bash
# The full CI gate, in the order a reviewer wants failures reported:
#
#   1. regular build + the whole ctest suite (tier-1: must stay green);
#   2. the durability/crash-recovery suites under ThreadSanitizer and
#      AddressSanitizer+UBSan via tests/run_sanitized.sh — the randomized
#      crash-recovery property suite (>= 500 trials) is only trusted once
#      it has passed under both.
#
# Usage:
#   tests/ci.sh            # everything
#   tests/ci.sh --fast     # skip the sanitizer stage (local iteration)

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Storage-layer suites that must also pass sanitized. Keep in sync with
# tests/CMakeLists.txt.
STORAGE_FILTER='crc32c|wal_test|record_fuzz|snapshot_test|durable_store|crash_recovery|profile_store|thread_pool|service_batch'

echo "==== [ci] regular build ===="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "==== [ci] full test suite ===="
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
  echo "==== [ci] PASS (sanitizers skipped) ===="
  exit 0
fi

echo "==== [ci] sanitized storage suites ===="
tests/run_sanitized.sh all -R "$STORAGE_FILTER"

echo "==== [ci] PASS ===="
