#!/usr/bin/env bash
# The full CI gate, in the order a reviewer wants failures reported:
#
#   1. regular build + the whole ctest suite (tier-1: must stay green);
#   2. the durability/crash-recovery, request-lifecycle and observability
#      suites under ThreadSanitizer and AddressSanitizer+UBSan via
#      tests/run_sanitized.sh — the randomized crash-recovery property
#      suite (>= 500 trials), the overload/admission tests and the
#      metrics/trace accounting tests are only trusted once they have
#      passed under both;
#   3. benchmark snapshots in machine-readable JSON via $QP_BENCH_JSON
#      (build/bench_report.json: one BenchReport object per line —
#      overload disposition fractions and service-throughput latency
#      percentiles), so a regression in shed/degrade behaviour or the
#      perf trajectory shows up as an artifact diff.
#
# Usage:
#   tests/ci.sh            # everything
#   tests/ci.sh --fast     # skip the sanitizer stage (local iteration)

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Suites that must also pass sanitized: the storage/durability layer, the
# request-lifecycle (deadline / cancellation / admission) suites, and the
# observability suites (sharded counters, trace delivery, the stats
# accounting identity under concurrent readers).
# Keep in sync with tests/CMakeLists.txt.
STORAGE_FILTER='crc32c|wal_test|record_fuzz|snapshot_test|durable_store|crash_recovery|profile_store|thread_pool|service_batch'
LIFECYCLE_FILTER='deadline_test|selection_deadline|executor_cancel|service_lifecycle|storage_retry'
OBS_FILTER='obs_metrics|obs_trace|service_trace|executor_stats_attribution|service_stats_identity'

echo "==== [ci] regular build ===="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "==== [ci] full test suite ===="
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
  echo "==== [ci] PASS (sanitizers skipped) ===="
  exit 0
fi

echo "==== [ci] sanitized storage + lifecycle + obs suites ===="
tests/run_sanitized.sh all -R "$STORAGE_FILTER|$LIFECYCLE_FILTER|$OBS_FILTER"

echo "==== [ci] benchmark snapshots (JSON) ===="
REPORT="$ROOT/build/bench_report.json"
rm -f "$REPORT"
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/overload_shedding" \
  --benchmark_min_time=0.05 >/dev/null
# Throughput + per-phase latency percentiles for one representative
# config; the full sweep is a manual run.
QP_BENCH_JSON="$REPORT" "$ROOT/build/bench/service_throughput" \
  --benchmark_filter='PersonalizeBatch/workers:2|TraceNullSinkOverhead' \
  --benchmark_min_time=0.05 >/dev/null
echo "wrote $REPORT:"
cat "$REPORT"

echo "==== [ci] PASS ===="
