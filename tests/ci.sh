#!/usr/bin/env bash
# The full CI gate, in the order a reviewer wants failures reported:
#
#   1. regular build + the whole ctest suite (tier-1: must stay green);
#   2. the durability/crash-recovery and request-lifecycle suites under
#      ThreadSanitizer and AddressSanitizer+UBSan via
#      tests/run_sanitized.sh — the randomized crash-recovery property
#      suite (>= 500 trials) and the overload/admission tests are only
#      trusted once they have passed under both;
#   3. an overload-shedding benchmark snapshot in machine-readable JSON
#      (build/overload_shedding.json), so a regression in shed/degrade
#      behaviour shows up as an artifact diff.
#
# Usage:
#   tests/ci.sh            # everything
#   tests/ci.sh --fast     # skip the sanitizer stage (local iteration)

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Suites that must also pass sanitized: the storage/durability layer plus
# the request-lifecycle (deadline / cancellation / admission) suites.
# Keep in sync with tests/CMakeLists.txt.
STORAGE_FILTER='crc32c|wal_test|record_fuzz|snapshot_test|durable_store|crash_recovery|profile_store|thread_pool|service_batch'
LIFECYCLE_FILTER='deadline_test|selection_deadline|executor_cancel|service_lifecycle|storage_retry'

echo "==== [ci] regular build ===="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "==== [ci] full test suite ===="
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
  echo "==== [ci] PASS (sanitizers skipped) ===="
  exit 0
fi

echo "==== [ci] sanitized storage + lifecycle suites ===="
tests/run_sanitized.sh all -R "$STORAGE_FILTER|$LIFECYCLE_FILTER"

echo "==== [ci] overload shedding benchmark (JSON) ===="
"$ROOT/build/bench/overload_shedding" \
  --benchmark_format=json \
  --benchmark_min_time=0.05 \
  > "$ROOT/build/overload_shedding.json"
echo "wrote $ROOT/build/overload_shedding.json"

echo "==== [ci] PASS ===="
