// SloTracker tests: availability/latency attainment math, burn rates
// against the error budget, the rolling window expiring old buckets
// under an injected clock, bucket-slot recycling after a long idle gap,
// and a concurrent-recorders smoke the sanitized CI stage runs under
// TSan.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "qp/obs/slo.h"

namespace qp {
namespace obs {
namespace {

// Injectable time source: SloOptions takes a plain function pointer, so
// the fake clock is a file-scope atomic the tests advance directly.
std::atomic<int64_t> g_now_nanos{0};
int64_t FakeNow() { return g_now_nanos.load(std::memory_order_relaxed); }

constexpr int64_t kSecond = 1'000'000'000;

SloOptions FakeClockOptions() {
  SloOptions options;
  options.now_nanos = &FakeNow;
  options.bucket_nanos = kSecond;
  options.buckets = 60;
  return options;
}

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override { g_now_nanos.store(0); }
};

TEST_F(SloTest, IdleTrackerReportsHealthy) {
  SloTracker tracker(FakeClockOptions());
  SloSnapshot snapshot = tracker.Evaluate();
  EXPECT_EQ(snapshot.window_requests, 0u);
  EXPECT_EQ(snapshot.availability, 1.0);
  EXPECT_EQ(snapshot.latency_attainment, 1.0);
  EXPECT_EQ(snapshot.availability_burn_rate, 0.0);
  EXPECT_EQ(snapshot.latency_burn_rate, 0.0);
}

TEST_F(SloTest, AvailabilityAndLatencyAttainment) {
  SloOptions options = FakeClockOptions();
  options.latency_millis = 100.0;
  SloTracker tracker(options);
  // 8 served-and-fast, 1 served-but-slow, 1 unserved: availability
  // 9/10, latency attainment 8/10.
  for (int i = 0; i < 8; ++i) tracker.Record(true, 10.0);
  tracker.Record(true, 500.0);
  tracker.Record(false, 10.0);
  SloSnapshot snapshot = tracker.Evaluate();
  EXPECT_EQ(snapshot.window_requests, 10u);
  EXPECT_EQ(snapshot.window_served, 9u);
  EXPECT_DOUBLE_EQ(snapshot.availability, 0.9);
  EXPECT_DOUBLE_EQ(snapshot.latency_attainment, 0.9);  // 9 under 100ms.
}

TEST_F(SloTest, BurnRateIsBadnessOverBudget) {
  SloOptions options = FakeClockOptions();
  options.availability_target = 0.99;  // 1% error budget.
  options.latency_target = 0.9;        // 10% budget.
  options.latency_millis = 100.0;
  SloTracker tracker(options);
  // 5% unserved => availability burn 0.05/0.01 = 5; 20% slow =>
  // latency burn 0.2/0.1 = 2.
  for (int i = 0; i < 95; ++i) tracker.Record(true, 10.0);
  for (int i = 0; i < 5; ++i) tracker.Record(false, 10.0);
  // Re-stamp 20 of the fast ones as slow: do it exactly by recording
  // 80 fast + 20 slow in a fresh tracker instead.
  SloTracker latency_tracker(options);
  for (int i = 0; i < 80; ++i) latency_tracker.Record(true, 10.0);
  for (int i = 0; i < 20; ++i) latency_tracker.Record(true, 500.0);
  EXPECT_NEAR(tracker.Evaluate().availability_burn_rate, 5.0, 1e-9);
  EXPECT_NEAR(latency_tracker.Evaluate().latency_burn_rate, 2.0, 1e-9);
}

TEST_F(SloTest, ExactlyOnBudgetBurnsAtOne) {
  SloOptions options = FakeClockOptions();
  options.availability_target = 0.99;
  SloTracker tracker(options);
  for (int i = 0; i < 99; ++i) tracker.Record(true, 1.0);
  tracker.Record(false, 1.0);
  EXPECT_NEAR(tracker.Evaluate().availability_burn_rate, 1.0, 1e-9);
}

TEST_F(SloTest, WindowExpiresOldBuckets) {
  SloTracker tracker(FakeClockOptions());
  for (int i = 0; i < 10; ++i) tracker.Record(false, 1.0);  // All bad.
  SloSnapshot during = tracker.Evaluate();
  EXPECT_EQ(during.window_requests, 10u);
  EXPECT_EQ(during.availability, 0.0);

  // 30s later the bad second is still inside the 60s window...
  g_now_nanos.store(30 * kSecond);
  EXPECT_EQ(tracker.Evaluate().window_requests, 10u);

  // ...and 61s later it has rolled out entirely: the tracker forgives.
  g_now_nanos.store(61 * kSecond);
  SloSnapshot after = tracker.Evaluate();
  EXPECT_EQ(after.window_requests, 0u);
  EXPECT_EQ(after.availability, 1.0);
  EXPECT_EQ(after.availability_burn_rate, 0.0);
}

TEST_F(SloTest, RecyclesBucketSlotsAfterALongGap) {
  SloTracker tracker(FakeClockOptions());
  tracker.Record(false, 1.0);  // Epoch 0, all bad.
  // Exactly one full ring later the same slot is reused for epoch 60;
  // the recycle must zero the stale counts, not accumulate into them.
  g_now_nanos.store(60 * kSecond);
  tracker.Record(true, 1.0);
  SloSnapshot snapshot = tracker.Evaluate();
  EXPECT_EQ(snapshot.window_requests, 1u);
  EXPECT_DOUBLE_EQ(snapshot.availability, 1.0);
}

TEST_F(SloTest, SlidingPartialWindow) {
  SloTracker tracker(FakeClockOptions());
  // One bad request per second for 90 seconds; at t=90 the window holds
  // only the last 60 of them.
  for (int s = 0; s < 90; ++s) {
    g_now_nanos.store(s * kSecond);
    tracker.Record(false, 1.0);
  }
  SloSnapshot snapshot = tracker.Evaluate();
  EXPECT_EQ(snapshot.window_requests, 60u);
}

TEST_F(SloTest, ConcurrentRecordersSumExactlyWithinOneEpoch) {
  // With the clock pinned (no recycling races possible) every recorded
  // request must be counted: the relaxed adds are exact, only epoch
  // turnover is lossy. TSan vets the atomics in the sanitized stage.
  SloTracker tracker(FakeClockOptions());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) {
        tracker.Record((i & 1) == 0, (i & 3) == 0 ? 500.0 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  SloSnapshot snapshot = tracker.Evaluate();
  EXPECT_EQ(snapshot.window_requests,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.window_served,
            static_cast<uint64_t>(kThreads) * kPerThread / 2);
}

}  // namespace
}  // namespace obs
}  // namespace qp
