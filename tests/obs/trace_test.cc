#include "qp/obs/trace.h"

#include <memory>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "obs_test_parsers.h"

namespace qp {
namespace obs {
namespace {

using ::qp::testing_util::JsonParser;
using ::qp::testing_util::JsonValue;

TEST(RequestTraceTest, SpansNestByOpenDepth) {
  RequestTrace trace;
  size_t outer = trace.StartSpan("execution");
  size_t inner = trace.StartSpan("disjunct");
  size_t leaf = trace.StartSpan("probe");
  trace.EndSpan(leaf);
  trace.EndSpan(inner);
  size_t sibling = trace.StartSpan("disjunct");
  trace.EndSpan(sibling);
  trace.EndSpan(outer);

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.spans()[outer].depth, 0);
  EXPECT_EQ(trace.spans()[inner].depth, 1);
  EXPECT_EQ(trace.spans()[leaf].depth, 2);
  EXPECT_EQ(trace.spans()[sibling].depth, 1);
  for (const TraceSpan& span : trace.spans()) {
    EXPECT_GE(span.duration_millis, 0.0);
    EXPECT_GE(span.start_millis, 0.0);
  }
  // A parent's window contains its child's.
  EXPECT_LE(trace.spans()[outer].start_millis,
            trace.spans()[inner].start_millis);
  EXPECT_GE(trace.spans()[outer].duration_millis,
            trace.spans()[inner].duration_millis);
  EXPECT_GE(trace.total_millis(), trace.spans()[outer].duration_millis);
}

TEST(RequestTraceTest, OutOfOrderEndClosesChildren) {
  RequestTrace trace;
  size_t outer = trace.StartSpan("selection");
  size_t inner = trace.StartSpan("expansion");
  // Closing the parent (e.g. via an early return unwinding a ScopedSpan)
  // must close the still-open child too, never leave it dangling.
  trace.EndSpan(outer);
  EXPECT_GE(trace.spans()[inner].duration_millis, 0.0);
  // Spans opened afterwards are roots again, not children of a ghost.
  size_t next = trace.StartSpan("integration");
  trace.EndSpan(next);
  EXPECT_EQ(trace.spans()[next].depth, 0);
}

TEST(RequestTraceTest, CountersAndFindSpan) {
  RequestTrace trace;
  size_t span = trace.StartSpan("preference_selection");
  trace.AddCounter(span, "selected", 4);
  trace.AddCounter(span, "pruned_cycle", 2);
  trace.EndSpan(span);

  const TraceSpan* found = trace.FindSpan("preference_selection");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->counter("selected"), 4u);
  EXPECT_EQ(found->counter("pruned_cycle"), 2u);
  EXPECT_TRUE(found->has_counter("selected"));
  EXPECT_FALSE(found->has_counter("absent"));
  EXPECT_EQ(found->counter("absent"), 0u);
  EXPECT_EQ(trace.FindSpan("no_such_span"), nullptr);
}

TEST(RequestTraceTest, DispositionDefaultsToFull) {
  RequestTrace trace;
  EXPECT_EQ(trace.disposition(), "full");
  EXPECT_EQ(trace.stopped_phase(), "");
  trace.SetDisposition("degraded", "preference_selection");
  EXPECT_EQ(trace.disposition(), "degraded");
  EXPECT_EQ(trace.stopped_phase(), "preference_selection");
}

TEST(RequestTraceTest, ToStringRendersTree) {
  RequestTrace trace;
  size_t outer = trace.StartSpan("execution");
  size_t inner = trace.StartSpan("disjunct");
  trace.AddCounter(inner, "rows", 7);
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  trace.SetDisposition("full", "");

  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("execution"), std::string::npos);
  EXPECT_NE(rendered.find("disjunct"), std::string::npos);
  EXPECT_NE(rendered.find("rows"), std::string::npos);
  EXPECT_NE(rendered.find("full"), std::string::npos);
  // The child renders after (and indented under) the parent.
  EXPECT_LT(rendered.find("execution"), rendered.find("disjunct"));
}

TEST(RequestTraceTest, ToJsonParses) {
  RequestTrace trace;
  size_t span = trace.StartSpan("cache_lookup");
  trace.AddCounter(span, "hit", 1);
  trace.EndSpan(span);
  trace.SetDisposition("full", "");

  JsonValue root;
  ASSERT_TRUE(JsonParser(trace.ToJson()).Parse(&root)) << trace.ToJson();
  const JsonValue* disposition = root.Find("disposition");
  ASSERT_NE(disposition, nullptr);
  EXPECT_EQ(disposition->str, "full");
  const JsonValue* spans = root.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  const JsonValue* name = spans->array[0].Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->str, "cache_lookup");
  const JsonValue* counters = spans->array[0].Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* hit = counters->Find("hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->number, 1.0);
}

TEST(ScopedSpanTest, NullTraceIsNoOp) {
  // Instrumented code passes a null trace when tracing is off; every
  // method must be safe (and cheap) in that state.
  ScopedSpan span(nullptr, "anything");
  span.Counter("rows", 3);
  span.End();
  span.End();  // Idempotent.
}

TEST(ScopedSpanTest, RaiiClosesOnScopeExit) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  RequestTrace trace;
  {
    ScopedSpan span(&trace, "scoped");
    span.Counter("rows", 3);
  }
  const TraceSpan* found = trace.FindSpan("scoped");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->counter("rows"), 3u);
  EXPECT_GE(found->duration_millis, 0.0);
}

TEST(ScopedSpanTest, ExplicitEndThenDestructorCountsOnce) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  RequestTrace trace;
  {
    ScopedSpan span(&trace, "ended_early");
    span.End();
  }  // Destructor must not close (or re-open) anything.
  ASSERT_EQ(trace.spans().size(), 1u);
}

TEST(LastTraceSinkTest, KeepsMostRecentTrace) {
  LastTraceSink sink;
  EXPECT_EQ(sink.last(), nullptr);

  RequestTrace first;
  first.SetDisposition("full", "");
  sink.Consume(std::move(first));
  std::shared_ptr<const RequestTrace> held = sink.last();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->disposition(), "full");

  RequestTrace second;
  second.SetDisposition("shed", "admission");
  sink.Consume(std::move(second));
  ASSERT_NE(sink.last(), nullptr);
  EXPECT_EQ(sink.last()->disposition(), "shed");
  // The earlier shared_ptr stays valid after being replaced.
  EXPECT_EQ(held->disposition(), "full");
}

}  // namespace
}  // namespace obs
}  // namespace qp
