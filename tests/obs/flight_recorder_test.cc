// FlightRecorder tests: slot publication and total ordering, string
// truncation into the fixed slots, ring wraparound retaining the newest
// kSlots events, Clear isolation, JSON escaping, trace summarization,
// the FaultHub fire listener wiring, and a writers-vs-dumpers hammer
// that the sanitized CI stage runs under TSan.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "qp/obs/flight_recorder.h"
#include "qp/obs/trace.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace obs {
namespace {

// With the plane compiled out (QP_OBS_DISABLED) every Record call is a
// no-op; the behavioural tests skip and CompiledOutRecorderIsANoOp
// asserts the stub instead.
#define QP_SKIP_IF_OBS_DISABLED()                         \
  if (!kTracingCompiledIn) {                              \
    GTEST_SKIP() << "observability compiled out";         \
  }

class FlightRecorderTest : public ::testing::Test {
 protected:
  // The recorder is process-global; every test starts from an empty
  // (but still counting) view.
  void SetUp() override { FlightRecorder::Global()->Clear(); }
  void TearDown() override {
    FlightRecorder::Global()->Clear();
    FaultHub::Global()->Reset();
  }
};

TEST_F(FlightRecorderTest, CompiledOutRecorderIsANoOp) {
  if (kTracingCompiledIn) {
    GTEST_SKIP() << "only meaningful under QP_OBS_DISABLED";
  }
  RecordFlightEvent(FlightEventType::kFaultFired, "site", "detail", 1, 2, 3);
  RequestTrace trace;
  RecordTraceSummary(trace);
  EXPECT_TRUE(FlightRecorder::Global()->Dump().empty());
  EXPECT_EQ(FlightRecorder::Global()->total_recorded(), 0u);
}

TEST_F(FlightRecorderTest, RecordsInOrderWithPayload) {
  QP_SKIP_IF_OBS_DISABLED();
  RecordFlightEvent(FlightEventType::kBreakerTransition, "breaker",
                    "closed->open", 7, 0);
  RecordFlightEvent(FlightEventType::kQuarantine, "julie", "db", 0, 0,
                    0xabcdef);
  std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].sequence, events[1].sequence);
  EXPECT_EQ(events[0].type, FlightEventType::kBreakerTransition);
  EXPECT_EQ(events[0].what_view(), "breaker");
  EXPECT_EQ(events[0].detail_view(), "closed->open");
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[1].type, FlightEventType::kQuarantine);
  EXPECT_EQ(events[1].what_view(), "julie");
  EXPECT_EQ(events[1].trace_id, 0xabcdefu);
}

TEST_F(FlightRecorderTest, TruncatesOverlongStrings) {
  QP_SKIP_IF_OBS_DISABLED();
  const std::string longer(200, 'x');
  RecordFlightEvent(FlightEventType::kTraceSummary, longer, longer);
  std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].what_view().size(), sizeof(FlightEvent{}.what));
  EXPECT_EQ(events[0].what_view(),
            std::string_view(longer).substr(0, events[0].what_view().size()));
}

TEST_F(FlightRecorderTest, WrapAroundKeepsTheNewestEvents) {
  QP_SKIP_IF_OBS_DISABLED();
  const size_t total = FlightRecorder::kSlots + 100;
  for (size_t i = 0; i < total; ++i) {
    RecordFlightEvent(FlightEventType::kTraceSummary, "evt", "", i);
  }
  std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
  ASSERT_EQ(events.size(), FlightRecorder::kSlots);
  // Oldest-first and contiguous: exactly the last kSlots of the stream.
  EXPECT_EQ(events.front().a, total - FlightRecorder::kSlots);
  EXPECT_EQ(events.back().a, total - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
  }
}

TEST_F(FlightRecorderTest, ClearHidesButKeepsCounting) {
  QP_SKIP_IF_OBS_DISABLED();
  RecordFlightEvent(FlightEventType::kRepair, "user", "");
  const uint64_t before = FlightRecorder::Global()->total_recorded();
  FlightRecorder::Global()->Clear();
  EXPECT_TRUE(FlightRecorder::Global()->Dump().empty());
  RecordFlightEvent(FlightEventType::kRepair, "user2", "");
  EXPECT_EQ(FlightRecorder::Global()->Dump().size(), 1u);
  EXPECT_EQ(FlightRecorder::Global()->total_recorded(), before + 1);
}

TEST_F(FlightRecorderTest, ToJsonEscapesAndNamesTypes) {
  QP_SKIP_IF_OBS_DISABLED();
  RecordFlightEvent(FlightEventType::kFaultFired, "site\"with\\quotes",
                    "", 3);
  std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
  std::string json = FlightRecorder::ToJson(events);
  EXPECT_NE(json.find("\"fault_fired\""), std::string::npos) << json;
  EXPECT_NE(json.find("site\\\"with\\\\quotes"), std::string::npos) << json;
}

TEST_F(FlightRecorderTest, SummarizesAFinishedTrace) {
  QP_SKIP_IF_OBS_DISABLED();
  RequestTrace trace;
  trace.EndSpan(trace.StartSpan("selection"));
  trace.EndSpan(trace.StartSpan("execution"));
  trace.SetDisposition("degraded", "execution");
  RecordTraceSummary(trace);
  std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kTraceSummary);
  EXPECT_EQ(events[0].what_view(), "degraded");
  EXPECT_EQ(events[0].detail_view(), "execution");
  EXPECT_EQ(events[0].b, 2u);  // Span count.
  EXPECT_EQ(events[0].trace_id, trace.trace_id());
}

TEST_F(FlightRecorderTest, ArmedFaultSiteFiresIntoTheRecorder) {
  QP_SKIP_IF_OBS_DISABLED();
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  // The hub-to-recorder bridge: install the listener the way the
  // storage layer's registrar does, arm a deterministic rule, and the
  // fire shows up as a kFaultFired event naming the site and call index.
  FaultHub::SetFireListener(&RecordFaultFire);
  FaultRule rule;
  rule.fire_on_nth = 2;
  FaultHub::Global()->SetRule("test.site", rule);
  FaultHub::Global()->Arm(42);
  EXPECT_FALSE(FaultHub::Global()->Evaluate("test.site").fire);
  EXPECT_TRUE(FaultHub::Global()->Evaluate("test.site").fire);
  std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kFaultFired);
  EXPECT_EQ(events[0].what_view(), "test.site");
  EXPECT_EQ(events[0].a, 2u);  // 1-based call index of the fire.
}

TEST_F(FlightRecorderTest, ConcurrentWritersAndDumpersStayConsistent) {
  QP_SKIP_IF_OBS_DISABLED();
  // 4 writers flood the ring past wraparound while 2 readers dump
  // continuously: every dumped event must be internally consistent
  // (payload matches its writer's stamp) and in strictly increasing
  // sequence order. TSan vets the seqlock in the sanitized CI stage.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<FlightEvent> events = FlightRecorder::Global()->Dump();
        uint64_t last_seq = 0;
        for (const FlightEvent& event : events) {
          // Writer w stamps what="w<w>", a=w, b=i and a=b-consistent
          // payloads; a torn read would mix them.
          if (event.sequence <= last_seq && last_seq != 0) torn.fetch_add(1);
          last_seq = event.sequence;
          std::string expect_what = "w" + std::to_string(event.a);
          if (event.what_view() != expect_what) torn.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      std::string what = "w" + std::to_string(w);
      for (int i = 0; i < kPerWriter; ++i) {
        RecordFlightEvent(FlightEventType::kTraceSummary, what, "",
                          static_cast<uint64_t>(w),
                          static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(FlightRecorder::Global()->Dump().size(), FlightRecorder::kSlots);
}

}  // namespace
}  // namespace obs
}  // namespace qp
